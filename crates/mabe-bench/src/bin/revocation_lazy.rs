//! Lazy-revocation bench: eager vs deferred re-encryption under a
//! revocation storm with live readers.
//!
//! For each component count, the same storm (a cohort revoked
//! back-to-back while reader threads loop over every record) runs
//! twice — once eager, once lazy — and three numbers are compared:
//!
//! - `revoke_ack_ms` — mean time for `revoke()` to return. Eager pays
//!   the full proxy re-encryption inline, so it scales with the
//!   component count; lazy acks after the immediate phase (version
//!   bump, update-key journal, key delivery) and must not scale.
//! - `reader_p99_ms` — 99th-percentile read latency during the storm
//!   window. Eager reads are consistency-first: one that lands mid-pass
//!   waits out the whole inline re-encryption behind the key-delivery
//!   barrier, so the tail scales with the component count. Lazy reads
//!   pay at most one read-triggered component upgrade, independent of
//!   the storm size.
//! - `convergence_ms` — storm start until every ciphertext is current
//!   (eager: last ack + recovery; lazy: + queue drain, where stacked
//!   revocations compose into one batched pass per component).
//!
//! The run asserts the tentpole claims: lazy reader p99 at least 5x
//! better than eager at the largest size, and lazy ack latency
//! independent of component count (≤3x across a 6x size spread, vs
//! eager's roughly linear growth).
//!
//! Usage: `revocation_lazy [max_components]` (default 144; the small
//! size is max/6). With `MABE_METRICS_DIR` set the rows are dumped as
//! `BENCH_revocation_lazy.json` alongside the registry snapshot.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

use mabe_cloud::CloudSystem;

const COHORT: usize = 3;
const READERS: usize = 2;

struct Row {
    mode: &'static str,
    components: usize,
    revoke_ack_ms: f64,
    reader_p50_ms: f64,
    reader_p99_ms: f64,
    reads: usize,
    convergence_ms: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One storm: `COHORT` holders revoked back-to-back while `READERS`
/// threads loop reads over every record. Readers sample latency only
/// inside the storm window (first revoke until convergence), so the
/// percentiles measure exactly the availability hit of each mode.
fn measure(lazy: bool, components: usize) -> Row {
    let sys = Arc::new(CloudSystem::new(
        0x1a2e_0000 + components as u64 * 2 + lazy as u64,
    ));
    sys.set_lazy_revocation(lazy);
    sys.add_authority("Org", &["A"]).expect("fresh authority");
    let owner = sys.add_owner("owner").expect("fresh owner");
    let bob = sys.add_user("bob").expect("fresh user");
    sys.grant(&bob, &["A@Org"]).expect("grant");
    let cohort: Vec<_> = (0..COHORT)
        .map(|i| {
            let uid = sys.add_user(&format!("victim-{i}")).expect("fresh user");
            sys.grant(&uid, &["A@Org"]).expect("grant");
            uid
        })
        .collect();
    for i in 0..components {
        sys.publish(
            &owner,
            &format!("rec-{i}"),
            &[("f", b"payload".as_slice(), "A@Org")],
        )
        .expect("publish");
    }
    // Warm pass so the storm-window samples only measure the storm.
    for i in 0..components {
        sys.read(&bob, &owner, &format!("rec-{i}"), "f")
            .expect("warm read");
    }

    let stop = AtomicBool::new(false);
    let samples = Mutex::new(Vec::<f64>::new());
    let mut acks_ms = Vec::with_capacity(COHORT);
    let storm = Instant::now();
    let mut convergence_ms = 0.0;

    thread::scope(|s| {
        for t in 0..READERS {
            let sys = Arc::clone(&sys);
            let (owner, bob) = (owner.clone(), bob.clone());
            let (stop, samples) = (&stop, &samples);
            s.spawn(move || {
                let mut local = Vec::new();
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let r = i % components;
                    i += 1;
                    let start = Instant::now();
                    sys.read(&bob, &owner, &format!("rec-{r}"), "f")
                        .expect("live reader never errors");
                    local.push(start.elapsed().as_secs_f64() * 1e3);
                }
                samples.lock().unwrap().extend(local);
            });
        }

        for uid in &cohort {
            let start = Instant::now();
            sys.revoke(uid, "A@Org").expect("revoke");
            acks_ms.push(start.elapsed().as_secs_f64() * 1e3);
        }
        while sys.needs_recovery() {
            sys.recover().expect("recover");
        }
        while sys.lazy_queue_depth() > 0 {
            assert!(sys.drain_lazy().expect("drain") > 0, "queue stuck");
        }
        convergence_ms = storm.elapsed().as_secs_f64() * 1e3;
        stop.store(true, Ordering::Relaxed);
    });

    let mut lat = samples.into_inner().unwrap();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let top: Vec<String> = lat
        .iter()
        .rev()
        .take(8)
        .map(|v| format!("{v:.1}"))
        .collect();
    eprintln!("# tail lazy={lazy} n={components}: [{}]", top.join(", "));
    Row {
        mode: if lazy { "lazy" } else { "eager" },
        components,
        revoke_ack_ms: acks_ms.iter().sum::<f64>() / acks_ms.len() as f64,
        reader_p50_ms: percentile(&lat, 0.50),
        reader_p99_ms: percentile(&lat, 0.99),
        reads: lat.len(),
        convergence_ms,
    }
}

struct Summary {
    reader_p99_ratio: f64,
    lazy_ack_scaling: f64,
    eager_lazy_ack_ratio: f64,
}

fn emit_json(rows: &[Row], s: &Summary) {
    let Some(dir) = std::env::var_os("MABE_METRICS_DIR") else {
        return;
    };
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"mode\": \"{}\", \"components\": {}, \"revoke_ack_ms\": {:.3}, \
                 \"reader_p50_ms\": {:.3}, \"reader_p99_ms\": {:.3}, \"reads\": {}, \
                 \"convergence_ms\": {:.3}}}",
                r.mode,
                r.components,
                r.revoke_ack_ms,
                r.reader_p50_ms,
                r.reader_p99_ms,
                r.reads,
                r.convergence_ms
            )
        })
        .collect();
    let doc = format!(
        "{{\n\"bench\": \"revocation_lazy\",\n\"cohort\": {COHORT},\n\
         \"reader_p99_ratio\": {:.3},\n\"lazy_ack_scaling\": {:.3},\n\
         \"eager_lazy_ack_ratio\": {:.3},\n\"rows\": [\n{}\n]}}\n",
        s.reader_p99_ratio,
        s.lazy_ack_scaling,
        s.eager_lazy_ack_ratio,
        body.join(",\n")
    );
    let path = std::path::Path::new(&dir).join("BENCH_revocation_lazy.json");
    let write = std::fs::File::create(&path).and_then(|mut f| f.write_all(doc.as_bytes()));
    match write {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("# BENCH_revocation_lazy.json failed: {e}"),
    }
}

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .filter(|&n| n >= 12)
        .unwrap_or(144);
    let small = max / 6;

    eprintln!("# revocation_lazy: cohort {COHORT}, {READERS} readers, components {small}/{max}");
    println!(
        "mode\tcomponents\trevoke_ack_ms\treader_p50_ms\treader_p99_ms\treads\tconvergence_ms"
    );

    let mut rows = Vec::new();
    for components in [small, max] {
        for lazy in [false, true] {
            let row = measure(lazy, components);
            println!(
                "{}\t{}\t{:.3}\t{:.3}\t{:.3}\t{}\t{:.3}",
                row.mode,
                row.components,
                row.revoke_ack_ms,
                row.reader_p50_ms,
                row.reader_p99_ms,
                row.reads,
                row.convergence_ms
            );
            rows.push(row);
        }
    }

    let find = |mode: &str, components: usize| {
        rows.iter()
            .find(|r| r.mode == mode && r.components == components)
            .expect("row measured")
    };
    let summary = Summary {
        reader_p99_ratio: find("eager", max).reader_p99_ms
            / find("lazy", max).reader_p99_ms.max(1e-9),
        lazy_ack_scaling: find("lazy", max).revoke_ack_ms
            / find("lazy", small).revoke_ack_ms.max(1e-9),
        eager_lazy_ack_ratio: find("eager", max).revoke_ack_ms
            / find("lazy", max).revoke_ack_ms.max(1e-9),
    };
    eprintln!(
        "# reader_p99_ratio {:.1}x, lazy_ack_scaling {:.2}x over a 6x size spread, \
         eager/lazy ack {:.1}x",
        summary.reader_p99_ratio, summary.lazy_ack_scaling, summary.eager_lazy_ack_ratio
    );

    assert!(
        summary.reader_p99_ratio >= 5.0,
        "lazy reader p99 must be at least 5x better than eager under the storm \
         (got {:.2}x)",
        summary.reader_p99_ratio
    );
    assert!(
        summary.lazy_ack_scaling <= 3.0,
        "lazy revoke ack must not scale with component count \
         (got {:.2}x across a 6x size spread)",
        summary.lazy_ack_scaling
    );
    emit_json(&rows, &summary);
    mabe_bench::metrics::emit("revocation_lazy");
    mabe_obs::profiler::emit("revocation_lazy");
}
