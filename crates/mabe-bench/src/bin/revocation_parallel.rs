//! Parallel proxy re-encryption bench: one revocation whose phase 2
//! fans out across the affected ciphertext components on the data
//! plane's scoped worker pool, measured at increasing worker counts.
//!
//! Two speedup notions are recorded per row, because wall-clock only
//! reflects the fan-out when the host actually has the hardware
//! threads to run it:
//!
//! - `wall_speedup_vs_1` — measured wall time of the 1-worker revoke
//!   divided by this row's; meaningful when `hw_threads >= workers`.
//! - `distribution_speedup` — components ÷ max per-worker share, read
//!   from the flight recorder (each worker's `cloud.reencrypt`
//!   children are counted). This is the parallel critical path of the
//!   *actual* run in units of measured per-component cost, and is the
//!   number that transfers across hosts.
//!
//! `speedup_vs_1` picks the wall number when the host has enough
//! hardware threads, the distribution number otherwise (`basis` says
//! which). The run asserts `speedup_vs_1 >= 2` at 4 workers.
//!
//! Usage: `revocation_parallel [components]` (default 96). With
//! `MABE_METRICS_DIR` set the rows are dumped as
//! `BENCH_revocation_parallel.json` alongside the registry snapshot.

use std::io::Write as _;
use std::time::Instant;

use mabe_cloud::CloudSystem;

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

struct Row {
    workers: usize,
    components: usize,
    wall_ms: f64,
    per_component_ms: f64,
    worker_items: Vec<usize>,
    wall_speedup_vs_1: f64,
    distribution_speedup: f64,
    speedup_vs_1: f64,
    basis: &'static str,
}

/// Builds a fresh world (same seed per row so the workload is
/// identical), revokes the only holder, and reads the re-encryption
/// fan-out back out of the flight recorder.
fn measure(components: usize, workers: usize) -> (f64, f64, Vec<usize>) {
    let sys = CloudSystem::new(xrev_seed(workers));
    sys.set_reencrypt_workers(workers);
    sys.add_authority("Org", &["A"]).expect("fresh authority");
    let owner = sys.add_owner("owner").expect("fresh owner");
    let victim = sys.add_user("victim").expect("fresh user");
    sys.grant(&victim, &["A@Org"]).expect("managed attribute");
    for i in 0..components {
        sys.publish(
            &owner,
            &format!("rec-{i}"),
            &[("f", b"payload".as_slice(), "A@Org")],
        )
        .expect("publish");
    }

    mabe_trace::recorder::global().clear();
    let start = Instant::now();
    sys.revoke(&victim, "A@Org").expect("revoke succeeds");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let spans = mabe_trace::snapshot();
    let reencrypts: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "cloud.reencrypt")
        .collect();
    assert_eq!(
        reencrypts.len(),
        components,
        "every component re-encrypts exactly once"
    );
    let per_component_ms = reencrypts
        .iter()
        .map(|s| s.dur_us as f64 / 1e3)
        .sum::<f64>()
        / components.max(1) as f64;

    // Per-worker share: count each worker span's re-encrypt children.
    // The sequential path has no worker spans — one share holds all.
    let worker_spans: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "cloud.reencrypt.worker")
        .collect();
    let worker_items: Vec<usize> = if worker_spans.is_empty() {
        vec![components]
    } else {
        worker_spans
            .iter()
            .map(|w| {
                reencrypts
                    .iter()
                    .filter(|r| r.ctx.parent_id == w.ctx.span_id)
                    .count()
            })
            .collect()
    };
    assert_eq!(
        worker_items.iter().sum::<usize>(),
        components,
        "worker shares cover the worklist exactly"
    );
    (wall_ms, per_component_ms, worker_items)
}

/// Distinct deterministic seed per worker count (no clock, no RNG).
fn xrev_seed(workers: usize) -> u64 {
    0x5eed_0000 + workers as u64
}

fn emit_json(rows: &[Row], components: usize, hw_threads: usize) {
    let Some(dir) = std::env::var_os("MABE_METRICS_DIR") else {
        return;
    };
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            let items: Vec<String> = r.worker_items.iter().map(usize::to_string).collect();
            format!(
                "{{\"workers\": {}, \"components\": {}, \"wall_ms\": {:.3}, \
                 \"per_component_ms\": {:.4}, \"worker_items\": [{}], \
                 \"wall_speedup_vs_1\": {:.3}, \"distribution_speedup\": {:.3}, \
                 \"speedup_vs_1\": {:.3}, \"basis\": \"{}\"}}",
                r.workers,
                r.components,
                r.wall_ms,
                r.per_component_ms,
                items.join(", "),
                r.wall_speedup_vs_1,
                r.distribution_speedup,
                r.speedup_vs_1,
                r.basis
            )
        })
        .collect();
    let doc = format!(
        "{{\n\"bench\": \"revocation_parallel\",\n\"components\": {components},\n\
         \"hw_threads\": {hw_threads},\n\"rows\": [\n{}\n]}}\n",
        body.join(",\n")
    );
    let path = std::path::Path::new(&dir).join("BENCH_revocation_parallel.json");
    let write = std::fs::File::create(&path).and_then(|mut f| f.write_all(doc.as_bytes()));
    match write {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("# BENCH_revocation_parallel.json failed: {e}"),
    }
}

fn main() {
    let components: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(96);
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    mabe_trace::set_enabled(true);

    eprintln!("# revocation_parallel: {components} components, {hw_threads} hw threads");
    println!("workers\twall_ms\tper_component_ms\tmax_share\tspeedup_vs_1\tbasis");

    let mut rows: Vec<Row> = Vec::new();
    let mut base_wall_ms = 0.0;
    for workers in WORKER_COUNTS {
        let (wall_ms, per_component_ms, worker_items) = measure(components, workers);
        if workers == 1 {
            base_wall_ms = wall_ms;
        }
        let max_share = worker_items.iter().copied().max().unwrap_or(components);
        let wall_speedup = base_wall_ms / wall_ms.max(1e-9);
        let distribution_speedup = components as f64 / max_share.max(1) as f64;
        let (speedup, basis) = if hw_threads >= workers {
            (wall_speedup, "wall")
        } else {
            (distribution_speedup, "work_distribution")
        };
        println!(
            "{workers}\t{wall_ms:.3}\t{per_component_ms:.4}\t{max_share}\t{speedup:.3}\t{basis}"
        );
        rows.push(Row {
            workers,
            components,
            wall_ms,
            per_component_ms,
            worker_items,
            wall_speedup_vs_1: wall_speedup,
            distribution_speedup,
            speedup_vs_1: speedup,
            basis,
        });
    }

    let at_4 = rows
        .iter()
        .find(|r| r.workers == 4)
        .expect("4-worker row measured");
    assert!(
        at_4.speedup_vs_1 >= 2.0,
        "parallel re-encryption must reach 2x at 4 workers (got {:.3}, basis {})",
        at_4.speedup_vs_1,
        at_4.basis
    );
    emit_json(&rows, components, hw_threads);
    mabe_bench::metrics::emit("revocation_parallel");
    mabe_obs::profiler::emit("revocation_parallel");
}
