//! Regenerates Figure 4: encryption (a) and decryption (b) time vs the
//! number of attributes per authority, 5 authorities, ours vs Lewko.
//!
//! Usage: `fig4 [max_attrs]` (default 10, the paper's range). Set
//! `MABE_TRIALS` to change the per-point trial count (default 20).

use mabe_bench::timing::trials_from_env;

fn main() {
    let max = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .filter(|&m| (2..=32).contains(&m))
        .unwrap_or(10);
    let trials = trials_from_env(20);
    eprintln!("# fig4: attrs/authority 2..={max}, 5 authorities, {trials} trials/point");
    let (enc, dec) = mabe_bench::fig4(trials, max);
    print!(
        "{}",
        enc.to_tsv("Fig 4(a): encryption time vs attributes per authority")
    );
    println!();
    print!(
        "{}",
        dec.to_tsv("Fig 4(b): decryption time vs attributes per authority")
    );
}
