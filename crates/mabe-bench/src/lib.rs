//! # mabe-bench
//!
//! Benchmark harness regenerating **every table and figure** of the
//! paper's evaluation (§VI):
//!
//! | Artifact | Binary | Module |
//! |---|---|---|
//! | Table I (scalability) | `table1` | [`tables::table1`] |
//! | Table II (component sizes) | `table2` | [`tables::table2`] |
//! | Table III (storage overhead) | `table3` | [`tables::table3`] |
//! | Table IV (communication cost) | `table4` | [`tables::table4`] |
//! | Fig. 3(a)/(b) (time vs #authorities) | `fig3` | [`figures::fig3`] |
//! | Fig. 4(a)/(b) (time vs #attrs/authority) | `fig4` | [`figures::fig4`] |
//!
//! Criterion micro-benchmarks for the pairing substrate and both schemes
//! live in `benches/`. Trials default to the paper's 20; set
//! `MABE_TRIALS` to override.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod figures;
pub mod metrics;
pub mod tables;
pub mod throughput;
pub mod timing;
pub mod workload;

pub use figures::{fig3, fig4, Series};
pub use tables::{table1, table2, table3, table4};
pub use workload::{LewkoWorld, OurWorld, Shape};
