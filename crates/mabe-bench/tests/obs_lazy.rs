//! End-to-end observability check for lazy revocation: a live
//! `CloudSystem` with a pending-upgrade queue behind a real
//! `mabe-obs` HTTP server. The three lazy metric families must show
//! up on `/metrics` and `/metrics.json`, and `/readyz` must report
//! the non-empty queue as `draining: true` at 200 — never 503 — until
//! the drain completes.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;

use mabe_cloud::CloudSystem;
use mabe_obs::{ObsServer, Probe};

fn fetch(addr: std::net::SocketAddr, target: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!("GET {target} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

#[test]
fn lazy_queue_metrics_and_draining_probe_are_observable() {
    let sys = Arc::new(CloudSystem::new(0x0b5));
    sys.set_lazy_revocation(true);
    sys.add_authority("Org", &["A"]).unwrap();
    let owner = sys.add_owner("owner").unwrap();
    let alice = sys.add_user("alice").unwrap();
    let bob = sys.add_user("bob").unwrap();
    sys.grant(&alice, &["A@Org"]).unwrap();
    sys.grant(&bob, &["A@Org"]).unwrap();
    sys.publish(&owner, "rec", &[("f", b"payload".as_slice(), "A@Org")])
        .unwrap();

    let probe_sys = Arc::clone(&sys);
    let server = ObsServer::bind(
        "127.0.0.1:0",
        vec![Probe::draining("lazy_queue_empty", move || {
            probe_sys.lazy_queue_depth() == 0
        })],
    )
    .unwrap();

    sys.revoke(&alice, "A@Org").unwrap();
    assert_eq!(sys.lazy_queue_depth(), 1);

    // A pending queue is normal operation: 200 + draining, not 503.
    let pending = fetch(server.addr(), "/readyz");
    assert!(pending.starts_with("HTTP/1.1 200 "), "got: {pending}");
    assert!(pending.contains("\"ready\":true"));
    assert!(pending.contains("\"draining\":true"));

    // A read of the still-stale component upgrades it in place
    // (ticking the read-upgrade counter), then the drain clears the
    // queue (gauge back to zero, staleness histogram recorded).
    assert_eq!(sys.read(&bob, &owner, "rec", "f").unwrap(), b"payload");
    assert!(sys.drain_lazy().unwrap() > 0);

    let drained = fetch(server.addr(), "/readyz");
    assert!(drained.starts_with("HTTP/1.1 200 "));
    assert!(drained.contains("\"draining\":false"));

    let prom = fetch(server.addr(), "/metrics");
    for family in [
        "mabe_lazy_queue_depth",
        "mabe_lazy_staleness_ms",
        "mabe_read_upgrades_total",
    ] {
        assert!(prom.contains(family), "{family} missing from /metrics");
    }
    assert!(prom.contains("mabe_lazy_queue_depth 0"));

    let json = fetch(server.addr(), "/metrics.json");
    for family in [
        "mabe_lazy_queue_depth",
        "mabe_lazy_staleness_ms",
        "mabe_read_upgrades_total",
    ] {
        assert!(json.contains(family), "{family} missing from /metrics.json");
    }
    server.shutdown();
}
