//! Criterion benchmarks of both schemes' phases at the paper's fixed
//! point (5 authorities × 5 attributes), plus ablations of the design
//! choices DESIGN.md calls out:
//!
//! * **Partial re-encryption** (the paper's proxy method, only affected
//!   rows touched) vs a strawman full re-encryption (decrypt-side work
//!   for every row) — the efficiency claim of §V-C.
//! * Decryption cost vs number of involved authorities (the extra
//!   `n_A` pairings our scheme pays).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mabe_bench::{LewkoWorld, OurWorld, Shape};
use rand::SeedableRng;

const PAPER_POINT: Shape = Shape {
    authorities: 5,
    attrs_per_authority: 5,
};

fn bench_encrypt(c: &mut Criterion) {
    let mut group = c.benchmark_group("encrypt_5x5");
    group.sample_size(10);
    let mut ours = OurWorld::new(PAPER_POINT, 11);
    group.bench_function("ours", |b| {
        b.iter(|| std::hint::black_box(ours.encrypt_once()))
    });
    let mut lewko = LewkoWorld::new(PAPER_POINT, 12);
    group.bench_function("lewko", |b| {
        b.iter(|| std::hint::black_box(lewko.encrypt_once()))
    });
    group.finish();
}

fn bench_decrypt(c: &mut Criterion) {
    let mut group = c.benchmark_group("decrypt_5x5");
    group.sample_size(10);
    let mut ours = OurWorld::new(PAPER_POINT, 13);
    let our_ct = ours.encrypt_once();
    group.bench_function("ours", |b| {
        b.iter(|| std::hint::black_box(ours.decrypt_once(&our_ct)))
    });
    let mut lewko = LewkoWorld::new(PAPER_POINT, 14);
    let lewko_ct = lewko.encrypt_once();
    group.bench_function("lewko", |b| {
        b.iter(|| std::hint::black_box(lewko.decrypt_once(&lewko_ct)))
    });
    group.finish();
}

fn bench_decrypt_ablation(c: &mut Criterion) {
    // Faithful per-pairing decryption (the paper's cost model) vs the
    // multi-pairing/batched variant, plus the outsourced split.
    let mut group = c.benchmark_group("decrypt_ablation_5x5");
    group.sample_size(10);
    let mut world = OurWorld::new(PAPER_POINT, 71);
    let ct = world.encrypt_once();
    group.bench_function("reference(eq1)", |b| {
        b.iter(|| std::hint::black_box(world.decrypt_once(&ct)))
    });
    group.bench_function("multi_pairing_fast", |b| {
        b.iter(|| {
            std::hint::black_box(
                mabe_core::decrypt_fast(&ct, &world.user_pk, &world.user_keys).unwrap(),
            )
        })
    });
    let mut rng = rand::rngs::StdRng::seed_from_u64(72);
    let (tk, rk) =
        mabe_core::make_transform_key(&world.user_pk, &world.user_keys, &mut rng).unwrap();
    group.bench_function("outsourced_server_side", |b| {
        b.iter(|| std::hint::black_box(mabe_core::server_transform(&ct, &tk).unwrap()))
    });
    let token = mabe_core::server_transform(&ct, &tk).unwrap();
    group.bench_function("outsourced_client_side", |b| {
        b.iter(|| std::hint::black_box(mabe_core::client_recover(&ct, &token, &rk)))
    });
    group.finish();

    let mut lewko = LewkoWorld::new(PAPER_POINT, 73);
    let lct = lewko.encrypt_once();
    let mut group = c.benchmark_group("lewko_decrypt_ablation_5x5");
    group.sample_size(10);
    group.bench_function("reference", |b| {
        b.iter(|| std::hint::black_box(lewko.decrypt_once(&lct)))
    });
    group.bench_function("multi_pairing_fast", |b| {
        b.iter(|| {
            std::hint::black_box(
                mabe_lewko::decrypt_fast(&lct, "bench-user", &lewko.user_keys).unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_decrypt_vs_authorities(c: &mut Criterion) {
    // Ablation: our decryption pays n_A extra pairings; watch the cost
    // grow with the authority count at constant total attributes.
    let mut group = c.benchmark_group("decrypt_vs_authorities");
    group.sample_size(10);
    for authorities in [1usize, 2, 4] {
        let shape = Shape {
            authorities,
            attrs_per_authority: 4 / authorities.clamp(1, 4),
        };
        let mut world = OurWorld::new(shape, 20 + authorities as u64);
        let ct = world.encrypt_once();
        group.bench_with_input(
            BenchmarkId::from_parameter(authorities),
            &authorities,
            |b, _| b.iter(|| std::hint::black_box(world.decrypt_once(&ct))),
        );
    }
    group.finish();
}

fn bench_revocation(c: &mut Criterion) {
    // The paper's §V-C efficiency claim: server-side re-encryption only
    // touches the revoked authority's rows (1 pairing + |S_AID| point
    // additions), vs the strawman of redoing the whole encryption.
    let mut group = c.benchmark_group("revocation_5x5");
    group.sample_size(10);

    group.bench_function("partial_reencrypt(paper)", |b| {
        b.iter_batched(
            || {
                let mut world = OurWorld::new(PAPER_POINT, 31);
                let ct = world.encrypt_once();
                let revoked_attr = world.authorities[0]
                    .attributes()
                    .iter()
                    .next()
                    .expect("has attributes")
                    .clone();
                let uid = world.user_pk.uid.clone();
                let event = world.authorities[0]
                    .revoke_attribute(&uid, &revoked_attr, &mut world.rng)
                    .expect("user holds attribute");
                let uk = event.update_keys[world.owner.id()].clone();
                world.owner.apply_update_key(&uk).expect("version chains");
                let ui = world
                    .owner
                    .update_info_for(ct.id, &uk.aid, uk.from_version, uk.to_version)
                    .expect("history kept");
                (ct, uk, ui)
            },
            |(mut ct, uk, ui)| {
                mabe_core::reencrypt(&mut ct, &uk, &ui).expect("valid update");
                std::hint::black_box(ct)
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("full_reencrypt(strawman)", |b| {
        let mut world = OurWorld::new(PAPER_POINT, 32);
        b.iter(|| std::hint::black_box(world.encrypt_once()))
    });
    group.finish();
}

fn bench_keygen(c: &mut Criterion) {
    let mut group = c.benchmark_group("keygen_one_authority_5_attrs");
    group.sample_size(10);
    let world = OurWorld::new(PAPER_POINT, 41);
    let uid = world.user_pk.uid.clone();
    let owner = world.owner.id().clone();
    group.bench_function("ours", |b| {
        b.iter(|| std::hint::black_box(world.authorities[0].keygen(&uid, &owner).unwrap()))
    });
    let lewko = LewkoWorld::new(PAPER_POINT, 42);
    let attrs: Vec<_> = lewko.authorities[0].attributes().cloned().collect();
    group.bench_function("lewko", |b| {
        b.iter(|| {
            for attr in &attrs {
                std::hint::black_box(lewko.authorities[0].keygen("bench-user", attr).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_encrypt,
    bench_decrypt,
    bench_decrypt_ablation,
    bench_decrypt_vs_authorities,
    bench_revocation,
    bench_keygen
);
criterion_main!(benches);
