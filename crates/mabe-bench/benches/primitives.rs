//! Criterion micro-benchmarks of the pairing substrate: the costs that
//! the paper's Figures 3–4 decompose into (exponentiation, pairing,
//! hashing).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use mabe_math::{hash_to_curve, hash_to_fr, pairing, Fq, Fr, G1Affine, Gt, G1};

fn bench_field(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Fq::random(&mut rng);
    let b = Fq::random(&mut rng);
    let mut group = c.benchmark_group("field");
    group.bench_function("fq_mul", |bench| {
        bench.iter(|| std::hint::black_box(a.mul(&b)))
    });
    group.bench_function("fq_square", |bench| {
        bench.iter(|| std::hint::black_box(a.square()))
    });
    group.bench_function("fq_invert", |bench| {
        bench.iter(|| std::hint::black_box(a.invert()))
    });
    let x = Fr::random(&mut rng);
    let y = Fr::random(&mut rng);
    group.bench_function("fr_mul", |bench| {
        bench.iter(|| std::hint::black_box(x.mul(&y)))
    });
    group.finish();
}

fn bench_group(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let p = G1::random(&mut rng);
    let q = G1::random(&mut rng);
    let k = Fr::random(&mut rng);
    let mut group = c.benchmark_group("group");
    group.bench_function("g1_add", |bench| {
        bench.iter(|| std::hint::black_box(p.add(&q)))
    });
    group.bench_function("g1_double", |bench| {
        bench.iter(|| std::hint::black_box(p.double()))
    });
    group.bench_function("g1_scalar_mul", |bench| {
        bench.iter(|| std::hint::black_box(p.mul(&k)))
    });
    group.bench_function("hash_to_curve", |bench| {
        let mut ctr = 0u64;
        bench.iter(|| {
            ctr += 1;
            std::hint::black_box(hash_to_curve(&ctr.to_be_bytes()))
        })
    });
    group.bench_function("hash_to_fr", |bench| {
        bench.iter(|| std::hint::black_box(hash_to_fr(b"Doctor@MedOrg")))
    });
    group.finish();
}

fn bench_pairing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let p = G1Affine::from(G1::random(&mut rng));
    let q = G1Affine::from(G1::random(&mut rng));
    let gt = Gt::random(&mut rng);
    let k = Fr::random(&mut rng);
    let mut group = c.benchmark_group("pairing");
    group.sample_size(20);
    group.bench_function("tate_pairing", |bench| {
        bench.iter(|| std::hint::black_box(pairing(&p, &q)))
    });
    group.bench_function("gt_pow", |bench| {
        bench.iter(|| std::hint::black_box(gt.pow(&k)))
    });
    group.bench_function("gt_mul", |bench| {
        bench.iter(|| std::hint::black_box(gt.mul(&gt)))
    });
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let p = G1::random(&mut rng);
    let k = Fr::random(&mut rng);
    let mut group = c.benchmark_group("ablation_scalar_mul");
    group.bench_function("wnaf_w4", |bench| {
        bench.iter(|| std::hint::black_box(p.mul_wnaf(&k)))
    });
    group.bench_function("binary", |bench| {
        bench.iter(|| std::hint::black_box(p.mul_binary(&k)))
    });
    group.finish();

    // Product of 8 pairings: shared vs separate final exponentiation.
    let pairs: Vec<(G1Affine, G1Affine)> = (0..8)
        .map(|_| {
            (
                G1Affine::from(G1::random(&mut rng)),
                G1Affine::from(G1::random(&mut rng)),
            )
        })
        .collect();
    let mut group = c.benchmark_group("ablation_pairing_product_8");
    group.sample_size(10);
    group.bench_function("multi_pairing", |bench| {
        bench.iter(|| std::hint::black_box(mabe_math::multi_pairing(&pairs)))
    });
    group.bench_function("separate_pairings", |bench| {
        bench.iter(|| {
            let mut acc = Gt::one();
            for (p, q) in &pairs {
                acc = acc.mul(&pairing(p, q));
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();

    // Batch vs individual affine normalization of 16 points.
    let points: Vec<G1> = (0..16).map(|_| G1::random(&mut rng)).collect();
    let mut group = c.benchmark_group("ablation_normalize_16");
    group.bench_function("batch", |bench| {
        bench.iter(|| std::hint::black_box(mabe_math::batch_normalize(&points)))
    });
    group.bench_function("individual", |bench| {
        bench.iter(|| {
            let affine: Vec<G1Affine> = points.iter().map(|p| G1Affine::from(*p)).collect();
            std::hint::black_box(affine)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_field,
    bench_group,
    bench_pairing,
    bench_ablations
);
criterion_main!(benches);
