//! Crypto operation accounting.
//!
//! The paper's complexity claims are stated in operation counts —
//! decryption costs `n_A + 2|I|` pairings, encryption costs two G₁
//! exponentiations per LSSS row — so the primitives in `mabe-math`
//! call [`record`] on every pairing, group exponentiation and
//! hash-to-group. Counts are kept in **thread-local** cells so a test
//! can assert exact formulas even while `cargo test` runs other tests
//! on sibling threads; every increment is mirrored into the global
//! registry for export.

use std::cell::Cell;

/// The operation classes the paper's cost model distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CryptoOp {
    /// One bilinear pairing evaluation.
    Pairing,
    /// One exponentiation (scalar multiplication) in G₁.
    G1Mul,
    /// One exponentiation in G_T.
    GtPow,
    /// One hash-to-curve evaluation.
    HashToCurve,
    /// One hash onto the scalar field Z_r.
    HashToField,
}

const OP_COUNT: usize = 5;

impl CryptoOp {
    /// All operation classes, in export order.
    pub const ALL: [CryptoOp; OP_COUNT] = [
        CryptoOp::Pairing,
        CryptoOp::G1Mul,
        CryptoOp::GtPow,
        CryptoOp::HashToCurve,
        CryptoOp::HashToField,
    ];

    fn index(self) -> usize {
        match self {
            CryptoOp::Pairing => 0,
            CryptoOp::G1Mul => 1,
            CryptoOp::GtPow => 2,
            CryptoOp::HashToCurve => 3,
            CryptoOp::HashToField => 4,
        }
    }

    /// Label used in metric names and exports.
    pub fn label(self) -> &'static str {
        match self {
            CryptoOp::Pairing => "pairing",
            CryptoOp::G1Mul => "g1_mul",
            CryptoOp::GtPow => "gt_pow",
            CryptoOp::HashToCurve => "hash_to_curve",
            CryptoOp::HashToField => "hash_to_field",
        }
    }
}

thread_local! {
    static LOCAL_OPS: [Cell<u64>; OP_COUNT] = const { [const { Cell::new(0) }; OP_COUNT] };
}

/// Records one crypto operation. Called from `mabe-math` hot paths; a
/// disabled registry reduces this to a single atomic load.
#[inline]
pub fn record(op: CryptoOp) {
    if !crate::enabled() {
        return;
    }
    LOCAL_OPS.with(|ops| {
        let cell = &ops[op.index()];
        cell.set(cell.get() + 1);
    });
    crate::registry::global()
        .counter("mabe_crypto_ops_total", &[("op", op.label())])
        .inc();
}

/// This thread's running count for `op`.
pub fn thread_count(op: CryptoOp) -> u64 {
    LOCAL_OPS.with(|ops| ops[op.index()].get())
}

/// Zeroes this thread's operation counters (the global mirrors keep
/// accumulating).
pub fn reset_thread_counts() {
    LOCAL_OPS.with(|ops| {
        for cell in ops {
            cell.set(0);
        }
    });
}

/// A point-in-time copy of this thread's operation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Pairing evaluations.
    pub pairings: u64,
    /// G₁ exponentiations.
    pub g1_muls: u64,
    /// G_T exponentiations.
    pub gt_pows: u64,
    /// Hash-to-curve evaluations.
    pub hash_to_curve: u64,
    /// Hashes onto Z_r.
    pub hash_to_field: u64,
}

impl OpSnapshot {
    /// Captures this thread's current counts.
    pub fn capture() -> Self {
        OpSnapshot {
            pairings: thread_count(CryptoOp::Pairing),
            g1_muls: thread_count(CryptoOp::G1Mul),
            gt_pows: thread_count(CryptoOp::GtPow),
            hash_to_curve: thread_count(CryptoOp::HashToCurve),
            hash_to_field: thread_count(CryptoOp::HashToField),
        }
    }

    /// Component-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &OpSnapshot) -> OpSnapshot {
        OpSnapshot {
            pairings: self.pairings.saturating_sub(earlier.pairings),
            g1_muls: self.g1_muls.saturating_sub(earlier.g1_muls),
            gt_pows: self.gt_pows.saturating_sub(earlier.gt_pows),
            hash_to_curve: self.hash_to_curve.saturating_sub(earlier.hash_to_curve),
            hash_to_field: self.hash_to_field.saturating_sub(earlier.hash_to_field),
        }
    }
}

/// Runs `f` and returns its result along with the crypto operations it
/// performed **on this thread** — the measurement tool behind the
/// paper-formula assertions.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, OpSnapshot) {
    let before = OpSnapshot::capture();
    let result = f();
    let delta = OpSnapshot::capture().since(&before);
    (result, delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_the_delta() {
        let (_, ops) = measure(|| {
            record(CryptoOp::Pairing);
            record(CryptoOp::Pairing);
            record(CryptoOp::G1Mul);
        });
        assert_eq!(ops.pairings, 2);
        assert_eq!(ops.g1_muls, 1);
        assert_eq!(ops.gt_pows, 0);
    }

    #[test]
    fn nested_measures_do_not_interfere() {
        let (_, outer) = measure(|| {
            record(CryptoOp::GtPow);
            let (_, inner) = measure(|| record(CryptoOp::GtPow));
            assert_eq!(inner.gt_pows, 1);
            record(CryptoOp::GtPow);
        });
        assert_eq!(outer.gt_pows, 3);
    }

    #[test]
    fn counts_are_thread_local() {
        record(CryptoOp::HashToCurve);
        let handle = std::thread::spawn(|| thread_count(CryptoOp::HashToCurve));
        assert_eq!(handle.join().unwrap(), 0);
    }

    #[test]
    fn ops_mirror_into_global_registry() {
        let before = crate::registry::global()
            .counter("mabe_crypto_ops_total", &[("op", "hash_to_field")])
            .get();
        record(CryptoOp::HashToField);
        let after = crate::registry::global()
            .counter("mabe_crypto_ops_total", &[("op", "hash_to_field")])
            .get();
        assert_eq!(after, before + 1);
    }
}
