//! Span-style latency timers.
//!
//! A [`Span`] measures the wall-clock time between its creation and its
//! drop and records the elapsed microseconds into a histogram named
//! `<name>_latency_us` in the global registry, alongside a
//! `<name>_total` invocation counter. Spans are used around every
//! scheme operation (setup, keygen, encrypt, decrypt, re-encrypt,
//! update-key) and every cloud endpoint.

use std::time::Instant;

use crate::registry::HistogramHandle;

/// Measures one operation from construction to drop.
#[derive(Debug)]
pub struct Span {
    histogram: HistogramHandle,
    start: Instant,
}

impl Span {
    /// Starts a span for operation `name` with extra labels.
    pub fn with_labels(name: &str, labels: &[(&str, &str)]) -> Self {
        let registry = crate::registry::global();
        registry.counter(&format!("{name}_total"), labels).inc();
        Span {
            histogram: registry.histogram(&format!("{name}_latency_us"), labels),
            start: Instant::now(),
        }
    }

    /// Starts an unlabelled span for operation `name`.
    pub fn start(name: &str) -> Self {
        Span::with_labels(name, &[])
    }

    /// Elapsed time so far, in microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.histogram.record(self.elapsed_us());
    }
}

/// Times `f` as a span named `name`, returning `f`'s result.
pub fn time<R>(name: &str, f: impl FnOnce() -> R) -> R {
    let _span = Span::start(name);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let registry = crate::registry::global();
        let before = registry
            .histogram("span_test_op_latency_us", &[])
            .inner()
            .count();
        time("span_test_op", || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        let hist = registry.histogram("span_test_op_latency_us", &[]);
        assert_eq!(hist.inner().count(), before + 1);
        // 1 ms sleep must land at ≥ 1000 µs.
        assert!(hist.inner().sum() >= 1000);
        assert!(registry.counter("span_test_op_total", &[]).get() >= 1);
    }

    #[test]
    fn labelled_spans_split_series() {
        {
            let _a = Span::with_labels("span_label_op", &[("kind", "a")]);
        }
        {
            let _b = Span::with_labels("span_label_op", &[("kind", "b")]);
        }
        let registry = crate::registry::global();
        assert_eq!(
            registry
                .histogram("span_label_op_latency_us", &[("kind", "a")])
                .inner()
                .count(),
            1
        );
        assert_eq!(
            registry
                .histogram("span_label_op_latency_us", &[("kind", "b")])
                .inner()
                .count(),
            1
        );
    }
}
