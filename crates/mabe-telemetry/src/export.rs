//! Registry export: hand-rolled JSON snapshots and Prometheus text
//! exposition format (no serde — this crate stays dependency-free).

use std::fmt::Write as _;

use crate::histogram::{bucket_upper_bound, HistogramSnapshot, BUCKET_COUNT};
use crate::registry::{Key, Registry};

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_labels(key: &Key) -> String {
    let fields: Vec<String> = key
        .labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash first, then quote and newline (a raw newline would split
/// the sample line and corrupt the whole scrape).
fn prom_escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn prom_labels(key: &Key, extra: Option<(&str, String)>) -> String {
    let mut pairs: Vec<String> = key
        .labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, prom_escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

impl Registry {
    /// The full registry state as a JSON document: counters, gauges,
    /// and histograms with count/sum/mean and p50/p95/p99 estimates.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": [");
        let counters = self.counters();
        for (i, (key, value)) in counters.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
                if i > 0 { "," } else { "" },
                json_escape(&key.name),
                json_labels(key),
                value
            );
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        let gauges = self.gauges();
        for (i, (key, value)) in gauges.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
                if i > 0 { "," } else { "" },
                json_escape(&key.name),
                json_labels(key),
                value
            );
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        let histograms = self.histograms();
        for (i, (key, snap)) in histograms.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"name\":\"{}\",\"labels\":{},\"count\":{},\"sum\":{},\"mean\":{:.3},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                if i > 0 { "," } else { "" },
                json_escape(&key.name),
                json_labels(key),
                snap.count,
                snap.sum,
                snap.mean().unwrap_or(0.0),
                snap.p50().unwrap_or(0),
                snap.p95().unwrap_or(0),
                snap.p99().unwrap_or(0),
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// The registry in Prometheus text exposition format. Histograms
    /// emit cumulative `_bucket{le=...}` series (empty buckets are
    /// skipped), `_sum` and `_count`. Each metric family gets exactly
    /// one `# TYPE` line — series are sorted by name, so label variants
    /// of a family are adjacent and share the header.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            if name != last_family {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_family = name.to_string();
            }
        };
        for (key, value) in self.counters() {
            type_line(&mut out, &key.name, "counter");
            let _ = writeln!(out, "{}{} {}", key.name, prom_labels(&key, None), value);
        }
        for (key, value) in self.gauges() {
            type_line(&mut out, &key.name, "gauge");
            let _ = writeln!(out, "{}{} {}", key.name, prom_labels(&key, None), value);
        }
        for (key, snap) in self.histograms() {
            type_line(&mut out, &key.name, "histogram");
            write_prom_histogram(&mut out, &key, &snap);
        }
        out
    }
}

fn write_prom_histogram(out: &mut String, key: &Key, snap: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for i in 0..BUCKET_COUNT {
        if snap.buckets[i] == 0 {
            continue;
        }
        cumulative += snap.buckets[i];
        let le = bucket_upper_bound(i).to_string();
        let _ = writeln!(
            out,
            "{}_bucket{} {}",
            key.name,
            prom_labels(key, Some(("le", le))),
            cumulative
        );
    }
    let _ = writeln!(
        out,
        "{}_bucket{} {}",
        key.name,
        prom_labels(key, Some(("le", "+Inf".to_string()))),
        snap.count
    );
    let _ = writeln!(
        out,
        "{}_sum{} {}",
        key.name,
        prom_labels(key, None),
        snap.sum
    );
    let _ = writeln!(
        out,
        "{}_count{} {}",
        key.name,
        prom_labels(key, None),
        snap.count
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_snapshot_contains_each_instrument() {
        let r = Registry::new();
        r.counter("requests_total", &[("route", "store")]).add(3);
        r.gauge("queue_depth", &[]).set(-2);
        let h = r.histogram("latency_us", &[]);
        h.record(5);
        h.record(7);
        let json = r.snapshot_json();
        assert!(json.contains("\"name\":\"requests_total\""));
        assert!(json.contains("\"route\":\"store\""));
        assert!(json.contains("\"value\":3"));
        assert!(json.contains("\"value\":-2"));
        assert!(json.contains("\"count\":2"));
        assert!(json.contains("\"sum\":12"));
    }

    #[test]
    fn json_escapes_control_and_quote_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn prometheus_emits_cumulative_buckets() {
        let r = Registry::new();
        let h = r.histogram("op_latency_us", &[("op", "decrypt")]);
        h.record(1); // bucket le=1
        h.record(3); // bucket le=3
        h.record(3);
        let text = r.prometheus();
        assert!(text.contains("# TYPE op_latency_us histogram"));
        assert!(text.contains("op_latency_us_bucket{op=\"decrypt\",le=\"1\"} 1"));
        assert!(text.contains("op_latency_us_bucket{op=\"decrypt\",le=\"3\"} 3"));
        assert!(text.contains("op_latency_us_bucket{op=\"decrypt\",le=\"+Inf\"} 3"));
        assert!(text.contains("op_latency_us_sum{op=\"decrypt\"} 7"));
        assert!(text.contains("op_latency_us_count{op=\"decrypt\"} 3"));
    }

    #[test]
    fn prometheus_declares_each_family_once() {
        let r = Registry::new();
        r.counter("ops_total", &[("op", "a")]).inc();
        r.counter("ops_total", &[("op", "b")]).inc();
        r.counter("other_total", &[]).inc();
        let text = r.prometheus();
        assert_eq!(text.matches("# TYPE ops_total counter").count(), 1);
        assert_eq!(text.matches("# TYPE other_total counter").count(), 1);
    }

    #[test]
    fn prometheus_escapes_quote_backslash_and_newline_in_labels() {
        let r = Registry::new();
        r.counter(
            "weird_total",
            &[("path", "a\\b"), ("msg", "say \"hi\"\nbye")],
        )
        .inc();
        let text = r.prometheus();
        assert!(
            text.contains("path=\"a\\\\b\""),
            "backslash escaped: {text}"
        );
        assert!(
            text.contains("msg=\"say \\\"hi\\\"\\nbye\""),
            "quote and newline escaped: {text}"
        );
        // A raw newline inside a label value would split the sample
        // line and corrupt the whole scrape.
        assert!(!text.contains("\nbye"), "raw newline leaked: {text}");
    }

    #[test]
    fn prometheus_counter_without_labels_has_no_braces() {
        let r = Registry::new();
        r.counter("plain_total", &[]).inc();
        assert!(r.prometheus().contains("plain_total 1\n"));
    }
}
