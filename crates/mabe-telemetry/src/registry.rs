//! The metrics registry: named, labelled counters, gauges and
//! histograms, discoverable for export.
//!
//! Instrument lookup takes a short-lived `RwLock` on the name→handle
//! map; the handles themselves are `Arc`-shared atomics, so hot paths
//! should resolve an instrument once and then record lock-free. Each
//! handle carries its registry's enable flag: recording while disabled
//! is one relaxed atomic load.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::histogram::Histogram;

/// A metric identity: name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    /// Metric name, e.g. `mabe_encrypt_latency_us`.
    pub name: String,
    /// Label pairs, kept sorted for deterministic export.
    pub labels: BTreeMap<String, String>,
}

impl Key {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        Key {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }
}

#[inline]
fn recording(enabled: &AtomicBool) -> bool {
    #[cfg(feature = "noop")]
    {
        let _ = enabled;
        false
    }
    #[cfg(not(feature = "noop"))]
    {
        enabled.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing counter handle.
#[derive(Clone, Debug)]
pub struct Counter {
    value: Arc<AtomicU64>,
    enabled: Arc<AtomicBool>,
}

impl Counter {
    /// Adds `n` (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if recording(&self.enabled) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge handle (a value that can go up and down).
#[derive(Clone, Debug)]
pub struct Gauge {
    value: Arc<AtomicI64>,
    enabled: Arc<AtomicBool>,
}

impl Gauge {
    /// Sets the gauge (no-op while telemetry is disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if recording(&self.enabled) {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        if recording(&self.enabled) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A histogram handle.
#[derive(Clone, Debug)]
pub struct HistogramHandle {
    value: Arc<Histogram>,
    enabled: Arc<AtomicBool>,
}

impl HistogramHandle {
    /// Records one observation (no-op while telemetry is disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if recording(&self.enabled) {
            self.value.record(value);
        }
    }

    /// Access to the underlying histogram (for snapshots and merging).
    pub fn inner(&self) -> &Histogram {
        &self.value
    }
}

/// Holds every registered instrument.
pub struct Registry {
    enabled: Arc<AtomicBool>,
    counters: RwLock<BTreeMap<Key, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<Key, Arc<AtomicI64>>>,
    histograms: RwLock<BTreeMap<Key, Arc<Histogram>>>,
}

fn intern<T: Default>(map: &RwLock<BTreeMap<Key, Arc<T>>>, key: Key) -> Arc<T> {
    if let Some(existing) = map.read().expect("registry lock").get(&key) {
        return Arc::clone(existing);
    }
    let mut w = map.write().expect("registry lock");
    Arc::clone(w.entry(key).or_default())
}

impl Registry {
    /// A fresh registry with telemetry enabled.
    pub fn new() -> Self {
        Registry {
            enabled: Arc::new(AtomicBool::new(true)),
            counters: RwLock::default(),
            gauges: RwLock::default(),
            histograms: RwLock::default(),
        }
    }

    /// Whether this registry is currently recording.
    pub fn is_enabled(&self) -> bool {
        recording(&self.enabled)
    }

    /// Turns recording on or off. Handles stay valid either way;
    /// records made while disabled are dropped.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Returns (registering on first use) the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        Counter {
            value: intern(&self.counters, Key::new(name, labels)),
            enabled: Arc::clone(&self.enabled),
        }
    }

    /// Returns (registering on first use) the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        Gauge {
            value: intern(&self.gauges, Key::new(name, labels)),
            enabled: Arc::clone(&self.enabled),
        }
    }

    /// Returns (registering on first use) the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> HistogramHandle {
        HistogramHandle {
            value: intern(&self.histograms, Key::new(name, labels)),
            enabled: Arc::clone(&self.enabled),
        }
    }

    /// All counters with their current values, sorted by key.
    pub fn counters(&self) -> Vec<(Key, u64)> {
        self.counters
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// All gauges with their current values, sorted by key.
    pub fn gauges(&self) -> Vec<(Key, i64)> {
        self.gauges
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// All histograms as snapshots, sorted by key.
    pub fn histograms(&self) -> Vec<(Key, crate::histogram::HistogramSnapshot)> {
        self.histograms
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Zeroes every instrument without dropping handles already held
    /// by callers (handles stay live and keep recording).
    pub fn reset(&self) {
        for c in self.counters.read().expect("registry lock").values() {
            c.store(0, Ordering::Relaxed);
        }
        for g in self.gauges.read().expect("registry lock").values() {
            g.store(0, Ordering::Relaxed);
        }
        for h in self.histograms.read().expect("registry lock").values() {
            h.reset();
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry every instrumented crate records into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_alias_by_key() {
        let r = Registry::new();
        let a = r.counter("hits", &[("route", "store")]);
        let b = r.counter("hits", &[("route", "store")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let other = r.counter("hits", &[("route", "fetch")]);
        assert_eq!(other.get(), 0);
        assert_eq!(r.counters().len(), 2);
    }

    #[test]
    fn gauges_move_both_ways() {
        let r = Registry::new();
        let g = r.gauge("depth", &[]);
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn reset_keeps_handles_live() {
        let r = Registry::new();
        let c = r.counter("n", &[]);
        c.inc();
        r.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let r = Registry::new();
        let a = r.counter("x", &[("a", "1"), ("b", "2")]);
        let b = r.counter("x", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn disabling_drops_records_but_keeps_handles() {
        let r = Registry::new();
        let c = r.counter("toggle_total", &[]);
        let h = r.histogram("toggle_latency_us", &[]);
        c.inc();
        h.record(10);
        r.set_enabled(false);
        assert!(!r.is_enabled());
        c.inc();
        h.record(10);
        r.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 2);
        assert_eq!(h.inner().count(), 1);
    }
}
