//! Lock-free log₂-bucketed histograms.
//!
//! Values (typically latencies in microseconds or sizes in bytes) land
//! in one of 65 buckets: bucket 0 holds the value `0`, bucket `i ≥ 1`
//! holds `[2^(i-1), 2^i)`. Recording is a single relaxed
//! `fetch_add`, so histograms are safe to share across threads and
//! cheap enough for hot paths. Percentiles are estimated from bucket
//! upper bounds, which over-reports by at most 2× — adequate for the
//! order-of-magnitude latency tracking this workspace needs.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub const BUCKET_COUNT: usize = 65;

/// A concurrent log₂ histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
}

/// Index of the bucket holding `value`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `index` (the value reported for
/// percentiles falling in that bucket).
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        // `AtomicU64` is not `Copy`, so build the array element-wise.
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKET_COUNT],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Folds another histogram's observations into this one.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
    }

    /// Resets every bucket to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy for export and percentile queries.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKET_COUNT];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count(),
            sum: self.sum(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub buckets: [u64; BUCKET_COUNT],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Value at quantile `q` in `[0, 1]`, reported as the upper bound
    /// of the bucket containing the target rank. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based; q=0 maps to rank 1.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(bucket_upper_bound(BUCKET_COUNT - 1))
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Mean of observed values.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_follows_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(255), 8);
        assert_eq!(bucket_index(256), 9);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_are_inclusive_maxima() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(8), 255);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 4, 100, 1 << 40, u64::MAX] {
            assert!(v <= bucket_upper_bound(bucket_index(v)));
        }
    }

    #[test]
    fn record_tracks_count_and_sum() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1011);
        assert_eq!(snap.buckets[0], 1); // the zero
        assert_eq!(snap.buckets[3], 2); // the two fives
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let h = Histogram::new();
        // 90 fast observations (value 1) and 10 slow ones (value 1000).
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.p50(), Some(1));
        // p95 lands among the slow tail; 1000 lives in bucket 10 (≤1023).
        assert_eq!(snap.p95(), Some(1023));
        assert_eq!(snap.p99(), Some(1023));
        assert_eq!(snap.quantile(0.0), Some(1));
        assert_eq!(snap.quantile(1.0), Some(1023));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        assert_eq!(Histogram::new().snapshot().p50(), None);
        // ... at any q, including the clamped extremes.
        let empty = Histogram::new().snapshot();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            assert_eq!(empty.quantile(q), None);
        }
    }

    #[test]
    fn single_sample_answers_every_quantile() {
        let h = Histogram::new();
        h.record(6); // bucket 3, upper bound 7
        let s = h.snapshot();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(s.quantile(q), Some(7));
        }
        // Out-of-range q clamps instead of panicking or skewing.
        assert_eq!(s.quantile(-3.0), Some(7));
        assert_eq!(s.quantile(42.0), Some(7));
    }

    #[test]
    fn quantile_extremes_hit_the_min_and_max_buckets() {
        let h = Histogram::new();
        h.record(0);
        h.record(1 << 20);
        let s = h.snapshot();
        // q=0 is rank 1 — the smallest observation's bucket, not "below
        // everything"; q=1 is rank n — the largest bucket, not past it.
        assert_eq!(s.quantile(0.0), Some(0));
        assert_eq!(s.quantile(1.0), Some((1u64 << 21) - 1));
    }

    #[test]
    fn merge_accumulates_everything() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 2, 3] {
            a.record(v);
        }
        for v in [100u64, 200] {
            b.record(v);
        }
        a.merge(&b);
        let snap = a.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 306);
    }

    #[test]
    fn reset_clears_state() {
        let h = Histogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.snapshot().count, 0);
        assert_eq!(h.snapshot().sum, 0);
    }
}
