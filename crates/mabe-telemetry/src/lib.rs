//! # mabe-telemetry
//!
//! Zero-dependency observability for the MA-ABAC workspace:
//!
//! - a process-wide [`registry::Registry`] of named, labelled counters,
//!   gauges and log₂-bucketed latency [`histogram::Histogram`]s with
//!   p50/p95/p99 estimation, exportable as a JSON snapshot or in
//!   Prometheus text exposition format;
//! - [`ops`] — thread-local crypto operation accounting (pairings, G₁
//!   and G_T exponentiations, hash-to-group), the hooks `mabe-math`
//!   calls so tests can assert the paper's operation-count formulas
//!   (e.g. decryption = `n_A + 2|I|` pairings);
//! - [`span`] — RAII timers recording operation latency histograms for
//!   every scheme and cloud-server operation.
//!
//! ## Cost when disabled
//!
//! Every record path first checks one relaxed atomic flag; after
//! [`set_enabled`]`(false)` instrumentation reduces to that single
//! load. Compiling with the `noop` feature removes even the load.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod histogram;
pub mod ops;
pub mod registry;
pub mod span;

pub use histogram::{Histogram, HistogramSnapshot};
pub use ops::{measure, record, CryptoOp, OpSnapshot};
pub use registry::{global, Counter, Gauge, HistogramHandle, Registry};
pub use span::{time, Span};

/// Whether the global registry is currently recording.
#[inline]
pub fn enabled() -> bool {
    registry::global().is_enabled()
}

/// Turns recording on or off process-wide (the global registry).
/// Handles stay valid either way; records made while disabled are
/// dropped.
pub fn set_enabled(on: bool) {
    registry::global().set_enabled(on);
}
