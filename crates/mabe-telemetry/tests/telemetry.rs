//! Integration tests for mabe-telemetry: histogram bucketing and
//! percentile behaviour, a property test that merging histograms
//! preserves totals, and a concurrency smoke test showing parallel
//! counter increments are lossless.

use proptest::prelude::*;

use mabe_telemetry::histogram::{bucket_index, bucket_upper_bound, Histogram, BUCKET_COUNT};
use mabe_telemetry::Registry;

#[test]
fn every_value_lands_at_or_below_its_bucket_bound() {
    for shift in 0..64u32 {
        let v = 1u64 << shift;
        for probe in [v.saturating_sub(1), v, v.saturating_add(1)] {
            let i = bucket_index(probe);
            assert!(i < BUCKET_COUNT);
            assert!(
                probe <= bucket_upper_bound(i),
                "value {probe} above bound of bucket {i}"
            );
            if i > 0 {
                assert!(
                    probe > bucket_upper_bound(i - 1),
                    "value {probe} fits earlier bucket {}",
                    i - 1
                );
            }
        }
    }
}

#[test]
fn percentiles_are_monotone_in_q() {
    let h = Histogram::new();
    for v in [1u64, 10, 100, 1_000, 10_000, 100_000] {
        for _ in 0..7 {
            h.record(v);
        }
    }
    let snap = h.snapshot();
    let mut last = 0u64;
    for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
        let value = snap.quantile(q).unwrap();
        assert!(value >= last, "quantile({q}) went backwards");
        last = value;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merged_histograms_preserve_total_count_and_sum(
        left in prop::collection::vec(any::<u32>(), 0..40),
        right in prop::collection::vec(any::<u32>(), 0..40),
    ) {
        let a = Histogram::new();
        let b = Histogram::new();
        for &v in &left {
            a.record(v as u64);
        }
        for &v in &right {
            b.record(v as u64);
        }
        a.merge(&b);
        let merged = a.snapshot();
        prop_assert_eq!(merged.count, (left.len() + right.len()) as u64);
        let expected_sum: u64 = left.iter().chain(right.iter()).map(|&v| v as u64).sum();
        prop_assert_eq!(merged.sum, expected_sum);
        let bucket_total: u64 = merged.buckets.iter().sum();
        prop_assert_eq!(bucket_total, merged.count);
    }

    #[test]
    fn quantile_never_underestimates_an_observation_floor(
        values in prop::collection::vec(0u64..1_000_000, 1..50),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let min = *values.iter().min().unwrap();
        // Bucket upper bounds only round up, never below the smallest
        // observation.
        prop_assert!(snap.quantile(0.0).unwrap() >= min);
        prop_assert!(snap.quantile(1.0).unwrap() >= *values.iter().max().unwrap());
    }
}

#[test]
fn parallel_counter_increments_are_lossless() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let registry = Registry::new();
    let counter = registry.counter("smoke_total", &[("kind", "parallel")]);
    let histogram = registry.histogram("smoke_latency_us", &[]);
    crossbeam::thread::scope(|s| {
        for t in 0..THREADS {
            let counter = counter.clone();
            let histogram = histogram.clone();
            s.spawn(move |_| {
                for i in 0..PER_THREAD {
                    counter.inc();
                    histogram.record(t * PER_THREAD + i);
                }
            });
        }
    })
    .expect("no thread panicked");
    assert_eq!(counter.get(), THREADS * PER_THREAD);
    let snap = histogram.inner().snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    assert_eq!(snap.buckets.iter().sum::<u64>(), THREADS * PER_THREAD);
}

#[test]
fn export_roundtrip_covers_all_instrument_kinds() {
    let r = Registry::new();
    r.counter("jobs_total", &[("queue", "a")]).add(4);
    r.gauge("inflight", &[]).set(2);
    r.histogram("wait_us", &[]).record(33);
    let json = r.snapshot_json();
    let prom = r.prometheus();
    for needle in ["jobs_total", "inflight", "wait_us"] {
        assert!(json.contains(needle), "JSON missing {needle}");
        assert!(prom.contains(needle), "Prometheus missing {needle}");
    }
}
