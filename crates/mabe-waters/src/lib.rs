//! # mabe-waters
//!
//! Single-authority baseline: **Waters' CP-ABE** (PKC 2011,
//! construction 1, random-oracle attribute hashing) — the paper's
//! reference \[3\]. Two reasons it belongs in this reproduction:
//!
//! 1. The paper's Theorem 2 reduces its multi-authority security game to
//!    "the construction in \[3\]" — this crate is that construction,
//!    executable on the same pairing.
//! 2. It demonstrates §II's point that single-authority CP-ABE cannot
//!    serve multi-authority systems: one authority manages the entire
//!    attribute universe and, holding `MK = g^α`, can issue itself keys
//!    for any attribute set (pinned by the escrow test below).
//!
//! ## Scheme
//!
//! * `Setup`: `α, a ∈ Z_p`; `PK = (g, g^a, e(g,g)^α)`, `MK = g^α`.
//! * `KeyGen(S)`: `t` random; `K = g^α·g^{at}`, `L = g^t`,
//!   `K_x = H(x)^t` for `x ∈ S`.
//! * `Encrypt(m, (M, ρ))`: shares `λ_i` of `s`; per row `r_i` random:
//!   `C = m·e(g,g)^{αs}`, `C' = g^s`,
//!   `C_i = g^{aλ_i}·H(ρ(i))^{-r_i}`, `D_i = g^{r_i}`.
//! * `Decrypt`: `e(C', K) / Π_i (e(C_i, L)·e(D_i, K_{ρ(i)}))^{w_i}
//!   = e(g,g)^{αs}`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use rand::RngCore;

use mabe_math::{generator_mul, hash_to_curve, pairing, Fr, G1Affine, Gt, G1};
use mabe_policy::{AccessStructure, Attribute};

/// Errors from the Waters scheme.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WatersError {
    /// The key's attribute set does not satisfy the access structure.
    PolicyNotSatisfied,
}

impl fmt::Display for WatersError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatersError::PolicyNotSatisfied => {
                write!(f, "attributes do not satisfy the access policy")
            }
        }
    }
}

impl std::error::Error for WatersError {}

/// Hash of an attribute onto the group (`H : {0,1}* → G`).
fn hash_attr(attr: &Attribute) -> G1Affine {
    hash_to_curve(&[b"waters-attr:", attr.canonical_bytes().as_slice()].concat())
}

/// The single authority: public parameters plus the master key.
pub struct WatersAuthority {
    alpha: Fr,
    a: Fr,
}

/// Public parameters `(g, g^a, e(g,g)^α)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WatersPublicKey {
    /// `g^a`.
    pub g_a: G1Affine,
    /// `e(g,g)^α`.
    pub e_alpha: Gt,
}

/// A user's secret key for an attribute set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WatersUserKey {
    /// `K = g^α · g^{at}`.
    pub k: G1Affine,
    /// `L = g^t`.
    pub l: G1Affine,
    /// `K_x = H(x)^t` per attribute.
    pub kx: BTreeMap<Attribute, G1Affine>,
}

/// A Waters ciphertext.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WatersCiphertext {
    /// `C = m · e(g,g)^{αs}`.
    pub c: Gt,
    /// `C' = g^s`.
    pub c_prime: G1Affine,
    /// Per-row `(C_i, D_i)`.
    pub rows: Vec<(G1Affine, G1Affine)>,
    /// The embedded access structure.
    pub access: AccessStructure,
}

impl WatersCiphertext {
    /// Wire size in bytes with the workspace's element accounting
    /// (`|G_T| + (2l + 1)·|G|`; `|G|` = 65 B, `|G_T|` = 128 B).
    pub fn wire_size(&self) -> usize {
        128 + (2 * self.rows.len() + 1) * 65
    }
}

impl WatersUserKey {
    /// Wire size in bytes (`(n + 2)·|G|`).
    pub fn wire_size(&self) -> usize {
        (self.kx.len() + 2) * 65
    }
}

impl WatersAuthority {
    /// Runs `Setup`.
    pub fn setup<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        WatersAuthority {
            alpha: nonzero(rng),
            a: nonzero(rng),
        }
    }

    /// The public parameters.
    pub fn public_key(&self) -> WatersPublicKey {
        WatersPublicKey {
            g_a: G1Affine::from(generator_mul(&self.a)),
            e_alpha: Gt::generator().pow(&self.alpha),
        }
    }

    /// Runs `KeyGen` for an attribute set. Note: there is ONE authority
    /// for the whole universe — any `Attribute` is in scope, whatever
    /// its `@authority` label claims. That is precisely the
    /// single-authority limitation the paper's system removes.
    pub fn keygen<R: RngCore + ?Sized>(
        &self,
        attrs: &BTreeSet<Attribute>,
        rng: &mut R,
    ) -> WatersUserKey {
        let t = nonzero(rng);
        let k = generator_mul(&self.alpha).add(&generator_mul(&self.a.mul(&t)));
        let l = G1Affine::from(generator_mul(&t));
        let kx = attrs
            .iter()
            .map(|x| (x.clone(), G1Affine::from(G1::from(hash_attr(x)).mul(&t))))
            .collect();
        WatersUserKey {
            k: G1Affine::from(k),
            l,
            kx,
        }
    }
}

fn nonzero<R: RngCore + ?Sized>(rng: &mut R) -> Fr {
    loop {
        let candidate = Fr::random(rng);
        if !candidate.is_zero() {
            return candidate;
        }
    }
}

/// Runs `Encrypt` over a `G_T` message.
pub fn encrypt<R: RngCore + ?Sized>(
    message: &Gt,
    access: &AccessStructure,
    pk: &WatersPublicKey,
    rng: &mut R,
) -> WatersCiphertext {
    let s = nonzero(rng);
    let shares = access.share(&s, rng);
    let c = message.mul(&pk.e_alpha.pow(&s));
    let c_prime = G1Affine::from(generator_mul(&s));
    let mut projective = Vec::with_capacity(2 * access.rows());
    for (i, lambda) in shares.iter().enumerate() {
        let r_i = nonzero(rng);
        let attr = &access.rho()[i];
        // C_i = (g^a)^{λ_i} · H(ρ(i))^{-r_i}
        projective.push(
            G1::from(pk.g_a)
                .mul(lambda)
                .add(&G1::from(hash_attr(attr)).mul(&r_i).neg()),
        );
        // D_i = g^{r_i}
        projective.push(generator_mul(&r_i));
    }
    let affine = mabe_math::batch_normalize(&projective);
    let rows = affine
        .chunks_exact(2)
        .map(|pair| (pair[0], pair[1]))
        .collect();
    WatersCiphertext {
        c,
        c_prime,
        rows,
        access: access.clone(),
    }
}

/// Runs `Decrypt`.
///
/// # Errors
///
/// [`WatersError::PolicyNotSatisfied`] if the key's attributes cannot
/// reconstruct the sharing.
pub fn decrypt(ct: &WatersCiphertext, key: &WatersUserKey) -> Result<Gt, WatersError> {
    let attrs: BTreeSet<Attribute> = key.kx.keys().cloned().collect();
    let coefficients = ct
        .access
        .reconstruction_coefficients(&attrs)
        .ok_or(WatersError::PolicyNotSatisfied)?;
    let numerator = pairing(&ct.c_prime, &key.k);
    let mut denominator = Gt::one();
    for (row, w) in &coefficients {
        let attr = &ct.access.rho()[*row];
        let kx = key.kx.get(attr).ok_or(WatersError::PolicyNotSatisfied)?;
        let (c_i, d_i) = &ct.rows[*row];
        let term = pairing(c_i, &key.l).mul(&pairing(d_i, kx));
        denominator = denominator.mul(&term.pow(w));
    }
    Ok(ct.c.div(&numerator.div(&denominator)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mabe_policy::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2011)
    }

    fn access(src: &str) -> AccessStructure {
        AccessStructure::from_policy(&parse(src).unwrap()).unwrap()
    }

    fn attrset(items: &[&str]) -> BTreeSet<Attribute> {
        items.iter().map(|s| s.parse().unwrap()).collect()
    }

    #[test]
    fn roundtrip_simple_and_threshold() {
        let mut r = rng();
        let auth = WatersAuthority::setup(&mut r);
        let pk = auth.public_key();
        let msg = Gt::random(&mut r);
        for policy in ["A@U", "A@U AND B@U", "2 of (A@U, B@U, C@U)"] {
            let ct = encrypt(&msg, &access(policy), &pk, &mut r);
            let key = auth.keygen(&attrset(&["A@U", "B@U"]), &mut r);
            assert_eq!(decrypt(&ct, &key).unwrap(), msg, "policy {policy}");
        }
    }

    #[test]
    fn unsatisfying_rejected() {
        let mut r = rng();
        let auth = WatersAuthority::setup(&mut r);
        let pk = auth.public_key();
        let msg = Gt::random(&mut r);
        let ct = encrypt(&msg, &access("A@U AND B@U"), &pk, &mut r);
        let key = auth.keygen(&attrset(&["A@U"]), &mut r);
        assert_eq!(decrypt(&ct, &key), Err(WatersError::PolicyNotSatisfied));
    }

    #[test]
    fn collusion_fails() {
        // User 1 holds A, user 2 holds B; splicing K_x across keys (the
        // per-key randomness t differs) must not decrypt A AND B.
        let mut r = rng();
        let auth = WatersAuthority::setup(&mut r);
        let pk = auth.public_key();
        let msg = Gt::random(&mut r);
        let ct = encrypt(&msg, &access("A@U AND B@U"), &pk, &mut r);
        let k1 = auth.keygen(&attrset(&["A@U"]), &mut r);
        let k2 = auth.keygen(&attrset(&["B@U"]), &mut r);
        let mut franken = k1.clone();
        franken.kx.extend(k2.kx.clone());
        assert_ne!(decrypt(&ct, &franken).unwrap(), msg);
        // Using user 2's L doesn't help either.
        franken.l = k2.l;
        assert_ne!(decrypt(&ct, &franken).unwrap(), msg);
    }

    #[test]
    fn single_authority_escrow_over_the_whole_universe() {
        // §II's motivation, executable: one authority spans every
        // "organization" — it can mint keys for attributes that
        // semantically belong to different domains, so no real
        // multi-authority trust separation exists.
        let mut r = rng();
        let auth = WatersAuthority::setup(&mut r);
        let pk = auth.public_key();
        let msg = Gt::random(&mut r);
        // A policy that *looks* multi-authority:
        let ct = encrypt(
            &msg,
            &access("Doctor@MedOrg AND Researcher@Trial"),
            &pk,
            &mut r,
        );
        // The single authority grants itself everything and decrypts.
        let self_issued = auth.keygen(&attrset(&["Doctor@MedOrg", "Researcher@Trial"]), &mut r);
        assert_eq!(decrypt(&ct, &self_issued).unwrap(), msg);
    }

    #[test]
    fn rerandomized_keys_and_ciphertexts() {
        let mut r = rng();
        let auth = WatersAuthority::setup(&mut r);
        let pk = auth.public_key();
        let k1 = auth.keygen(&attrset(&["A@U"]), &mut r);
        let k2 = auth.keygen(&attrset(&["A@U"]), &mut r);
        assert_ne!(k1, k2, "fresh t per key");
        let msg = Gt::random(&mut r);
        let ct1 = encrypt(&msg, &access("A@U"), &pk, &mut r);
        let ct2 = encrypt(&msg, &access("A@U"), &pk, &mut r);
        assert_ne!(ct1.c, ct2.c);
        // Both keys decrypt both ciphertexts.
        for ct in [&ct1, &ct2] {
            for key in [&k1, &k2] {
                assert_eq!(decrypt(ct, key).unwrap(), msg);
            }
        }
    }

    #[test]
    fn complex_policy() {
        let mut r = rng();
        let auth = WatersAuthority::setup(&mut r);
        let pk = auth.public_key();
        let msg = Gt::random(&mut r);
        let ct = encrypt(
            &msg,
            &access("(A@U AND B@U) OR 2 of (C@U, D@U, E@U)"),
            &pk,
            &mut r,
        );
        assert_eq!(
            decrypt(&ct, &auth.keygen(&attrset(&["C@U", "E@U"]), &mut r)).unwrap(),
            msg
        );
        assert_eq!(
            decrypt(&ct, &auth.keygen(&attrset(&["A@U", "B@U"]), &mut r)).unwrap(),
            msg
        );
        assert_eq!(
            decrypt(&ct, &auth.keygen(&attrset(&["A@U", "C@U"]), &mut r)),
            Err(WatersError::PolicyNotSatisfied)
        );
    }
}
