//! Chaos suite: randomized, seeded fault schedules over the full
//! protocol lifecycle.
//!
//! Each scenario builds a two-authority world, then runs grants, reads,
//! publishes, outages, and revocations with a seeded [`FaultPlan`]
//! injecting drops, delays, corruption, duplicates, storage errors, and
//! mid-revocation crashes. After the schedule the injector is disarmed
//! and the system is driven to convergence ([`CloudSystem::recover`] +
//! [`CloudSystem::sync_user`] for everyone). The security and
//! consistency invariants must then hold regardless of what the faults
//! did:
//!
//! 1. no revocation is left pending and the audit journal is closed;
//! 2. a revoked attribute/user never decrypts post-convergence;
//! 3. non-revoked holders (including users offline through the
//!    revocation) still read everything their attributes allow;
//! 4. wire byte accounting stays exact (`sent == delivered + lost`);
//! 5. server snapshots survive restore, and corrupted snapshots are
//!    rejected without panicking.
//!
//! Every seed runs twice: once eager and once with lazy revocation,
//! where the schedule additionally crashes the deferred-queue paths
//! (`cloud.lazy_enqueue`, `cloud.lazy_drain`, `cloud.read_upgrade`) and
//! convergence must also drain the pending-upgrade queue.
//!
//! Seeds are fixed so failures reproduce; set `RANDOM_SEED=<u64>` to run
//! one extra exploratory schedule (CI logs the seed on failure).

use mabe_cloud::{fault_points, CloudError, CloudServer, CloudSystem};
use mabe_core::{OwnerId, Uid};
use mabe_faults::{FaultInjector, FaultKind, FaultPlan};
use mabe_policy::AuthorityId;

struct World {
    sys: CloudSystem,
    med: AuthorityId,
    trial: AuthorityId,
    hospital: OwnerId,
    alice: Uid,
    bob: Uid,
    carol: Uid,
    dave: Uid,
}

/// Builds the world fault-free, then arms the seeded fault plan. With
/// `lazy` the revocations defer their re-encryption onto the pending
/// queue, and the schedule additionally crashes the enqueue/drain/
/// read-upgrade paths.
fn chaotic_world(seed: u64, lazy: bool) -> World {
    let mut sys = CloudSystem::new(seed);
    let med = sys.add_authority("MedOrg", &["Doctor", "Nurse"]).unwrap();
    let trial = sys
        .add_authority("Trial", &["Researcher", "Sponsor"])
        .unwrap();
    let hospital = sys.add_owner("hospital").unwrap();
    let alice = sys.add_user("alice").unwrap();
    let bob = sys.add_user("bob").unwrap();
    let carol = sys.add_user("carol").unwrap();
    let dave = sys.add_user("dave").unwrap();
    sys.grant(&alice, &["Doctor@MedOrg"]).unwrap();
    sys.grant(&bob, &["Doctor@MedOrg", "Nurse@MedOrg"]).unwrap();
    sys.grant(&carol, &["Researcher@Trial"]).unwrap();
    sys.grant(&dave, &["Researcher@Trial", "Nurse@MedOrg"])
        .unwrap();
    sys.publish(
        &hospital,
        "med",
        &[("m", b"diagnosis".as_slice(), "Doctor@MedOrg")],
    )
    .unwrap();
    sys.publish(
        &hospital,
        "nursing",
        &[("n", b"charts".as_slice(), "Nurse@MedOrg")],
    )
    .unwrap();
    sys.publish(
        &hospital,
        "trial",
        &[("t", b"cohort".as_slice(), "Researcher@Trial")],
    )
    .unwrap();

    // Seeded chaos: transient wire faults everywhere, crashes focused on
    // the multi-step revocation path, all bounded by a budget so every
    // schedule eventually quiesces.
    let plan = FaultPlan::new(seed)
        .rate_all(FaultKind::Drop, 0.08)
        .rate_all(FaultKind::Delay, 0.10)
        .rate_all(FaultKind::Duplicate, 0.05)
        .rate(fault_points::READ_FETCH, FaultKind::Corrupt, 0.10)
        .rate(fault_points::PUBLISH_STORE, FaultKind::StorageError, 0.10)
        .rate(fault_points::REVOKE_UPDATE_DELIVER, FaultKind::Crash, 0.20)
        .rate(fault_points::REVOKE_REENCRYPT, FaultKind::Crash, 0.20)
        .rate(fault_points::REVOKE_FRESH_KEY, FaultKind::Drop, 0.25)
        .rate(fault_points::LAZY_ENQUEUE, FaultKind::Crash, 0.20)
        .rate(fault_points::LAZY_DRAIN, FaultKind::Crash, 0.20)
        .rate(fault_points::READ_UPGRADE, FaultKind::StorageError, 0.10)
        .delay_us(750)
        .budget(48);
    sys.set_lazy_revocation(lazy);
    *sys.faults_mut() = FaultInjector::new(plan);

    World {
        sys,
        med,
        trial,
        hospital,
        alice,
        bob,
        carol,
        dave,
    }
}

/// Retries `revoke` until the authority's `ReKey` has happened — after
/// that point the revocation intent is journaled and convergence is the
/// recovery machinery's job, which is exactly what this suite tests.
fn revoke_until_begun(
    w: &mut World,
    aid: AuthorityId,
    f: impl Fn(&mut CloudSystem) -> Result<(), CloudError>,
) {
    let before = w.sys.authority_version(&aid).unwrap();
    for _ in 0..64 {
        let _ = f(&mut w.sys);
        if w.sys.authority_version(&aid).unwrap() > before {
            return;
        }
    }
    // Unreachable in practice (the fault budget drains first), but keeps
    // the test honest instead of spinning forever.
    w.sys.faults_mut().disarm();
    f(&mut w.sys).expect("revocation with faults disarmed");
    w.sys.faults_mut().arm();
}

/// One full chaos schedule followed by convergence and invariant checks.
fn run_scenario(seed: u64, lazy: bool) {
    // On any assertion failure below, dump the flight recorder to
    // `trace_<seed>_chaos.json` (under `MABE_TRACE_DIR`, or
    // `target/trace-artifacts`) and the wide-event ring to
    // `events_<seed>_chaos.jsonl` (under `MABE_EVENTS_DIR`) before the
    // panic propagates — the events index the failure, the trace holds
    // the span-level forensics, joined on `trace_id`.
    let _forensics = mabe_trace::FailureDump::new(seed, "chaos");
    let _events = mabe_events::EventsDump::new(seed, "chaos");
    let mut w = chaotic_world(seed, lazy);

    // Background traffic while faults are live: every outcome is
    // tolerated here, the contract is "no panic, exact accounting".
    for _ in 0..3 {
        let _ = w.sys.read(&w.alice, &w.hospital, "med", "m");
        let _ = w.sys.read(&w.bob, &w.hospital, "nursing", "n");
        let _ = w.sys.read(&w.carol, &w.hospital, "trial", "t");
        let _ = w.sys.read(&w.dave, &w.hospital, "trial", "t");
    }

    // An authority outage: control plane blocked, reads unaffected.
    w.sys.set_authority_down(&w.med);
    assert!(
        w.sys.grant(&w.alice, &["Nurse@MedOrg"]).is_err(),
        "seed {seed}: grant succeeded against a downed authority"
    );
    let _ = w.sys.read(&w.bob, &w.hospital, "med", "m");
    w.sys.set_authority_up(&w.med);

    // Bob goes offline and stays offline through both revocations; his
    // update keys must queue and replay on sync without loss.
    w.sys.set_offline(&w.bob);

    let alice = w.alice.clone();
    let med = w.med.clone();
    revoke_until_begun(&mut w, med, |sys| sys.revoke(&alice, "Doctor@MedOrg"));

    let dave = w.dave.clone();
    let trial = w.trial.clone();
    revoke_until_begun(&mut w, trial.clone(), |sys| {
        sys.revoke_user_at(&dave, &trial)
    });

    // More traffic (and a publish) racing the possibly-stalled
    // revocations.
    let _ = w.sys.publish(
        &w.hospital,
        "late",
        &[("l", b"post-revocation".as_slice(), "Nurse@MedOrg")],
    );
    for _ in 0..2 {
        let _ = w.sys.read(&w.carol, &w.hospital, "trial", "t");
        let _ = w.sys.read(&w.alice, &w.hospital, "med", "m");
    }
    // Opportunistic drains racing the fault schedule: a crashed drain
    // must release its claim and leave the queue intact for retry.
    let _ = w.sys.drain_lazy();
    let _ = w.sys.drain_lazy();

    // ---- convergence ----
    w.sys.faults_mut().disarm();
    for _ in 0..8 {
        if !w.sys.needs_recovery() {
            break;
        }
        w.sys.recover().expect("recover with faults disarmed");
    }
    assert!(
        !w.sys.needs_recovery(),
        "seed {seed}: revocations still pending after recovery: {:?}",
        w.sys.pending_revocations()
    );
    while w.sys.lazy_queue_depth() > 0 {
        let drained = w.sys.drain_lazy().expect("drain_lazy with faults disarmed");
        assert!(drained > 0, "seed {seed}: lazy queue stuck");
    }
    assert!(
        w.sys.audit().incomplete_revocations().is_empty(),
        "seed {seed}: audit journal shows incomplete revocations"
    );

    for uid in [&w.alice, &w.bob, &w.carol, &w.dave] {
        w.sys.sync_user(uid).expect("fault-free sync");
    }

    // The "late" publish may have lost the coin toss against the fault
    // budget; republish fault-free so the post-convergence reads below
    // are deterministic.
    if w.sys.read(&w.bob, &w.hospital, "late", "l").is_err() {
        w.sys
            .publish(
                &w.hospital,
                "late",
                &[("l", b"post-revocation".as_slice(), "Nurse@MedOrg")],
            )
            .expect("fault-free republish");
    }

    // ---- invariant 2: revoked access is gone, everywhere, forever ----
    assert!(
        w.sys.read(&w.alice, &w.hospital, "med", "m").is_err(),
        "seed {seed}: alice decrypts with a revoked attribute"
    );
    assert!(
        w.sys.read(&w.dave, &w.hospital, "trial", "t").is_err(),
        "seed {seed}: dave decrypts after user revocation at Trial"
    );

    // ---- invariant 3: everyone else still reads what they should ----
    assert_eq!(
        w.sys.read(&w.bob, &w.hospital, "med", "m").unwrap(),
        b"diagnosis",
        "seed {seed}: bob (offline through revocation) lost access"
    );
    assert_eq!(
        w.sys.read(&w.bob, &w.hospital, "nursing", "n").unwrap(),
        b"charts",
        "seed {seed}: bob's untouched nursing access broke"
    );
    assert_eq!(
        w.sys.read(&w.carol, &w.hospital, "trial", "t").unwrap(),
        b"cohort",
        "seed {seed}: carol (never revoked) lost Trial access"
    );
    assert_eq!(
        w.sys.read(&w.dave, &w.hospital, "nursing", "n").unwrap(),
        b"charts",
        "seed {seed}: dave's untouched MedOrg attributes must survive"
    );
    assert_eq!(
        w.sys.read(&w.bob, &w.hospital, "late", "l").unwrap(),
        b"post-revocation",
        "seed {seed}: post-revocation publish unreadable after convergence"
    );

    // A second sync must be a no-op (no stale keys parked anywhere).
    for uid in [&w.alice, &w.bob, &w.carol, &w.dave] {
        w.sys.sync_user(uid).expect("idempotent resync");
    }
    assert!(
        w.sys.read(&w.alice, &w.hospital, "med", "m").is_err(),
        "seed {seed}: alice regained revoked access after a resync"
    );

    // ---- invariant 4: exact byte accounting under faults ----
    let report = w.sys.wire().delivery_report();
    assert_eq!(
        report.bytes_sent,
        report.bytes_delivered + report.bytes_lost,
        "seed {seed}: wire byte accounting drifted"
    );
    assert!(
        report.sent >= report.delivered,
        "seed {seed}: delivered {} messages out of {} sent",
        report.delivered,
        report.sent
    );

    // ---- invariant 5: persistence survives, corruption never panics ----
    let snapshot = w.sys.server().snapshot();
    let restored = CloudServer::restore(&snapshot).expect("snapshot restores");
    assert_eq!(restored.record_count(), w.sys.server().record_count());
    // Seeded bit flips across the snapshot: decode must return, never
    // panic (xorshift so each seed corrupts different offsets).
    let mut x = seed | 1;
    for _ in 0..64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let pos = (x as usize) % snapshot.len();
        let mut corrupted = snapshot.clone();
        corrupted[pos] ^= 1 << (x % 8);
        let _ = CloudServer::restore(&corrupted);
    }
}

macro_rules! chaos_seed {
    ($($name:ident: $seed:expr => $lazy:expr,)*) => {
        $(
            #[test]
            fn $name() {
                run_scenario($seed, $lazy);
            }
        )*
    };
}

chaos_seed! {
    chaos_seed_0x01: 0x01 => false,
    chaos_seed_0x2a: 0x2a => false,
    chaos_seed_0x6b: 0x6b => false,
    chaos_seed_0xd3: 0xd3 => false,
    chaos_seed_1337: 1337 => false,
    chaos_seed_4242: 4242 => false,
    chaos_seed_9001: 9001 => false,
    chaos_seed_31415: 31415 => false,
    lazy_chaos_seed_0x01: 0x01 => true,
    lazy_chaos_seed_0x2a: 0x2a => true,
    lazy_chaos_seed_0x6b: 0x6b => true,
    lazy_chaos_seed_0xd3: 0xd3 => true,
    lazy_chaos_seed_1337: 1337 => true,
    lazy_chaos_seed_4242: 4242 => true,
    lazy_chaos_seed_9001: 9001 => true,
    lazy_chaos_seed_31415: 31415 => true,
}

/// Exploratory schedule: `RANDOM_SEED=<u64> cargo test -p mabe-cloud
/// --test chaos`. CI runs one of these per build and logs the seed so a
/// failure is reproducible by pinning it above.
#[test]
fn chaos_random_seed_from_env() {
    let Ok(raw) = std::env::var("RANDOM_SEED") else {
        return;
    };
    let seed: u64 = raw.parse().expect("RANDOM_SEED must be a u64");
    eprintln!("chaos: running exploratory schedule with seed {seed}");
    run_scenario(seed, false);
    run_scenario(seed, true);
}

/// The telemetry families promised in DESIGN.md §failure-model show up
/// in both export formats after a faulty run.
#[test]
fn chaos_exports_fault_telemetry() {
    // Deterministic faults so every family is guaranteed to increment:
    // a dropped fetch (retries), and a crash mid-re-encryption that
    // recover() rolls forward (faults injected + revocations recovered).
    let plan = FaultPlan::new(99)
        .at(fault_points::READ_FETCH, 1, FaultKind::Drop)
        .at(fault_points::REVOKE_REENCRYPT, 1, FaultKind::Crash);
    let mut sys = CloudSystem::with_faults(99, FaultInjector::new(plan));
    sys.add_authority("MedOrg", &["Doctor"]).unwrap();
    let owner = sys.add_owner("hospital").unwrap();
    let alice = sys.add_user("alice").unwrap();
    let bob = sys.add_user("bob").unwrap();
    sys.grant(&alice, &["Doctor@MedOrg"]).unwrap();
    sys.grant(&bob, &["Doctor@MedOrg"]).unwrap();
    sys.publish(&owner, "r", &[("x", b"v".as_slice(), "Doctor@MedOrg")])
        .unwrap();
    sys.read(&alice, &owner, "r", "x").unwrap(); // retried past the drop
    let _ = sys.revoke(&alice, "Doctor@MedOrg"); // crashes mid-phase-3
    sys.faults_mut().disarm();
    while sys.needs_recovery() {
        sys.recover().unwrap();
    }
    let json = sys.metrics_snapshot();
    let prom = sys.metrics_prometheus();
    for family in [
        "mabe_faults_injected_total",
        "mabe_retries_total",
        "mabe_revocations_recovered_total",
    ] {
        assert!(json.contains(family), "{family} missing from JSON export");
        assert!(
            prom.contains(family),
            "{family} missing from Prometheus export"
        );
    }
}
