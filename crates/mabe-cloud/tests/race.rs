//! Revocation-storm race suite: concurrent readers hammering the data
//! plane while the control plane revokes a cohort back-to-back.
//!
//! The storm runs twice — eager and lazy revocation — and both modes
//! must pass the *identical* assertions:
//!
//! 1. a non-revoked reader never errors and never sees corrupt or
//!    foreign plaintext, no matter how many version bumps land mid-read;
//! 2. a revoked user is denied from the moment their revocation is
//!    acknowledged (the version bump and key delivery are immediate in
//!    both modes — only the server-side re-encryption is deferred);
//! 3. after convergence (recovery + queue drain) every ciphertext is
//!    current, the audit chain verifies, and no revocation is left open.
//!
//! This is the regression net for two races: the reader key-clone race
//! (a read straddling a bump retries through the key-delivery barrier)
//! and the publish-racing-revoke worklist race (a component published
//! at a stale version is healed by the eager worklist re-pass, the
//! publish-side self-heal, or read-triggered upgrade).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use mabe_cloud::CloudSystem;
use mabe_core::{OwnerId, Uid};

const RECORDS: usize = 6;
const COHORT: usize = 4;
const READERS: usize = 3;

fn payload(r: usize) -> Vec<u8> {
    format!("ward-chart-{r}").into_bytes()
}

struct Storm {
    sys: Arc<CloudSystem>,
    hospital: OwnerId,
    bob: Uid,
    cohort: Vec<Uid>,
}

fn storm_world(seed: u64, lazy: bool) -> Storm {
    let sys = Arc::new(CloudSystem::new(seed));
    sys.set_lazy_revocation(lazy);
    sys.add_authority("MedOrg", &["Doctor", "Nurse"]).unwrap();
    let hospital = sys.add_owner("hospital").unwrap();
    let bob = sys.add_user("bob").unwrap();
    sys.grant(&bob, &["Doctor@MedOrg", "Nurse@MedOrg"]).unwrap();
    let cohort: Vec<Uid> = (0..COHORT)
        .map(|i| {
            let uid = sys.add_user(&format!("mallory-{i}")).unwrap();
            sys.grant(&uid, &["Doctor@MedOrg"]).unwrap();
            uid
        })
        .collect();
    for r in 0..RECORDS {
        sys.publish(
            &hospital,
            &format!("rec-{r}"),
            &[("chart", payload(r).as_slice(), "Doctor@MedOrg")],
        )
        .unwrap();
    }
    Storm {
        sys,
        hospital,
        bob,
        cohort,
    }
}

/// Readers loop over every record while the revoker thread burns down
/// the cohort; identical invariants checked eager and lazy.
fn revocation_storm(seed: u64, lazy: bool, workers: usize) {
    let w = storm_world(seed, lazy);
    w.sys.set_reencrypt_workers(workers);
    let stop = AtomicBool::new(false);
    let reads_served = AtomicUsize::new(0);

    thread::scope(|s| {
        for t in 0..READERS {
            let sys = Arc::clone(&w.sys);
            let hospital = w.hospital.clone();
            let bob = w.bob.clone();
            let (stop, reads_served) = (&stop, &reads_served);
            s.spawn(move || {
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let r = i % RECORDS;
                    i += 1;
                    let got = sys
                        .read(&bob, &hospital, &format!("rec-{r}"), "chart")
                        .unwrap_or_else(|e| {
                            panic!("lazy={lazy} seed={seed}: live reader errored on rec-{r}: {e}")
                        });
                    assert_eq!(
                        got,
                        payload(r),
                        "lazy={lazy} seed={seed}: stale or corrupt plaintext on rec-{r}"
                    );
                    reads_served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Publishes racing the storm: every new component must end up
        // current (the eager worklist re-pass / publish-side self-heal /
        // read-triggered upgrade regression).
        {
            let sys = Arc::clone(&w.sys);
            let hospital = w.hospital.clone();
            s.spawn(move || {
                for p in 0..COHORT {
                    let body = format!("late-{p}").into_bytes();
                    sys.publish(
                        &hospital,
                        &format!("late-{p}"),
                        &[("chart", body.as_slice(), "Doctor@MedOrg")],
                    )
                    .unwrap();
                }
            });
        }
        // The storm: back-to-back revocations, each acknowledged before
        // the next; a just-revoked user must already be denied even
        // though (in lazy mode) no ciphertext has been touched yet.
        let sys = Arc::clone(&w.sys);
        let hospital = w.hospital.clone();
        let cohort = w.cohort.clone();
        let stop = &stop;
        s.spawn(move || {
            for uid in &cohort {
                sys.revoke(uid, "Doctor@MedOrg").unwrap();
                assert!(
                    sys.read(uid, &hospital, "rec-0", "chart").is_err(),
                    "lazy={lazy} seed={seed}: {uid} reads after their revocation acked"
                );
            }
            stop.store(true, Ordering::Relaxed);
        });
    });
    assert!(
        reads_served.load(Ordering::Relaxed) > 0,
        "storm ended before any read was served"
    );

    // ---- convergence: identical obligations in both modes ----
    while w.sys.needs_recovery() {
        w.sys.recover().unwrap();
    }
    while w.sys.lazy_queue_depth() > 0 {
        assert!(w.sys.drain_lazy().unwrap() > 0, "lazy queue stuck");
    }

    for uid in &w.cohort {
        for r in 0..RECORDS {
            assert!(
                w.sys
                    .read(uid, &w.hospital, &format!("rec-{r}"), "chart")
                    .is_err(),
                "lazy={lazy} seed={seed}: revoked {uid} reads rec-{r} post-convergence"
            );
        }
    }
    for r in 0..RECORDS {
        assert_eq!(
            w.sys
                .read(&w.bob, &w.hospital, &format!("rec-{r}"), "chart")
                .unwrap(),
            payload(r),
            "lazy={lazy} seed={seed}: survivor lost rec-{r}"
        );
    }
    for p in 0..COHORT {
        assert_eq!(
            w.sys
                .read(&w.bob, &w.hospital, &format!("late-{p}"), "chart")
                .unwrap(),
            format!("late-{p}").into_bytes(),
            "lazy={lazy} seed={seed}: racing publish late-{p} unreadable"
        );
    }
    assert!(w.sys.audit().verify());
    assert!(w.sys.audit().incomplete_revocations().is_empty());
}

#[test]
fn eager_storm_with_concurrent_readers() {
    revocation_storm(0xacc, false, 1);
}

#[test]
fn lazy_storm_with_concurrent_readers() {
    revocation_storm(0xacc, true, 1);
}

// Same storm, wider re-encryption fan-out: the worklist re-pass must
// hold under parallel workers too.
#[test]
fn eager_storm_with_parallel_reencrypt_pool() {
    revocation_storm(0xbee, false, 4);
}

#[test]
fn lazy_storm_with_parallel_reencrypt_pool() {
    revocation_storm(0xbee, true, 4);
}

/// Hot-key cache vs revocation: readers hammer one record hot enough
/// that the content-key cache serves most reads, while the revoker
/// bumps the authority version mid-storm. The invariant is zero stale
/// reads — once `revoke()` has returned (flag observed *before* the
/// read began), the revoked user must be denied on every subsequent
/// read; a cached content key must never outlive the version bump.
#[test]
fn hot_key_cache_never_serves_a_stale_read_across_revocation() {
    let sys = Arc::new(CloudSystem::new(0xcace));
    sys.add_authority("MedOrg", &["Doctor"]).unwrap();
    let hospital = sys.add_owner("hospital").unwrap();
    let alice = sys.add_user("alice").unwrap();
    let bob = sys.add_user("bob").unwrap();
    sys.grant(&alice, &["Doctor@MedOrg"]).unwrap();
    sys.grant(&bob, &["Doctor@MedOrg"]).unwrap();
    let body = b"hot-chart".to_vec();
    sys.publish(
        &hospital,
        "hot",
        &[("chart", body.as_slice(), "Doctor@MedOrg")],
    )
    .unwrap();

    // Warm the cache so the storm runs on the hit path.
    for _ in 0..8 {
        assert_eq!(sys.read(&bob, &hospital, "hot", "chart").unwrap(), body);
    }

    let revoked = AtomicBool::new(false);
    let stop = AtomicBool::new(false);
    let stale_reads = AtomicUsize::new(0);

    thread::scope(|s| {
        // Readers racing the bump: alice's reads may succeed while her
        // revocation is still in flight, but never after it acked.
        for _ in 0..3 {
            let sys = Arc::clone(&sys);
            let (hospital, alice) = (hospital.clone(), alice.clone());
            let (revoked, stop, stale_reads) = (&revoked, &stop, &stale_reads);
            s.spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let acked_before = revoked.load(Ordering::SeqCst);
                    let got = sys.read(&alice, &hospital, "hot", "chart");
                    if acked_before && got.is_ok() {
                        stale_reads.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
        // Survivors on the same hot key: correctness through the bump.
        for _ in 0..2 {
            let sys = Arc::clone(&sys);
            let (hospital, bob) = (hospital.clone(), bob.clone());
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    assert_eq!(
                        sys.read(&bob, &hospital, "hot", "chart").unwrap(),
                        b"hot-chart",
                        "survivor read corrupted mid-bump"
                    );
                }
            });
        }
        // The bump: revoke alice, then publish the ack.
        let sys_r = Arc::clone(&sys);
        let hospital_r = hospital.clone();
        let alice_r = alice.clone();
        let (revoked, stop) = (&revoked, &stop);
        s.spawn(move || {
            sys_r.revoke(&alice_r, "Doctor@MedOrg").unwrap();
            revoked.store(true, Ordering::SeqCst);
            // Let the readers chew on the post-revocation state for a
            // while before calling the race over.
            for _ in 0..50 {
                assert!(
                    sys_r.read(&alice_r, &hospital_r, "hot", "chart").is_err(),
                    "revoked reader slipped through the cache"
                );
            }
            stop.store(true, Ordering::SeqCst);
        });
    });

    assert_eq!(
        stale_reads.load(Ordering::SeqCst),
        0,
        "cached content key served a read after the revocation acked"
    );
    let stats = sys.cache_stats();
    assert!(
        stats.content_hits > 0,
        "storm never hit the content-key cache (hits={}, misses={})",
        stats.content_hits,
        stats.content_misses
    );
    assert!(sys.audit().verify());
}
