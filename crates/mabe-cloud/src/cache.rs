//! Bounded sharded LRU caches for the hot read path.
//!
//! Two caches sit in front of the expensive pairing work:
//!
//! * **Content-key cache** — the recovered KEM element (`e(g,g)^s`) per
//!   `(uid, owner, record, label, component-versions)`. A cache hit
//!   turns a read into one AEAD open instead of a full CP-ABE
//!   decryption. The key embeds the component's `(authority, version)`
//!   vector, so a re-encrypted component can never be served from a
//!   stale entry — its versions differ, so its key differs.
//! * **Update-key chain cache** — the composed
//!   `UpdateKey(from → latest)` per `(authority, owner, from_version)`,
//!   the per-`(authority, version)` pairing material the lazy drain and
//!   read-triggered upgrades walk repeatedly.
//!
//! Invalidation is wired into revocation's version bump: the begin
//! phase calls [`SystemCaches::invalidate_authority`] **under the
//! authority shard lock, before the revocation is acknowledged**. That
//! bumps the authority's generation counter and purges every entry
//! mentioning the authority, so a revoked user's cached KEM dies with
//! the ack. Readers that raced the bump are handled by the generation
//! guard: a reader snapshots the generations of every authority in the
//! component *before* decrypting, and the insert is dropped unless the
//! generations are still current ([`SystemCaches::insert_content_if`]) —
//! a decryption that started before the bump can never repopulate the
//! cache after it.
//!
//! Eviction is sharded tick-LRU: each shard tracks a monotonically
//! increasing touch tick per entry and evicts the smallest tick when
//! full. Hits, misses, and evictions are counted per cache and exported
//! both through [`CacheStats`] and the `mabe_cache_*_total` metric
//! families.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use mabe_core::UpdateKey;
use mabe_math::Gt;
use mabe_policy::AuthorityId;

/// Default total entry budget for the content-key cache.
pub(crate) const CONTENT_CACHE_CAPACITY: usize = 4096;
/// Default total entry budget for the update-key chain cache.
pub(crate) const CHAIN_CACHE_CAPACITY: usize = 1024;
const SHARDS: usize = 8;

/// Hit/miss/eviction counters of one cache, read via
/// [`crate::CloudSystem::cache_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Content-key cache hits.
    pub content_hits: u64,
    /// Content-key cache misses.
    pub content_misses: u64,
    /// Content-key cache evictions.
    pub content_evictions: u64,
    /// Update-key chain cache hits.
    pub chain_hits: u64,
    /// Update-key chain cache misses.
    pub chain_misses: u64,
    /// Update-key chain cache evictions.
    pub chain_evictions: u64,
}

impl CacheStats {
    /// Content-key hit ratio in `[0, 1]` (0 when the cache was never
    /// consulted).
    pub fn content_hit_ratio(&self) -> f64 {
        let total = self.content_hits + self.content_misses;
        if total == 0 {
            0.0
        } else {
            self.content_hits as f64 / total as f64
        }
    }
}

struct Entry<V> {
    value: V,
    tick: u64,
}

struct Shard<K, V> {
    rows: BTreeMap<K, Entry<V>>,
    tick: u64,
}

impl<K: Ord, V> Default for Shard<K, V> {
    fn default() -> Self {
        Shard {
            rows: BTreeMap::new(),
            tick: 0,
        }
    }
}

/// A bounded sharded tick-LRU map. Shard selection hashes the key;
/// within a shard, every access stamps a fresh tick and a full shard
/// evicts its least-recently-stamped entry.
struct LruCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    metric: &'static str,
}

impl<K: Ord + Hash + Clone, V: Clone> LruCache<K, V> {
    fn new(capacity: usize, metric: &'static str) -> Self {
        LruCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: capacity.div_ceil(SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            metric,
        }
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    fn get(&self, key: &K) -> Option<V> {
        let mut shard = self.shard(key).lock();
        shard.tick += 1;
        let tick = shard.tick;
        match shard.rows.get_mut(key) {
            Some(entry) => {
                entry.tick = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                mabe_telemetry::global()
                    .counter("mabe_cache_hits_total", &[("cache", self.metric)])
                    .inc();
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                mabe_telemetry::global()
                    .counter("mabe_cache_misses_total", &[("cache", self.metric)])
                    .inc();
                None
            }
        }
    }

    fn insert(&self, key: K, value: V) {
        let mut shard = self.shard(&key).lock();
        shard.tick += 1;
        let tick = shard.tick;
        if shard.rows.len() >= self.shard_capacity && !shard.rows.contains_key(&key) {
            // O(n) min-tick scan: shards are small and eviction is off
            // the common (hit) path.
            if let Some(victim) = shard
                .rows
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
            {
                shard.rows.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                mabe_telemetry::global()
                    .counter("mabe_cache_evictions_total", &[("cache", self.metric)])
                    .inc();
            }
        }
        shard.rows.insert(key, Entry { value, tick });
    }

    fn purge_if(&self, matches: impl Fn(&K) -> bool) {
        for shard in &self.shards {
            shard.lock().rows.retain(|k, _| !matches(k));
        }
    }

    fn counters(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }
}

/// Content-key cache key: the reader, the component's address, and the
/// exact `(authority, version)` vector the component was sealed under.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct ContentCacheKey {
    pub uid: String,
    pub owner: String,
    pub record: String,
    pub label: String,
    /// Sorted `(authority, version)` pairs of the component ciphertext.
    pub versions: Vec<(String, u64)>,
}

impl ContentCacheKey {
    fn mentions(&self, aid: &str) -> bool {
        self.versions.iter().any(|(a, _)| a == aid)
    }
}

/// The system-wide cache set: content keys, update-key chains, and the
/// per-authority generation counters that guard insertion.
pub(crate) struct SystemCaches {
    content: LruCache<ContentCacheKey, Gt>,
    chains: LruCache<(String, String, u64), UpdateKey>,
    generations: Mutex<BTreeMap<String, u64>>,
}

impl std::fmt::Debug for SystemCaches {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("SystemCaches")
            .field("content_hits", &stats.content_hits)
            .field("content_misses", &stats.content_misses)
            .field("chain_hits", &stats.chain_hits)
            .field("chain_misses", &stats.chain_misses)
            .finish_non_exhaustive()
    }
}

impl SystemCaches {
    pub(crate) fn new() -> Self {
        SystemCaches {
            content: LruCache::new(CONTENT_CACHE_CAPACITY, "content"),
            chains: LruCache::new(CHAIN_CACHE_CAPACITY, "chain"),
            generations: Mutex::new(BTreeMap::new()),
        }
    }

    /// Snapshot of the generation counters for `aids`, taken *before*
    /// a decryption whose result may be inserted.
    pub(crate) fn generation_snapshot<'a>(
        &self,
        aids: impl Iterator<Item = &'a AuthorityId>,
    ) -> Vec<(String, u64)> {
        let gens = self.generations.lock();
        aids.map(|aid| {
            let name = aid.to_string();
            let gen = gens.get(&name).copied().unwrap_or(0);
            (name, gen)
        })
        .collect()
    }

    pub(crate) fn get_content(&self, key: &ContentCacheKey) -> Option<Gt> {
        self.content.get(key)
    }

    /// Inserts a recovered KEM element unless any involved authority's
    /// generation moved since `snapshot` was taken (i.e. a revocation
    /// began mid-decryption — the entry could be stale, drop it).
    pub(crate) fn insert_content_if(
        &self,
        snapshot: &[(String, u64)],
        key: ContentCacheKey,
        kem: Gt,
    ) {
        {
            let gens = self.generations.lock();
            let current = |name: &str| gens.get(name).copied().unwrap_or(0);
            if snapshot.iter().any(|(name, gen)| current(name) != *gen) {
                return;
            }
            // Insert while still holding the generation lock: a
            // concurrent invalidate_authority either ran before (the
            // check above failed) or will run after (its purge removes
            // this entry). No window remains where a stale entry
            // survives a bump.
            self.content.insert(key, kem);
        }
    }

    /// Cached composed update-key chain for `(aid, owner, from)`.
    /// Callers must validate `to_version` against the target they need
    /// — a shorter (stale) chain is a miss, never silently applied.
    pub(crate) fn get_chain(&self, aid: &str, owner: &str, from: u64) -> Option<UpdateKey> {
        self.chains.get(&(aid.to_owned(), owner.to_owned(), from))
    }

    pub(crate) fn insert_chain(&self, aid: &str, owner: &str, from: u64, chain: UpdateKey) {
        self.chains
            .insert((aid.to_owned(), owner.to_owned(), from), chain);
    }

    /// Revocation's version bump: called under the authority shard lock
    /// before the revocation is acknowledged. Bumps the generation (so
    /// in-flight decryptions cannot repopulate) and purges every entry
    /// that mentions the authority.
    pub(crate) fn invalidate_authority(&self, aid: &AuthorityId) {
        let name = aid.to_string();
        {
            let mut gens = self.generations.lock();
            *gens.entry(name.clone()).or_insert(0) += 1;
        }
        self.content.purge_if(|k| k.mentions(&name));
        self.chains.purge_if(|(a, _, _)| *a == name);
    }

    pub(crate) fn stats(&self) -> CacheStats {
        let (content_hits, content_misses, content_evictions) = self.content.counters();
        let (chain_hits, chain_misses, chain_evictions) = self.chains.counters();
        CacheStats {
            content_hits,
            content_misses,
            content_evictions,
            chain_hits,
            chain_misses,
            chain_evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(uid: &str, versions: &[(&str, u64)]) -> ContentCacheKey {
        ContentCacheKey {
            uid: uid.to_owned(),
            owner: "o".to_owned(),
            record: "r".to_owned(),
            label: "l".to_owned(),
            versions: versions
                .iter()
                .map(|(a, v)| ((*a).to_owned(), *v))
                .collect(),
        }
    }

    #[test]
    fn lru_caps_and_evicts_least_recent() {
        let lru: LruCache<u64, u64> = LruCache::new(SHARDS, "content");
        // Fill one logical shard far past its per-shard budget (1).
        for i in 0..64u64 {
            lru.insert(i, i);
        }
        let total: usize = lru.shards.iter().map(|s| s.lock().rows.len()).sum();
        assert!(total <= SHARDS, "bounded at capacity, got {total}");
        let (_, _, evictions) = lru.counters();
        assert!(evictions >= 64 - SHARDS as u64);
    }

    #[test]
    fn generation_bump_blocks_stale_insert() {
        let caches = SystemCaches::new();
        let aid = AuthorityId::new("A1");
        let snap = caches.generation_snapshot(std::iter::once(&aid));
        // A revocation begins between the snapshot and the insert.
        caches.invalidate_authority(&aid);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        let kem = Gt::random(&mut rng);
        let k = key("alice", &[(&aid.to_string(), 1)]);
        caches.insert_content_if(&snap, k.clone(), kem);
        assert!(caches.get_content(&k).is_none(), "stale insert dropped");
        // A fresh snapshot inserts fine.
        let snap = caches.generation_snapshot(std::iter::once(&aid));
        let kem = Gt::random(&mut rng);
        caches.insert_content_if(&snap, k.clone(), kem);
        assert!(caches.get_content(&k).is_some());
        // And the next bump purges it.
        caches.invalidate_authority(&aid);
        assert!(caches.get_content(&k).is_none(), "bump purges entries");
    }
}
