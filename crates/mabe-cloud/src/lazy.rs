//! Lazy revocation: the pending-upgrade queue, the server-held
//! update-key archive, read-triggered upgrade, and the drain machinery.
//!
//! The paper's revocation (§V-C) is *eager*: one `revoke()` re-encrypts
//! every affected ciphertext component before returning, which at large
//! component counts is a stop-the-world event. What makes laziness safe
//! is that re-encryption was never the security boundary — the version
//! check inside [`mabe_core::open_component`] already denies a revoked
//! user the moment the authority re-keys and fresh reduced keys reach
//! the revoked user. Server-side ciphertext upgrades only matter for
//! *availability* (non-revoked holders whose keys already advanced) and
//! for hygiene (an adversary holding pre-revocation keys must not find
//! pre-revocation ciphertexts), so they can be deferred, batched, and
//! resumed — as long as **no stale component is ever served without
//! being upgraded first**.
//!
//! The machine has three parts:
//!
//! * **The update-key archive** — every revocation (eager *or* lazy)
//!   parks its per-owner [`UpdateKey`]s here, keyed by
//!   `(authority, owner, from_version)`. Consecutive keys compose
//!   ([`UpdateKey::compose`]), so a component stale by `n` versions is
//!   upgraded in **one** re-encryption pass regardless of `n`. This is
//!   the "server-held update key" of the read-triggered path.
//! * **The pending-upgrade queue** — one entry per deferred revocation,
//!   keyed by the global revocation journal id. The durable wrapper
//!   journals enqueue and drain through the WAL, so an acked lazy
//!   revoke survives a crash and [`crate::DurableSystem::open`] replays
//!   it back into the queue.
//! * **The drain** — [`CloudSystem::drain_lazy_batch`] claims the
//!   oldest un-claimed authority (so multiple workers never contend on
//!   one authority's worklist), composes all of its pending revocations
//!   into a single update pass, and walks
//!   [`crate::CloudServer::affected_ciphertexts`] until no component is
//!   left below the target version. The worklist is version-keyed and
//!   therefore idempotent: crash, replay, and racing read-triggered
//!   upgrades all just shrink the next pass.
//!
//! Reads never take a shard lock to decide staleness — the archive
//! alone answers "is this component behind?", which keeps the read path
//! concurrent with the control plane (DESIGN.md §12 lock ordering: the
//! lazy queue/archive locks sit below shard state and above the
//! directory/server leaves).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use mabe_core::{CiphertextId, Error, OwnerId, RevocationEvent, UpdateKey};
use mabe_policy::AuthorityId;

use crate::audit::AuditEvent;
use crate::recovery::PendingRevocation;
use crate::server::RecordKey;
use crate::system::{fault_points, CloudError, CloudSystem};
use crate::wire::Endpoint;

/// Default bound on queued pending-upgrade batches before new revokes
/// feel backpressure (they drain a batch inline instead of enqueueing
/// unboundedly).
pub const DEFAULT_LAZY_CAPACITY: usize = 64;

/// How many times a backpressured revoke yields waiting for another
/// worker's in-flight drain before proceeding anyway (the capacity is a
/// soft bound — work is never dropped).
const BACKPRESSURE_SPINS: usize = 100;

/// One deferred revocation awaiting server-side re-encryption.
#[derive(Clone, Debug)]
pub(crate) struct PendingUpgrade {
    pub(crate) aid: AuthorityId,
    pub(crate) from_version: u64,
    pub(crate) to_version: u64,
    /// When the batch was parked (staleness metric; not persisted —
    /// replayed entries restart the clock).
    pub(crate) enqueued: Instant,
}

/// Lazy-revocation state hanging off [`CloudSystem`].
#[derive(Debug)]
pub(crate) struct LazyState {
    enabled: AtomicBool,
    capacity: AtomicUsize,
    /// Deferred revocations keyed by the global revocation journal id.
    pub(crate) queue: Mutex<BTreeMap<u64, PendingUpgrade>>,
    /// Server-held update keys keyed by `(authority, owner,
    /// from_version)`; consecutive entries compose into arbitrary-span
    /// upgrades. Populated by **every** revocation, eager or lazy.
    pub(crate) archive: RwLock<BTreeMap<(AuthorityId, OwnerId, u64), UpdateKey>>,
    /// Authorities currently claimed by a drain worker.
    draining: Mutex<BTreeSet<AuthorityId>>,
}

impl LazyState {
    pub(crate) fn new() -> Self {
        LazyState {
            enabled: AtomicBool::new(false),
            capacity: AtomicUsize::new(DEFAULT_LAZY_CAPACITY),
            queue: Mutex::new(BTreeMap::new()),
            archive: RwLock::new(BTreeMap::new()),
            draining: Mutex::new(BTreeSet::new()),
        }
    }
}

/// A claimed slice of the pending-upgrade queue: every queued
/// revocation of one authority, composed into a single
/// `from_version..to_version` upgrade pass. The holder must call
/// [`CloudSystem::release_claim`] when done (success or failure).
#[derive(Clone, Debug)]
pub(crate) struct LazyClaim {
    pub(crate) aid: AuthorityId,
    pub(crate) from_version: u64,
    pub(crate) to_version: u64,
    /// `(journal id, to_version, enqueued)` per claimed entry, in id
    /// order.
    pub(crate) entries: Vec<(u64, u64, Instant)>,
}

impl CloudSystem {
    /// Refreshes the queue-depth gauges: the unlabeled total (the
    /// pre-existing series, kept for baseline compatibility) plus one
    /// `authority`-labeled series per known authority — zeroed when an
    /// authority has nothing queued, so a drained authority's series
    /// falls back to 0 instead of freezing at its last depth.
    fn refresh_queue_gauges(&self) {
        let per_aid: BTreeMap<AuthorityId, i64> = {
            let queue = self.lazy.queue.lock();
            let mut per_aid = BTreeMap::new();
            for p in queue.values() {
                *per_aid.entry(p.aid.clone()).or_insert(0) += 1;
            }
            per_aid
        };
        let telemetry = mabe_telemetry::global();
        telemetry
            .gauge("mabe_lazy_queue_depth", &[])
            .set(per_aid.values().sum());
        let aids: Vec<AuthorityId> = self.control.shards.read().keys().cloned().collect();
        for aid in aids {
            let depth = per_aid.get(&aid).copied().unwrap_or(0);
            telemetry
                .gauge("mabe_lazy_queue_depth", &[("authority", &aid.to_string())])
                .set(depth);
        }
    }

    /// Switches revocation between eager (the paper's inline
    /// re-encryption, the default) and lazy (re-encryption parked on
    /// the pending-upgrade queue; see the [module docs](crate::lazy)).
    /// Either mode may be toggled at any time — queued work from lazy
    /// revocations keeps draining after a switch back to eager.
    pub fn set_lazy_revocation(&self, enabled: bool) {
        self.lazy.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether revocations currently defer re-encryption.
    pub fn lazy_revocation_enabled(&self) -> bool {
        self.lazy.enabled.load(Ordering::Relaxed)
    }

    /// Bounds the pending-upgrade queue: a revoke arriving with the
    /// queue at capacity drains a batch inline (backpressure) instead
    /// of enqueueing unboundedly. The bound is soft — work is never
    /// dropped.
    pub fn set_lazy_capacity(&self, capacity: usize) {
        self.lazy.capacity.store(capacity.max(1), Ordering::Relaxed);
    }

    /// The configured queue bound.
    pub fn lazy_capacity(&self) -> usize {
        self.lazy.capacity.load(Ordering::Relaxed)
    }

    /// How many deferred revocations are awaiting drain.
    pub fn lazy_queue_depth(&self) -> usize {
        self.lazy.queue.lock().len()
    }

    /// Parks every per-owner update key of a revocation in the archive.
    /// Called for **every** revocation (eager or lazy) at begin time,
    /// so read-triggered upgrade can heal any component that somehow
    /// stayed behind (e.g. a publish that raced the eager worklist).
    pub(crate) fn archive_update_keys(&self, event: &RevocationEvent) {
        let mut archive = self.lazy.archive.write();
        for (owner_id, uk) in &event.update_keys {
            archive.insert(
                (event.aid.clone(), owner_id.clone(), event.from_version),
                uk.clone(),
            );
        }
    }

    /// Composes archived update keys for `(aid, owner)` starting at
    /// `from` into one key spanning to the newest archived version.
    /// `None` if the archive holds no key at `from` (the component is
    /// current, or the revocation predates this process and was fully
    /// converged before checkpointing).
    pub(crate) fn chain_from(
        &self,
        aid: &AuthorityId,
        owner: &OwnerId,
        from: u64,
    ) -> Option<UpdateKey> {
        // Chain cache: a composed span is reusable only while it still
        // reaches the archive head — two map probes validate that (the
        // span still starts at an archived link, and no newer link
        // extends past its end). Revocation also purges the cache on
        // every bump, so this guard is belt-and-braces.
        if let Some(chain) = self.cache.get_chain(aid.as_str(), owner.as_str(), from) {
            let archive = self.lazy.archive.read();
            if archive.contains_key(&(aid.clone(), owner.clone(), from))
                && !archive.contains_key(&(aid.clone(), owner.clone(), chain.to_version))
            {
                return Some(chain);
            }
        }
        let links: Vec<UpdateKey> = {
            let archive = self.lazy.archive.read();
            let mut links = Vec::new();
            let mut v = from;
            while let Some(uk) = archive.get(&(aid.clone(), owner.clone(), v)) {
                v = uk.to_version;
                links.push(uk.clone());
            }
            links
        };
        let mut iter = links.into_iter();
        let mut uk = iter.next()?;
        for next in iter {
            uk = uk.compose(&next).ok()?;
        }
        self.cache
            .insert_chain(aid.as_str(), owner.as_str(), from, uk.clone());
        Some(uk)
    }

    /// The subset of a component's per-authority versions the archive
    /// knows how to advance — non-empty means the component is stale
    /// and must be upgraded before it is served.
    pub(crate) fn stale_versions(
        &self,
        owner: &OwnerId,
        versions: &BTreeMap<AuthorityId, u64>,
    ) -> Vec<(AuthorityId, u64)> {
        let archive = self.lazy.archive.read();
        if archive.is_empty() {
            return Vec::new();
        }
        versions
            .iter()
            .filter(|(aid, v)| archive.contains_key(&((*aid).clone(), owner.clone(), **v)))
            .map(|(aid, v)| (aid.clone(), *v))
            .collect()
    }

    /// Upgrades one stored component from `from` to the newest archived
    /// version at `aid`: composed update key + owner-produced update
    /// info + server-side proxy re-encryption. Losing the race to a
    /// concurrent upgrader (the component already advanced past the
    /// chain's target) is success.
    pub(crate) fn upgrade_one(
        &self,
        aid: &AuthorityId,
        owner_id: &OwnerId,
        from: u64,
        record_key: &RecordKey,
        label: &str,
        ct_id: CiphertextId,
    ) -> Result<(), CloudError> {
        let Some(uk) = self.chain_from(aid, owner_id, from) else {
            return Ok(());
        };
        let mut waited = false;
        let ui = loop {
            let result = {
                let owners = self.directory.owners.read();
                let owner = owners
                    .get(owner_id)
                    .ok_or_else(|| CloudError::Core(Error::UnknownOwner(owner_id.clone())))?;
                owner.update_info_for(ct_id, aid, from, uk.to_version)
            };
            match result {
                Ok(ui) => break ui,
                // The owner's attribute-key history hasn't reached the
                // chain target yet: the revocation that archived this
                // update key is still in its immediate phase (which
                // applies owner update keys before acknowledging).
                // Wait it out behind the shard lock and retry once —
                // histories only grow, so one barrier is enough.
                Err(Error::MissingAuthorityKey(_)) if !waited => {
                    waited = true;
                    self.key_delivery_barrier(aid);
                    continue;
                }
                Err(e) => return Err(e.into()),
            }
        };
        self.wire.send(
            Endpoint::Owner(owner_id.clone()),
            Endpoint::Server,
            "update key + update info",
            uk.wire_size() + ui.wire_size(),
        );
        match self
            .data
            .server
            .reencrypt_component(record_key, label, &uk, &ui)
        {
            Ok(()) => Ok(()),
            Err(Error::VersionMismatch { found, .. }) if found >= uk.to_version => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Parks a journaled revocation's re-encryption work on the
    /// pending-upgrade queue (the deferred half of a lazy revoke). The
    /// [`fault_points::LAZY_ENQUEUE`] point is consulted first, so an
    /// injected crash leaves the revocation in flight for eager
    /// roll-forward instead of half-enqueued.
    pub(crate) fn enqueue_lazy(&self, pending: &PendingRevocation) -> Result<(), CloudError> {
        let aid = pending.event.aid.clone();
        self.local_op(fault_points::LAZY_ENQUEUE, Some(&aid))?;
        {
            let mut queue = self.lazy.queue.lock();
            queue.insert(
                pending.id,
                PendingUpgrade {
                    aid,
                    from_version: pending.event.from_version,
                    to_version: pending.event.to_version,
                    enqueued: Instant::now(),
                },
            );
        }
        self.refresh_queue_gauges();
        mabe_trace::event(mabe_trace::TraceEvent::RevocationPhase { stage: "deferred" });
        Ok(())
    }

    /// Claims every queued entry of the oldest un-claimed authority.
    /// `None` when the queue is empty or every queued authority is
    /// already claimed by another worker.
    pub(crate) fn claim_next(&self) -> Option<LazyClaim> {
        let queue = self.lazy.queue.lock();
        let mut draining = self.lazy.draining.lock();
        let aid = queue
            .values()
            .map(|p| &p.aid)
            .find(|aid| !draining.contains(*aid))?
            .clone();
        draining.insert(aid.clone());
        Some(Self::claim_in_queue(&queue, &aid, None))
    }

    /// Claims exactly `ids` (the durable replay path: a journaled
    /// `LazyDrained` batch names the ids it converged). `None` if none
    /// of the ids are still queued.
    pub(crate) fn claim_ids(&self, ids: &[u64]) -> Option<LazyClaim> {
        let queue = self.lazy.queue.lock();
        let mut draining = self.lazy.draining.lock();
        let aid = ids
            .iter()
            .find_map(|id| queue.get(id).map(|p| p.aid.clone()))?;
        draining.insert(aid.clone());
        Some(Self::claim_in_queue(&queue, &aid, Some(ids)))
    }

    fn claim_in_queue(
        queue: &BTreeMap<u64, PendingUpgrade>,
        aid: &AuthorityId,
        only: Option<&[u64]>,
    ) -> LazyClaim {
        let mut claim = LazyClaim {
            aid: aid.clone(),
            from_version: u64::MAX,
            to_version: 0,
            entries: Vec::new(),
        };
        for (id, p) in queue.iter() {
            if &p.aid != aid || only.is_some_and(|ids| !ids.contains(id)) {
                continue;
            }
            claim.from_version = claim.from_version.min(p.from_version);
            claim.to_version = claim.to_version.max(p.to_version);
            claim.entries.push((*id, p.to_version, p.enqueued));
        }
        claim
    }

    /// Releases a drain claim (success or failure) so another worker —
    /// or a retry — can pick the authority back up.
    pub(crate) fn release_claim(&self, aid: &AuthorityId) {
        self.lazy.draining.lock().remove(aid);
    }

    /// The component-upgrade half of a drain: walks
    /// [`crate::CloudServer::affected_ciphertexts`] for every version
    /// the claim spans until a full pass finds nothing stale, upgrading
    /// each hit through the composed archive chain at the
    /// [`fault_points::LAZY_DRAIN`] point. Carries **no** bookkeeping —
    /// the durable wrapper runs this outside its op lock and completes
    /// the claim under it.
    pub(crate) fn drain_claim_components(&self, claim: &LazyClaim) -> Result<u64, CloudError> {
        let trace = mabe_trace::Span::child("cloud.lazy_drain").detail(format!("@{}", claim.aid));
        mabe_trace::op_attr("authority", claim.aid.to_string());
        mabe_trace::op_attr("key_version_observed", claim.from_version.to_string());
        mabe_trace::op_attr("key_version_served", claim.to_version.to_string());
        let result: Result<u64, CloudError> = (|| {
            let mut drained = 0u64;
            loop {
                let mut pass = 0u64;
                for v in claim.from_version..claim.to_version {
                    let owners: Vec<OwnerId> = {
                        let archive = self.lazy.archive.read();
                        archive
                            .keys()
                            .filter(|(aid, _, from)| aid == &claim.aid && *from == v)
                            .map(|(_, owner, _)| owner.clone())
                            .collect()
                    };
                    for owner_id in owners {
                        let affected = self
                            .data
                            .server
                            .affected_ciphertexts(&owner_id, &claim.aid, v);
                        for (record_key, label, ct_id) in &affected {
                            self.local_op(fault_points::LAZY_DRAIN, Some(&claim.aid))?;
                            self.upgrade_one(&claim.aid, &owner_id, v, record_key, label, *ct_id)?;
                            pass += 1;
                        }
                    }
                }
                if pass == 0 {
                    break;
                }
                drained += pass;
            }
            if drained > 0 {
                mabe_telemetry::global()
                    .counter("mabe_lazy_drained_components_total", &[])
                    .add(drained);
            }
            Ok(drained)
        })();
        if let Err(e) = &result {
            trace.fail(e.to_string());
        }
        result
    }

    /// Completes a drained claim: removes its entries from the queue,
    /// records per-batch staleness, and audits one
    /// [`AuditEvent::RevocationConverged`] per revocation in journal-id
    /// order. Returns the ids actually completed (entries another
    /// worker already removed are skipped).
    pub(crate) fn complete_claim(&self, claim: &LazyClaim) -> Vec<u64> {
        let ids = {
            let mut queue = self.lazy.queue.lock();
            let mut ids = Vec::new();
            let telemetry = mabe_telemetry::global();
            let aid_label = claim.aid.to_string();
            for (id, to_version, enqueued) in &claim.entries {
                if queue.remove(id).is_some() {
                    ids.push((*id, *to_version));
                    let staleness_ms = enqueued.elapsed().as_millis() as u64;
                    telemetry
                        .histogram("mabe_lazy_staleness_ms", &[])
                        .record(staleness_ms);
                    telemetry
                        .histogram("mabe_lazy_staleness_ms", &[("authority", &aid_label)])
                        .record(staleness_ms);
                }
            }
            ids
        };
        self.refresh_queue_gauges();
        if !ids.is_empty() {
            let mut audit = self.audit.lock();
            for (_, to_version) in &ids {
                audit.record(AuditEvent::RevocationConverged {
                    aid: claim.aid.to_string(),
                    version: *to_version,
                });
            }
            drop(audit);
            mabe_trace::event(mabe_trace::TraceEvent::RevocationPhase { stage: "converged" });
        }
        ids.into_iter().map(|(id, _)| id).collect()
    }

    /// Claims and drains one authority's pending batch to convergence.
    /// Returns the revocation journal ids that converged — empty when
    /// the queue is empty or every queued authority is claimed by
    /// another worker. On failure the claim is released with the queue
    /// intact, so a retry resumes (component upgrades already performed
    /// stay done — the worklist is version-keyed).
    ///
    /// # Errors
    ///
    /// Propagates unrecovered injected faults and upgrade failures.
    pub fn drain_lazy_batch(&self) -> Result<Vec<u64>, CloudError> {
        let Some(claim) = self.claim_next() else {
            return Ok(Vec::new());
        };
        let result = self.drain_claim_components(&claim);
        let out = result.map(|_| self.complete_claim(&claim));
        self.release_claim(&claim.aid);
        out
    }

    /// Drains the entire pending-upgrade queue (every authority, every
    /// batch). Returns how many deferred revocations converged.
    ///
    /// # Errors
    ///
    /// Propagates the first failing batch; earlier batches stay
    /// converged and the failing one stays queued.
    pub fn drain_lazy(&self) -> Result<usize, CloudError> {
        let mut converged = 0;
        loop {
            let ids = self.drain_lazy_batch()?;
            if ids.is_empty() {
                return Ok(converged);
            }
            converged += ids.len();
        }
    }

    /// Backpressure gate for new revokes: while the queue sits at
    /// capacity, drain a batch inline (the revoker pays the drain
    /// latency — work is never dropped). If every batch is claimed by
    /// other workers, yields a bounded number of times and then
    /// proceeds (soft bound).
    pub(crate) fn lazy_backpressure(&self) -> Result<(), CloudError> {
        if !self.lazy_revocation_enabled() {
            return Ok(());
        }
        let mut spins = 0;
        while self.lazy_queue_depth() >= self.lazy_capacity() {
            mabe_telemetry::global()
                .counter("mabe_lazy_backpressure_total", &[])
                .inc();
            if !self.drain_lazy_batch()?.is_empty() {
                continue;
            }
            spins += 1;
            if spins >= BACKPRESSURE_SPINS {
                return Ok(());
            }
            std::thread::yield_now();
        }
        Ok(())
    }

    /// Replays a journaled `LazyDrained` batch: claims exactly those
    /// ids, drains them to convergence, and completes — producing the
    /// same audit events the live drain recorded. Already-gone ids are
    /// a clean no-op (the batch preceded the checkpoint).
    pub(crate) fn replay_drain(&self, ids: &[u64]) -> Result<(), CloudError> {
        let Some(claim) = self.claim_ids(ids) else {
            return Ok(());
        };
        let result = self.drain_claim_components(&claim);
        let out = result.map(|_| {
            self.complete_claim(&claim);
        });
        self.release_claim(&claim.aid);
        out
    }

    /// Restores the queue-depth gauges (durable open, after replay).
    pub(crate) fn refresh_lazy_gauge(&self) {
        self.refresh_queue_gauges();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditEvent;
    use mabe_core::{Uid, WireCodec};

    fn medical_system() -> (CloudSystem, Uid, Uid, Uid, OwnerId) {
        let sys = CloudSystem::new(42);
        sys.add_authority("MedOrg", &["Doctor", "Nurse"]).unwrap();
        sys.add_authority("Trial", &["Researcher", "Sponsor"])
            .unwrap();
        let owner = sys.add_owner("hospital").unwrap();
        let alice = sys.add_user("alice").unwrap();
        let bob = sys.add_user("bob").unwrap();
        let carol = sys.add_user("carol").unwrap();
        sys.grant(&alice, &["Doctor@MedOrg"]).unwrap();
        sys.grant(&bob, &["Doctor@MedOrg"]).unwrap();
        sys.grant(&carol, &["Nurse@MedOrg"]).unwrap();
        (sys, alice, bob, carol, owner)
    }

    fn converged_events(sys: &CloudSystem) -> usize {
        sys.audit()
            .entries()
            .iter()
            .filter(|e| matches!(e.event, AuditEvent::RevocationConverged { .. }))
            .count()
    }

    #[test]
    fn lazy_revoke_defers_then_drains_to_convergence() {
        let (sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(
            &owner,
            "rec-a",
            &[("x", b"aaa".as_slice(), "Doctor@MedOrg")],
        )
        .unwrap();
        sys.publish(
            &owner,
            "rec-b",
            &[("y", b"bbb".as_slice(), "Doctor@MedOrg")],
        )
        .unwrap();
        sys.set_lazy_revocation(true);
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();

        // The ack is security-complete: queue parked, audit closed by
        // the Deferred event, revoked reader denied immediately.
        assert_eq!(sys.lazy_queue_depth(), 1);
        assert!(sys.audit().incomplete_revocations().is_empty());
        assert!(sys.read(&alice, &owner, "rec-a", "x").is_err());
        // A non-revoked holder reads *through* the staleness: the read
        // upgrades the component in place before serving.
        assert_eq!(sys.read(&bob, &owner, "rec-b", "y").unwrap(), b"bbb");

        let converged = sys.drain_lazy().unwrap();
        assert_eq!(converged, 1);
        assert_eq!(sys.lazy_queue_depth(), 0);
        let aid = mabe_policy::AuthorityId::new("MedOrg");
        assert!(sys
            .server()
            .affected_ciphertexts(&owner, &aid, 1)
            .is_empty());
        assert_eq!(converged_events(&sys), 1);
        assert!(sys.audit().verify());
        // Still denied after convergence, still readable for bob.
        assert!(sys.read(&alice, &owner, "rec-a", "x").is_err());
        assert_eq!(sys.read(&bob, &owner, "rec-a", "x").unwrap(), b"aaa");
    }

    #[test]
    fn stacked_revocations_compose_into_one_batch() {
        let (sys, alice, bob, carol, owner) = medical_system();
        sys.publish(
            &owner,
            "ward",
            &[("note", b"rounds".as_slice(), "Nurse@MedOrg")],
        )
        .unwrap();
        sys.set_lazy_revocation(true);
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        sys.revoke(&bob, "Doctor@MedOrg").unwrap();
        assert_eq!(sys.lazy_queue_depth(), 2);

        // One claim covers both pending revocations of the authority:
        // the component jumps v1 → v3 through a composed chain.
        let ids = sys.drain_lazy_batch().unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(sys.lazy_queue_depth(), 0);
        assert_eq!(
            sys.authority_version(&mabe_policy::AuthorityId::new("MedOrg")),
            Some(3)
        );
        assert_eq!(converged_events(&sys), 2);
        assert_eq!(sys.read(&carol, &owner, "ward", "note").unwrap(), b"rounds");
        assert!(sys.audit().verify());
    }

    #[test]
    fn backpressure_drains_inline_at_capacity() {
        let (sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(&owner, "rec", &[("x", b"sec".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        sys.set_lazy_revocation(true);
        sys.set_lazy_capacity(1);
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        assert_eq!(sys.lazy_queue_depth(), 1);
        // The queue is full: this revoke pays for a drain before it
        // enqueues — nothing is dropped, depth never exceeds capacity.
        sys.revoke(&bob, "Doctor@MedOrg").unwrap();
        assert_eq!(sys.lazy_queue_depth(), 1);
        assert_eq!(converged_events(&sys), 1);
        sys.drain_lazy().unwrap();
        assert_eq!(converged_events(&sys), 2);
        assert!(sys.audit().verify());
    }

    #[test]
    fn chain_composes_across_archived_versions() {
        let (sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(&owner, "rec", &[("x", b"sec".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        sys.set_lazy_revocation(true);
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        sys.revoke(&bob, "Doctor@MedOrg").unwrap();
        let aid = mabe_policy::AuthorityId::new("MedOrg");
        let uk = sys.chain_from(&aid, &owner, 1).expect("archived chain");
        assert_eq!(uk.from_version, 1);
        assert_eq!(uk.to_version, 3);
        assert!(sys.chain_from(&aid, &owner, 3).is_none());
    }

    #[test]
    fn read_upgrade_heals_a_component_the_eager_worklist_missed() {
        // Regression for the publish/revoke race: a publish that sealed
        // at the pre-bump version and stored after the eager worklist's
        // last pass used to stay stale forever. Simulate the straggler
        // by sealing with a pre-revocation snapshot of the owner.
        let (sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(
            &owner,
            "rec-a",
            &[("x", b"aaa".as_slice(), "Doctor@MedOrg")],
        )
        .unwrap();
        let stale_owner_bytes = sys
            .directory
            .owners
            .read()
            .get(&owner)
            .unwrap()
            .to_wire_bytes();
        sys.revoke(&alice, "Doctor@MedOrg").unwrap(); // eager

        // Rebuild the pre-revocation owner, seal a record with it (at
        // the old version), and store it — the raced publish.
        let mut stale_owner = mabe_core::DataOwner::from_wire_bytes(&stale_owner_bytes).unwrap();
        let policy = mabe_policy::parse("Doctor@MedOrg").unwrap();
        let envelope = mabe_core::seal_envelope(
            &mut stale_owner,
            &[("y", b"bbb".as_slice(), &policy)],
            &mut *sys.rng.lock(),
        )
        .unwrap();
        sys.server().store(owner.clone(), "rec-b", envelope);
        // Swap the stale owner in, then advance it with the archived
        // update key so its history spans both versions (exactly the
        // state the real owner is in after the immediate phase).
        let aid = mabe_policy::AuthorityId::new("MedOrg");
        let uk = sys.chain_from(&aid, &owner, 1).expect("archived");
        stale_owner.apply_update_key(&uk).unwrap();
        sys.directory
            .owners
            .write()
            .insert(owner.clone(), stale_owner);

        assert_eq!(
            sys.server().affected_ciphertexts(&owner, &aid, 1).len(),
            1,
            "precondition: the straggler is stale"
        );
        // A plain read heals it before serving.
        assert_eq!(sys.read(&bob, &owner, "rec-b", "y").unwrap(), b"bbb");
        assert!(sys
            .server()
            .affected_ciphertexts(&owner, &aid, 1)
            .is_empty());
        // And the revoked user is still denied on the healed component.
        assert!(sys.read(&alice, &owner, "rec-b", "y").is_err());
    }

    #[test]
    fn publish_heals_its_own_straggler_inline() {
        // Same race, healed at the publish side: once the archive holds
        // the update key, a publish that stored stale components fixes
        // them before returning.
        let (sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(
            &owner,
            "rec-a",
            &[("x", b"aaa".as_slice(), "Doctor@MedOrg")],
        )
        .unwrap();
        sys.set_lazy_revocation(true);
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        // Owner history already spans v1..v2 (immediate phase), so a
        // fresh publish seals at v2 — but a *stale* stored envelope from
        // the race window is healed by the next publish's sweep too.
        sys.publish(
            &owner,
            "rec-c",
            &[("z", b"ccc".as_slice(), "Doctor@MedOrg")],
        )
        .unwrap();
        let aid = mabe_policy::AuthorityId::new("MedOrg");
        // rec-c sealed post-bump; only rec-a (pre-revocation) awaits the
        // queue. Reading rec-c needs no upgrade.
        assert_eq!(sys.read(&bob, &owner, "rec-c", "z").unwrap(), b"ccc");
        sys.drain_lazy().unwrap();
        assert!(sys
            .server()
            .affected_ciphertexts(&owner, &aid, 1)
            .is_empty());
    }
}
