//! Byte-accounted message transport between system entities.
//!
//! The paper's communication-cost analysis (Table IV) counts the bytes of
//! keys and ciphertexts exchanged between entity pairs. Instead of
//! sniffing a real network, every simulated send is recorded here with
//! its paper-accounted wire size, and [`Wire::report`] aggregates per
//! entity-pair class.

use std::collections::BTreeMap;
use std::fmt;

use mabe_core::{OwnerId, Uid};
use mabe_policy::AuthorityId;

/// A message endpoint in the deployment.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Endpoint {
    /// The certificate authority.
    Ca,
    /// An attribute authority.
    Authority(AuthorityId),
    /// A data owner.
    Owner(OwnerId),
    /// A data consumer.
    User(Uid),
    /// The cloud server.
    Server,
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Ca => write!(f, "CA"),
            Endpoint::Authority(a) => write!(f, "AA:{a}"),
            Endpoint::Owner(o) => write!(f, "Owner:{o}"),
            Endpoint::User(u) => write!(f, "User:{u}"),
            Endpoint::Server => write!(f, "Server"),
        }
    }
}

/// Classes of entity pairs reported by the paper's Table IV.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum PairClass {
    /// Attribute authority ↔ user (secret keys, update keys).
    AuthorityUser,
    /// Attribute authority ↔ owner (public keys, update keys).
    AuthorityOwner,
    /// Server ↔ user (ciphertext downloads).
    ServerUser,
    /// Server ↔ owner (ciphertext uploads, update information).
    ServerOwner,
    /// Anything involving the CA (registration; not tabulated by the paper).
    Ca,
    /// Any other pair.
    Other,
}

impl PairClass {
    fn of(a: &Endpoint, b: &Endpoint) -> PairClass {
        use Endpoint::*;
        match (a, b) {
            (Authority(_), User(_)) | (User(_), Authority(_)) => PairClass::AuthorityUser,
            (Authority(_), Owner(_)) | (Owner(_), Authority(_)) => PairClass::AuthorityOwner,
            (Server, User(_)) | (User(_), Server) => PairClass::ServerUser,
            (Server, Owner(_)) | (Owner(_), Server) => PairClass::ServerOwner,
            (Ca, _) | (_, Ca) => PairClass::Ca,
            _ => PairClass::Other,
        }
    }
}

impl PairClass {
    /// Stable label for metric series (`mabe_wire_bytes_total{pair=...}`).
    pub fn metric_label(&self) -> &'static str {
        match self {
            PairClass::AuthorityUser => "authority_user",
            PairClass::AuthorityOwner => "authority_owner",
            PairClass::ServerUser => "server_user",
            PairClass::ServerOwner => "server_owner",
            PairClass::Ca => "ca",
            PairClass::Other => "other",
        }
    }
}

impl fmt::Display for PairClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PairClass::AuthorityUser => "AA<->User",
            PairClass::AuthorityOwner => "AA<->Owner",
            PairClass::ServerUser => "Server<->User",
            PairClass::ServerOwner => "Server<->Owner",
            PairClass::Ca => "CA<->*",
            PairClass::Other => "other",
        };
        f.write_str(s)
    }
}

/// What happened to a transmission on the (simulated, possibly faulty)
/// wire. Under fault injection a logical message may appear several
/// times in the log — e.g. one `Dropped` entry followed by a
/// `Retransmit` that got through — so byte accounting stays exact:
/// every entry is bandwidth that was actually spent.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum Disposition {
    /// Delivered on the first attempt (the no-fault default).
    #[default]
    Delivered,
    /// A delivered retransmission of a previously dropped or corrupted
    /// message.
    Retransmit,
    /// An injected duplicate delivery (bytes spent twice).
    Duplicate,
    /// Lost in transit — bandwidth spent, nothing delivered.
    Dropped,
    /// Arrived corrupted and was rejected by the receiver.
    Corrupted,
}

impl Disposition {
    /// Stable label for metric series.
    pub fn metric_label(&self) -> &'static str {
        match self {
            Disposition::Delivered => "delivered",
            Disposition::Retransmit => "retransmit",
            Disposition::Duplicate => "duplicate",
            Disposition::Dropped => "dropped",
            Disposition::Corrupted => "corrupted",
        }
    }

    /// Whether the payload reached (and was accepted by) the receiver.
    pub fn is_delivered(&self) -> bool {
        matches!(
            self,
            Disposition::Delivered | Disposition::Retransmit | Disposition::Duplicate
        )
    }
}

/// One recorded transmission.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transmission {
    /// Sender.
    pub from: Endpoint,
    /// Receiver.
    pub to: Endpoint,
    /// Short description of the payload (e.g. `"user secret key"`).
    pub what: String,
    /// Paper-accounted size in bytes.
    pub bytes: usize,
    /// Delivery outcome (always `Delivered` without fault injection).
    pub disposition: Disposition,
}

/// Message/byte accounting broken down by delivery outcome, so the
/// paper's bandwidth numbers stay exact under injected faults:
/// `bytes_sent == bytes_delivered + bytes_lost`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeliveryReport {
    /// Messages put on the wire (all dispositions).
    pub sent: u64,
    /// Messages that reached the receiver (incl. retransmits/duplicates).
    pub delivered: u64,
    /// Injected drops.
    pub dropped: u64,
    /// Delivered retransmissions after a drop or corruption.
    pub retried: u64,
    /// Injected duplicate deliveries.
    pub duplicated: u64,
    /// Corrupted-and-rejected deliveries.
    pub corrupted: u64,
    /// Bandwidth spent, in bytes (every entry).
    pub bytes_sent: usize,
    /// Bytes that arrived intact.
    pub bytes_delivered: usize,
    /// Bytes spent on drops and corrupted deliveries.
    pub bytes_lost: usize,
}

/// The byte-accounting transport. Internally synchronized: concurrent
/// `&self` readers and the sharded control plane account bandwidth on
/// one shared wire; entries land in arrival order.
#[derive(Debug, Default)]
pub struct Wire {
    log: parking_lot::Mutex<Vec<Transmission>>,
}

impl Wire {
    /// Creates an empty wire.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one delivered message — in the local log (for the paper's
    /// Table IV reports) and in the global telemetry registry (per-pair
    /// byte and message counters).
    pub fn send(&self, from: Endpoint, to: Endpoint, what: impl Into<String>, bytes: usize) {
        self.send_with(from, to, what, bytes, Disposition::Delivered);
    }

    /// Records one message with an explicit delivery outcome. Dropped
    /// and corrupted transmissions still spend bandwidth, so they are
    /// logged and counted like any other — only the delivery report
    /// distinguishes them.
    pub fn send_with(
        &self,
        from: Endpoint,
        to: Endpoint,
        what: impl Into<String>,
        bytes: usize,
        disposition: Disposition,
    ) {
        let pair = PairClass::of(&from, &to).metric_label();
        let registry = mabe_telemetry::global();
        registry
            .counter("mabe_wire_bytes_total", &[("pair", pair)])
            .add(bytes as u64);
        registry
            .counter("mabe_wire_messages_total", &[("pair", pair)])
            .inc();
        if disposition != Disposition::Delivered {
            registry
                .counter(
                    "mabe_wire_delivery_total",
                    &[("disposition", disposition.metric_label())],
                )
                .inc();
        }
        self.log.lock().push(Transmission {
            from,
            to,
            what: what.into(),
            bytes,
            disposition,
        });
    }

    /// Full transmission log (a snapshot copy — sends may continue
    /// concurrently).
    pub fn log(&self) -> Vec<Transmission> {
        self.log.lock().clone()
    }

    /// Total bytes transmitted.
    pub fn total_bytes(&self) -> usize {
        self.log.lock().iter().map(|t| t.bytes).sum()
    }

    /// Aggregated bytes per entity-pair class (Table IV rows).
    pub fn report(&self) -> BTreeMap<PairClass, usize> {
        let mut out = BTreeMap::new();
        for t in self.log.lock().iter() {
            *out.entry(PairClass::of(&t.from, &t.to)).or_insert(0) += t.bytes;
        }
        out
    }

    /// Message and byte accounting broken down by delivery outcome.
    pub fn delivery_report(&self) -> DeliveryReport {
        let mut r = DeliveryReport::default();
        for t in self.log.lock().iter() {
            r.sent += 1;
            r.bytes_sent += t.bytes;
            match t.disposition {
                Disposition::Delivered => {}
                Disposition::Retransmit => r.retried += 1,
                Disposition::Duplicate => r.duplicated += 1,
                Disposition::Dropped => r.dropped += 1,
                Disposition::Corrupted => r.corrupted += 1,
            }
            if t.disposition.is_delivered() {
                r.delivered += 1;
                r.bytes_delivered += t.bytes;
            } else {
                r.bytes_lost += t.bytes;
            }
        }
        r
    }

    /// Bytes exchanged between one concrete pair of endpoints
    /// (direction-insensitive).
    pub fn between(&self, a: &Endpoint, b: &Endpoint) -> usize {
        self.log
            .lock()
            .iter()
            .filter(|t| (&t.from == a && &t.to == b) || (&t.from == b && &t.to == a))
            .map(|t| t.bytes)
            .sum()
    }

    /// Clears the log (e.g. between experiment phases).
    pub fn reset(&self) {
        self.log.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(n: &str) -> Endpoint {
        Endpoint::User(Uid::new(n))
    }

    fn aa(n: &str) -> Endpoint {
        Endpoint::Authority(AuthorityId::new(n))
    }

    #[test]
    fn records_and_totals() {
        let w = Wire::new();
        w.send(aa("Med"), user("alice"), "secret key", 130);
        w.send(Endpoint::Server, user("alice"), "ciphertext", 500);
        assert_eq!(w.total_bytes(), 630);
        assert_eq!(w.log().len(), 2);
    }

    #[test]
    fn pair_classes() {
        let w = Wire::new();
        w.send(aa("Med"), user("alice"), "sk", 10);
        w.send(user("alice"), aa("Med"), "req", 5);
        w.send(
            Endpoint::Server,
            Endpoint::Owner(OwnerId::new("o")),
            "ui-ack",
            7,
        );
        w.send(Endpoint::Ca, user("alice"), "uid", 3);
        let report = w.report();
        assert_eq!(report[&PairClass::AuthorityUser], 15);
        assert_eq!(report[&PairClass::ServerOwner], 7);
        assert_eq!(report[&PairClass::Ca], 3);
        assert!(!report.contains_key(&PairClass::ServerUser));
    }

    #[test]
    fn between_is_symmetric() {
        let w = Wire::new();
        w.send(aa("Med"), user("a"), "x", 10);
        w.send(user("a"), aa("Med"), "y", 4);
        assert_eq!(w.between(&aa("Med"), &user("a")), 14);
        assert_eq!(w.between(&user("a"), &aa("Med")), 14);
        assert_eq!(w.between(&aa("Med"), &user("b")), 0);
    }

    #[test]
    fn reset_clears() {
        let w = Wire::new();
        w.send(aa("Med"), user("a"), "x", 10);
        w.reset();
        assert_eq!(w.total_bytes(), 0);
        assert!(w.log().is_empty());
    }

    #[test]
    fn endpoint_display() {
        assert_eq!(user("a").to_string(), "User:a");
        assert_eq!(Endpoint::Server.to_string(), "Server");
        assert_eq!(PairClass::AuthorityUser.to_string(), "AA<->User");
    }

    #[test]
    fn delivery_report_accounts_every_byte() {
        let w = Wire::new();
        // A message is dropped, retransmitted, then an unrelated one is
        // duplicated and a third arrives corrupted.
        w.send_with(aa("M"), user("a"), "uk", 85, Disposition::Dropped);
        w.send_with(aa("M"), user("a"), "uk", 85, Disposition::Retransmit);
        w.send(Endpoint::Server, user("a"), "ct", 500);
        w.send_with(
            Endpoint::Server,
            user("a"),
            "ct",
            500,
            Disposition::Duplicate,
        );
        w.send_with(aa("M"), user("b"), "uk", 85, Disposition::Corrupted);

        let r = w.delivery_report();
        assert_eq!(r.sent, 5);
        assert_eq!(r.delivered, 3);
        assert_eq!(r.dropped, 1);
        assert_eq!(r.retried, 1);
        assert_eq!(r.duplicated, 1);
        assert_eq!(r.corrupted, 1);
        assert_eq!(r.bytes_sent, 85 + 85 + 500 + 500 + 85);
        assert_eq!(r.bytes_delivered, 85 + 500 + 500);
        assert_eq!(r.bytes_lost, 85 + 85);
        assert_eq!(r.bytes_sent, r.bytes_delivered + r.bytes_lost);
        // The classic report still counts total bandwidth.
        assert_eq!(w.total_bytes(), r.bytes_sent);
    }

    #[test]
    fn default_sends_are_delivered() {
        let w = Wire::new();
        w.send(aa("M"), user("a"), "sk", 10);
        let r = w.delivery_report();
        assert_eq!(r.sent, 1);
        assert_eq!(r.delivered, 1);
        assert_eq!(r.dropped + r.retried + r.duplicated + r.corrupted, 0);
        assert!(w.log()[0].disposition.is_delivered());
    }
}
