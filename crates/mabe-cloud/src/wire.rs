//! Byte-accounted message transport between system entities.
//!
//! The paper's communication-cost analysis (Table IV) counts the bytes of
//! keys and ciphertexts exchanged between entity pairs. Instead of
//! sniffing a real network, every simulated send is recorded here with
//! its paper-accounted wire size, and [`Wire::report`] aggregates per
//! entity-pair class.

use std::collections::BTreeMap;
use std::fmt;

use mabe_core::{OwnerId, Uid};
use mabe_policy::AuthorityId;

/// A message endpoint in the deployment.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Endpoint {
    /// The certificate authority.
    Ca,
    /// An attribute authority.
    Authority(AuthorityId),
    /// A data owner.
    Owner(OwnerId),
    /// A data consumer.
    User(Uid),
    /// The cloud server.
    Server,
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Ca => write!(f, "CA"),
            Endpoint::Authority(a) => write!(f, "AA:{a}"),
            Endpoint::Owner(o) => write!(f, "Owner:{o}"),
            Endpoint::User(u) => write!(f, "User:{u}"),
            Endpoint::Server => write!(f, "Server"),
        }
    }
}

/// Classes of entity pairs reported by the paper's Table IV.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum PairClass {
    /// Attribute authority ↔ user (secret keys, update keys).
    AuthorityUser,
    /// Attribute authority ↔ owner (public keys, update keys).
    AuthorityOwner,
    /// Server ↔ user (ciphertext downloads).
    ServerUser,
    /// Server ↔ owner (ciphertext uploads, update information).
    ServerOwner,
    /// Anything involving the CA (registration; not tabulated by the paper).
    Ca,
    /// Any other pair.
    Other,
}

impl PairClass {
    fn of(a: &Endpoint, b: &Endpoint) -> PairClass {
        use Endpoint::*;
        match (a, b) {
            (Authority(_), User(_)) | (User(_), Authority(_)) => PairClass::AuthorityUser,
            (Authority(_), Owner(_)) | (Owner(_), Authority(_)) => PairClass::AuthorityOwner,
            (Server, User(_)) | (User(_), Server) => PairClass::ServerUser,
            (Server, Owner(_)) | (Owner(_), Server) => PairClass::ServerOwner,
            (Ca, _) | (_, Ca) => PairClass::Ca,
            _ => PairClass::Other,
        }
    }
}

impl PairClass {
    /// Stable label for metric series (`mabe_wire_bytes_total{pair=...}`).
    pub fn metric_label(&self) -> &'static str {
        match self {
            PairClass::AuthorityUser => "authority_user",
            PairClass::AuthorityOwner => "authority_owner",
            PairClass::ServerUser => "server_user",
            PairClass::ServerOwner => "server_owner",
            PairClass::Ca => "ca",
            PairClass::Other => "other",
        }
    }
}

impl fmt::Display for PairClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PairClass::AuthorityUser => "AA<->User",
            PairClass::AuthorityOwner => "AA<->Owner",
            PairClass::ServerUser => "Server<->User",
            PairClass::ServerOwner => "Server<->Owner",
            PairClass::Ca => "CA<->*",
            PairClass::Other => "other",
        };
        f.write_str(s)
    }
}

/// One recorded transmission.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transmission {
    /// Sender.
    pub from: Endpoint,
    /// Receiver.
    pub to: Endpoint,
    /// Short description of the payload (e.g. `"user secret key"`).
    pub what: String,
    /// Paper-accounted size in bytes.
    pub bytes: usize,
}

/// The byte-accounting transport.
#[derive(Debug, Default)]
pub struct Wire {
    log: Vec<Transmission>,
}

impl Wire {
    /// Creates an empty wire.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message — in the local log (for the paper's Table IV
    /// reports) and in the global telemetry registry (per-pair byte and
    /// message counters).
    pub fn send(&mut self, from: Endpoint, to: Endpoint, what: impl Into<String>, bytes: usize) {
        let pair = PairClass::of(&from, &to).metric_label();
        let registry = mabe_telemetry::global();
        registry
            .counter("mabe_wire_bytes_total", &[("pair", pair)])
            .add(bytes as u64);
        registry
            .counter("mabe_wire_messages_total", &[("pair", pair)])
            .inc();
        self.log.push(Transmission {
            from,
            to,
            what: what.into(),
            bytes,
        });
    }

    /// Full transmission log.
    pub fn log(&self) -> &[Transmission] {
        &self.log
    }

    /// Total bytes transmitted.
    pub fn total_bytes(&self) -> usize {
        self.log.iter().map(|t| t.bytes).sum()
    }

    /// Aggregated bytes per entity-pair class (Table IV rows).
    pub fn report(&self) -> BTreeMap<PairClass, usize> {
        let mut out = BTreeMap::new();
        for t in &self.log {
            *out.entry(PairClass::of(&t.from, &t.to)).or_insert(0) += t.bytes;
        }
        out
    }

    /// Bytes exchanged between one concrete pair of endpoints
    /// (direction-insensitive).
    pub fn between(&self, a: &Endpoint, b: &Endpoint) -> usize {
        self.log
            .iter()
            .filter(|t| (&t.from == a && &t.to == b) || (&t.from == b && &t.to == a))
            .map(|t| t.bytes)
            .sum()
    }

    /// Clears the log (e.g. between experiment phases).
    pub fn reset(&mut self) {
        self.log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(n: &str) -> Endpoint {
        Endpoint::User(Uid::new(n))
    }

    fn aa(n: &str) -> Endpoint {
        Endpoint::Authority(AuthorityId::new(n))
    }

    #[test]
    fn records_and_totals() {
        let mut w = Wire::new();
        w.send(aa("Med"), user("alice"), "secret key", 130);
        w.send(Endpoint::Server, user("alice"), "ciphertext", 500);
        assert_eq!(w.total_bytes(), 630);
        assert_eq!(w.log().len(), 2);
    }

    #[test]
    fn pair_classes() {
        let mut w = Wire::new();
        w.send(aa("Med"), user("alice"), "sk", 10);
        w.send(user("alice"), aa("Med"), "req", 5);
        w.send(
            Endpoint::Server,
            Endpoint::Owner(OwnerId::new("o")),
            "ui-ack",
            7,
        );
        w.send(Endpoint::Ca, user("alice"), "uid", 3);
        let report = w.report();
        assert_eq!(report[&PairClass::AuthorityUser], 15);
        assert_eq!(report[&PairClass::ServerOwner], 7);
        assert_eq!(report[&PairClass::Ca], 3);
        assert!(!report.contains_key(&PairClass::ServerUser));
    }

    #[test]
    fn between_is_symmetric() {
        let mut w = Wire::new();
        w.send(aa("Med"), user("a"), "x", 10);
        w.send(user("a"), aa("Med"), "y", 4);
        assert_eq!(w.between(&aa("Med"), &user("a")), 14);
        assert_eq!(w.between(&user("a"), &aa("Med")), 14);
        assert_eq!(w.between(&aa("Med"), &user("b")), 0);
    }

    #[test]
    fn reset_clears() {
        let mut w = Wire::new();
        w.send(aa("Med"), user("a"), "x", 10);
        w.reset();
        assert_eq!(w.total_bytes(), 0);
        assert!(w.log().is_empty());
    }

    #[test]
    fn endpoint_display() {
        assert_eq!(user("a").to_string(), "User:a");
        assert_eq!(Endpoint::Server.to_string(), "Server");
        assert_eq!(PairClass::AuthorityUser.to_string(), "AA<->User");
    }
}
