//! Control plane: grant, revoke, key delivery, and recovery,
//! serialized **per authority shard**.
//!
//! Every authority lives in its own [`AuthorityShard`]: the master
//! keys, the version chain, the availability flag, and the journaled
//! in-flight revocations against it all sit behind one shard mutex.
//! Versions chain per authority (paper §V), so revocations at one
//! authority must serialize — the shard lock *is* that serialization —
//! while revocations at different authorities proceed concurrently.
//!
//! Lock ordering (see DESIGN.md §12): `shards` map read lock → one
//! shard's `state` → `users` / `owners` → leaves. A shard lock is
//! never taken while holding `users` or `owners`, and no operation
//! takes two shard locks at once (cross-authority operations lock
//! shards one after another).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use mabe_core::{
    AttributeAuthority, Error, OwnerId, RevocationEvent, Uid, UpdateKey, UserSecretKey,
};
use mabe_policy::{Attribute, AuthorityId};

use crate::audit::AuditEvent;
use crate::recovery::{PendingRevocation, RevocationStage};
use crate::system::{apply_update_tolerant, fault_points, CloudError, CloudSystem};
use crate::wire::Endpoint;

/// Everything serialized under one authority's shard lock.
#[derive(Debug)]
pub(crate) struct ShardState {
    pub(crate) authority: AttributeAuthority,
    /// Administratively (or chaos-) downed: control-plane operations
    /// against this authority fail fast; reads are unaffected.
    pub(crate) down: bool,
    /// Journaled revocations against this authority that have not yet
    /// converged, keyed by the global journal id.
    pub(crate) in_flight: BTreeMap<u64, PendingRevocation>,
}

/// One authority's slice of the control plane.
#[derive(Debug)]
pub(crate) struct AuthorityShard {
    pub(crate) state: Mutex<ShardState>,
}

impl AuthorityShard {
    fn new(authority: AttributeAuthority) -> Self {
        AuthorityShard {
            state: Mutex::new(ShardState {
                authority,
                down: false,
                in_flight: BTreeMap::new(),
            }),
        }
    }
}

/// The sharded control plane: one shard per authority plus the global
/// revocation journal counter.
#[derive(Debug)]
pub(crate) struct ControlPlane {
    pub(crate) shards: RwLock<BTreeMap<AuthorityId, Arc<AuthorityShard>>>,
    pub(crate) next_revocation: AtomicU64,
}

impl ControlPlane {
    pub(crate) fn new() -> Self {
        ControlPlane {
            shards: RwLock::new(BTreeMap::new()),
            next_revocation: AtomicU64::new(0),
        }
    }

    /// A cheap, clonable handle on one authority's shard.
    pub(crate) fn shard(&self, aid: &AuthorityId) -> Option<Arc<AuthorityShard>> {
        self.shards.read().get(aid).cloned()
    }

    /// Installs a fresh authority, or (on durable replay) swaps the
    /// restored post-setup authority into its existing shard without
    /// touching the shard's recovery state.
    pub(crate) fn insert_authority(&self, aa: AttributeAuthority) {
        let aid = aa.aid().clone();
        let mut shards = self.shards.write();
        match shards.get(&aid) {
            Some(shard) => shard.state.lock().authority = aa,
            None => {
                shards.insert(aid, Arc::new(AuthorityShard::new(aa)));
            }
        }
    }
}

impl CloudSystem {
    /// Grants attributes to a user: the relevant authorities record the
    /// grant and issue secret keys scoped to every owner.
    ///
    /// Key generation and delivery run under the retry policy at the
    /// [`fault_points::GRANT_KEYGEN`] / [`fault_points::GRANT_DELIVER`]
    /// fault points; a downed authority fails fast with
    /// [`CloudError::AuthorityUnavailable`].
    ///
    /// # Errors
    ///
    /// Fails on unknown user/authority/attribute, downed authorities, or
    /// unrecovered injected faults.
    pub fn grant(&self, uid: &Uid, attributes: &[&str]) -> Result<(), CloudError> {
        let _trace = mabe_trace::Span::child("cloud.grant").detail(uid.to_string());
        mabe_trace::op_attr("uid", uid.to_string());
        let pk = {
            let users = self.directory.users.read();
            users
                .users
                .get(uid)
                .ok_or_else(|| CloudError::Core(Error::UnknownUser(uid.clone())))?
                .pk
                .clone()
        };
        let mut by_authority: BTreeMap<AuthorityId, Vec<Attribute>> = BTreeMap::new();
        for raw in attributes {
            let attr: Attribute = raw
                .parse()
                .map_err(|_| CloudError::UnknownEntity(format!("attribute {raw}")))?;
            by_authority
                .entry(attr.authority().clone())
                .or_default()
                .push(attr);
        }
        for (aid, attrs) in by_authority {
            mabe_trace::op_attr("authority", aid.to_string());
            let shard = self
                .control
                .shard(&aid)
                .ok_or_else(|| CloudError::UnknownAuthority(aid.clone()))?;
            let mut st = shard.state.lock();
            if st.down {
                return Err(CloudError::AuthorityUnavailable(aid.clone()));
            }
            self.local_op(fault_points::GRANT_KEYGEN, Some(&aid))?;
            st.authority.grant(&pk, attrs.iter().cloned())?;
            {
                let mut users = self.directory.users.write();
                users
                    .grants
                    .get_mut(uid)
                    .expect("user exists")
                    .extend(attrs.iter().cloned());
                for attr in &attrs {
                    users.index_grant(uid, attr);
                }
            }
            let owner_ids: Vec<OwnerId> = self.directory.owners.read().keys().cloned().collect();
            for owner_id in owner_ids {
                let key = st.authority.keygen(uid, &owner_id)?;
                self.transmit(
                    fault_points::GRANT_DELIVER,
                    Endpoint::Authority(aid.clone()),
                    Endpoint::User(uid.clone()),
                    "user secret key",
                    key.wire_size(),
                )?;
                self.directory
                    .users
                    .write()
                    .users
                    .get_mut(uid)
                    .expect("checked above")
                    .keys
                    .insert((owner_id, aid.clone()), key);
            }
        }
        self.audit.lock().record(AuditEvent::Granted {
            uid: uid.to_string(),
            attributes: attributes.iter().map(|a| a.to_string()).collect(),
        });
        Ok(())
    }

    /// Revokes one attribute from one user, running the full two-phase
    /// protocol: the authority re-keys, the intent is journaled to the
    /// audit log, then fresh keys flow to the revoked user, update keys
    /// to every other holder and every owner, and the server
    /// re-encrypts every affected ciphertext.
    ///
    /// The entire revocation runs under the authority's shard lock:
    /// revocations at one authority serialize (versions chain), while
    /// grants, reads, and revocations at other authorities proceed.
    ///
    /// A crash mid-flight leaves a journaled [`PendingRevocation`] that
    /// [`Self::recover`] rolls forward; every step is idempotent under
    /// replay.
    ///
    /// With lazy revocation enabled ([`Self::set_lazy_revocation`]) only
    /// the immediate phase runs inline — version bump, audit journal,
    /// key delivery, owner key updates — and server-side re-encryption
    /// is parked on the pending-upgrade queue (see [`crate::lazy`]).
    /// The version check already denies the revoked user at that point;
    /// queued components are healed by [`Self::drain_lazy`] workers or
    /// read-triggered upgrade, whichever reaches them first.
    ///
    /// # Errors
    ///
    /// Unknown user/authority, the user not holding the attribute, a
    /// downed authority, or an unrecovered injected fault.
    pub fn revoke(&self, uid: &Uid, attribute: &str) -> Result<(), CloudError> {
        // End-to-end revocation latency: ReKey at the authority through
        // the last server-side re-encryption (eager) or enqueue (lazy).
        let _e2e = mabe_telemetry::Span::start("mabe_revocation_e2e");
        let _trace = mabe_trace::Span::child("cloud.revoke").detail(format!("{uid} {attribute}"));
        let attr: Attribute = attribute
            .parse()
            .map_err(|_| CloudError::UnknownEntity(format!("attribute {attribute}")))?;
        let aid = attr.authority().clone();
        mabe_trace::op_attr("uid", uid.to_string());
        mabe_trace::op_attr("authority", aid.to_string());
        self.lazy_backpressure()?;
        let shard = self
            .control
            .shard(&aid)
            .ok_or_else(|| CloudError::UnknownAuthority(aid.clone()))?;
        let mut st = shard.state.lock();
        self.precheck_in_shard(&aid, &mut st)?;
        let event = st
            .authority
            .revoke_attribute(uid, &attr, &mut *self.rng.lock())?;
        let id = self.begin_in_shard(&mut st, event);
        if self.lazy_revocation_enabled() {
            self.defer_in_shard(&mut st, id)
        } else {
            self.drive_in_shard(&mut st, id, false)
        }
    }

    /// User-level revocation at one authority: strips all of the user's
    /// attributes from that domain in a single version bump. Same
    /// two-phase, crash-safe, shard-serialized machinery as
    /// [`Self::revoke`].
    ///
    /// # Errors
    ///
    /// Unknown user/authority, no attributes held there, a downed
    /// authority, or an unrecovered injected fault.
    pub fn revoke_user_at(&self, uid: &Uid, aid: &AuthorityId) -> Result<(), CloudError> {
        let _e2e = mabe_telemetry::Span::start("mabe_revocation_e2e");
        let _trace =
            mabe_trace::Span::child("cloud.revoke_user_at").detail(format!("{uid} @{aid}"));
        mabe_trace::op_attr("uid", uid.to_string());
        mabe_trace::op_attr("authority", aid.to_string());
        self.lazy_backpressure()?;
        let shard = self
            .control
            .shard(aid)
            .ok_or_else(|| CloudError::UnknownAuthority(aid.clone()))?;
        let mut st = shard.state.lock();
        self.precheck_in_shard(aid, &mut st)?;
        let event = st.authority.revoke_user(uid, &mut *self.rng.lock())?;
        let id = self.begin_in_shard(&mut st, event);
        if self.lazy_revocation_enabled() {
            self.defer_in_shard(&mut st, id)
        } else {
            self.drive_in_shard(&mut st, id, false)
        }
    }

    /// Full user-level revocation: runs [`Self::revoke_user_at`] against
    /// every authority where the user currently holds attributes.
    ///
    /// # Errors
    ///
    /// Unknown user; propagates per-authority failures.
    pub fn revoke_user(&self, uid: &Uid) -> Result<(), CloudError> {
        let involved: Vec<AuthorityId> = {
            let users = self.directory.users.read();
            users
                .grants
                .get(uid)
                .ok_or_else(|| CloudError::Core(Error::UnknownUser(uid.clone())))?
                .iter()
                .map(|a| a.authority().clone())
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect()
        };
        for aid in involved {
            self.revoke_user_at(uid, &aid)?;
        }
        Ok(())
    }

    /// Gates a revocation on an already-locked shard: the authority must
    /// be reachable, pass the [`fault_points::REVOKE_REKEY`] fault
    /// point, and have no in-flight revocation (versions chain, so
    /// revocations at one authority serialize — any crashed predecessor
    /// is driven to completion first).
    pub(crate) fn precheck_in_shard(
        &self,
        aid: &AuthorityId,
        st: &mut ShardState,
    ) -> Result<(), CloudError> {
        if st.down {
            return Err(CloudError::AuthorityUnavailable(aid.clone()));
        }
        self.local_op(fault_points::REVOKE_REKEY, Some(aid))?;
        let stalled: Vec<u64> = st.in_flight.keys().copied().collect();
        for id in stalled {
            self.drive_in_shard(st, id, true)?;
        }
        Ok(())
    }

    /// Journals the intent of a revocation (audit `RevocationBegun` +
    /// `Revoked`), removes the revoked grants, purges now-stale queued
    /// update keys for the revoked user at that authority, and parks the
    /// event in the shard as a [`PendingRevocation`]. Returns the
    /// journal id (globally unique across shards).
    pub(crate) fn begin_in_shard(&self, st: &mut ShardState, event: RevocationEvent) -> u64 {
        let id = self.control.next_revocation.fetch_add(1, Ordering::SeqCst);
        let aid = event.aid.clone();
        let uid = event.revoked_uid.clone();
        {
            let mut audit = self.audit.lock();
            audit.record(AuditEvent::RevocationBegun {
                uid: uid.to_string(),
                aid: aid.to_string(),
                from_version: event.from_version,
                to_version: event.to_version,
            });
            audit.record(AuditEvent::Revoked {
                uid: uid.to_string(),
                attributes: event
                    .revoked_attributes
                    .iter()
                    .map(|a| a.to_string())
                    .collect(),
                aid: aid.to_string(),
                new_version: event.to_version,
            });
        }
        {
            let mut users = self.directory.users.write();
            if users.grants.contains_key(&uid) {
                for attr in &event.revoked_attributes {
                    users
                        .grants
                        .get_mut(&uid)
                        .expect("checked above")
                        .remove(attr);
                    users.unindex_grant(&uid, attr);
                }
            }
            // Update keys still queued for the revoked user at this
            // authority are superseded by the fresh reduced keys (already
            // at the new version): replaying them on sync would only
            // fail. Purge them so an offline revoked user syncs cleanly.
            if let Some(queue) = users.pending_updates.get_mut(&uid) {
                let before = queue.len();
                queue.retain(|(_, uk)| uk.aid != aid);
                let purged = (before - queue.len()) as u64;
                if purged > 0 {
                    mabe_telemetry::global()
                        .counter("mabe_stale_update_keys_dropped_total", &[("op", "revoke")])
                        .add(purged);
                }
            }
        }
        // Park the per-owner update keys server-side regardless of mode:
        // the archive is what lets read-triggered upgrade (and the lazy
        // drain) advance any component that stayed behind.
        self.archive_update_keys(&event);
        // The version bump makes every cached content key and composed
        // update-key chain touching this authority stale; drop them
        // before any post-revocation read can be served.
        self.cache.invalidate_authority(&aid);
        mabe_trace::op_attr("key_version_observed", event.from_version.to_string());
        mabe_trace::op_attr("key_version_served", event.to_version.to_string());
        st.in_flight.insert(id, PendingRevocation::new(id, event));
        mabe_trace::event(mabe_trace::TraceEvent::RevocationPhase { stage: "begun" });
        id
    }

    /// Drives one journaled revocation (in an already-locked shard) to
    /// completion. On success the audit log gains `RevocationCompleted`
    /// (plus `RevocationRecovered` when `recovered`); on failure the
    /// pending entry is re-parked with its checkpoints intact so a later
    /// drive resumes, not restarts.
    pub(crate) fn drive_in_shard(
        &self,
        st: &mut ShardState,
        id: u64,
        recovered: bool,
    ) -> Result<(), CloudError> {
        let Some(mut pending) = st.in_flight.remove(&id) else {
            return Ok(());
        };
        match self.drive_phases(&mut pending) {
            Ok(()) => {
                self.audit.lock().record(AuditEvent::RevocationCompleted {
                    aid: pending.event.aid.to_string(),
                    version: pending.event.to_version,
                });
                mabe_trace::event(mabe_trace::TraceEvent::RevocationPhase { stage: "complete" });
                if recovered {
                    self.audit.lock().record(AuditEvent::RevocationRecovered {
                        aid: pending.event.aid.to_string(),
                        version: pending.event.to_version,
                    });
                    mabe_telemetry::global()
                        .counter("mabe_revocations_recovered_total", &[])
                        .inc();
                    mabe_trace::event(mabe_trace::TraceEvent::RevocationPhase {
                        stage: "recovered",
                    });
                }
                Ok(())
            }
            Err(e) => {
                st.in_flight.insert(id, pending);
                Err(e)
            }
        }
    }

    fn drive_phases(&self, pending: &mut PendingRevocation) -> Result<(), CloudError> {
        if pending.stage == RevocationStage::KeyDelivery {
            mabe_trace::event(mabe_trace::TraceEvent::RevocationPhase {
                stage: "key_delivery",
            });
            self.deliver_keys(pending)?;
            pending.stage = RevocationStage::ReEncryption;
        }
        mabe_trace::event(mabe_trace::TraceEvent::RevocationPhase {
            stage: "re_encryption",
        });
        self.update_owners(pending)?;
        self.reencrypt_phase(pending)
    }

    /// The lazy counterpart of [`Self::drive_in_shard`]: runs only the
    /// immediate phase — key delivery and owner key updates — then
    /// parks server-side re-encryption on the pending-upgrade queue and
    /// audits [`AuditEvent::RevocationDeferred`] (the security-complete
    /// point: the version check now denies the revoked user everywhere).
    /// On failure the pending entry is re-parked with checkpoints
    /// intact; recovery then drives it *eagerly*, which is the
    /// documented roll-forward for a crash between begin and defer.
    pub(crate) fn defer_in_shard(&self, st: &mut ShardState, id: u64) -> Result<(), CloudError> {
        let Some(mut pending) = st.in_flight.remove(&id) else {
            return Ok(());
        };
        match self.defer_phases(&mut pending) {
            Ok(()) => {
                self.audit.lock().record(AuditEvent::RevocationDeferred {
                    aid: pending.event.aid.to_string(),
                    version: pending.event.to_version,
                });
                Ok(())
            }
            Err(e) => {
                st.in_flight.insert(id, pending);
                Err(e)
            }
        }
    }

    fn defer_phases(&self, pending: &mut PendingRevocation) -> Result<(), CloudError> {
        if pending.stage == RevocationStage::KeyDelivery {
            mabe_trace::event(mabe_trace::TraceEvent::RevocationPhase {
                stage: "key_delivery",
            });
            self.deliver_keys(pending)?;
            pending.stage = RevocationStage::ReEncryption;
        }
        // Owners update their attribute-key history inline even in lazy
        // mode: update_info_for needs history at both ends of a span, so
        // deferring this would leave read-triggered upgrade keyless.
        self.update_owners(pending)?;
        self.enqueue_lazy(pending)
    }

    /// Phase 1: fresh reduced keys to the revoked user (delivered eagerly
    /// even if offline — the old keys must die), then update keys to
    /// every other holder (queued for offline holders). Checkpointed per
    /// holder; key application is version-tolerant, so replays after a
    /// crash are no-ops.
    fn deliver_keys(&self, pending: &mut PendingRevocation) -> Result<(), CloudError> {
        let _trace =
            mabe_trace::Span::child("cloud.deliver_keys").detail(format!("@{}", pending.event.aid));
        let aid = pending.event.aid.clone();
        let uid = pending.event.revoked_uid.clone();
        if !pending.fresh_keys_delivered {
            if self.directory.users.read().users.contains_key(&uid) {
                let fresh: Vec<(OwnerId, UserSecretKey)> = pending
                    .event
                    .revoked_user_keys
                    .iter()
                    .map(|(o, k)| (o.clone(), k.clone()))
                    .collect();
                for (owner_id, key) in fresh {
                    self.transmit(
                        fault_points::REVOKE_FRESH_KEY,
                        Endpoint::Authority(aid.clone()),
                        Endpoint::User(uid.clone()),
                        "re-issued secret key",
                        key.wire_size(),
                    )?;
                    self.directory
                        .users
                        .write()
                        .users
                        .get_mut(&uid)
                        .expect("checked above")
                        .keys
                        .insert((owner_id, aid.clone()), key);
                }
            }
            pending.fresh_keys_delivered = true;
        }
        // Everyone still granted anything at this authority, via the
        // `(authority)` prefix of the inverted grant index — no full
        // grants-map walk. Index rows sort by uid under the prefix, so
        // delivery order matches the old scan.
        let holders: Vec<Uid> = {
            let users = self.directory.users.read();
            users
                .holders_of_authority(&aid)
                .into_iter()
                .filter(|holder| *holder != uid)
                .collect()
        };
        for holder in holders {
            if pending.delivered_holders.contains(&holder) {
                continue;
            }
            if self.directory.users.read().offline.contains(&holder) {
                let mut users = self.directory.users.write();
                let queue = users.pending_updates.entry(holder.clone()).or_default();
                for (owner_id, uk) in &pending.event.update_keys {
                    queue.push((owner_id.clone(), uk.clone()));
                }
                drop(users);
                pending.delivered_holders.insert(holder);
                continue;
            }
            let slots: Vec<(OwnerId, UpdateKey)> = {
                let users = self.directory.users.read();
                pending
                    .event
                    .update_keys
                    .iter()
                    .filter(|(owner_id, _)| {
                        users.users.get(&holder).is_some_and(|s| {
                            s.keys.contains_key(&((*owner_id).clone(), aid.clone()))
                        })
                    })
                    .map(|(o, uk)| (o.clone(), uk.clone()))
                    .collect()
            };
            for (owner_id, uk) in slots {
                self.transmit(
                    fault_points::REVOKE_UPDATE_DELIVER,
                    Endpoint::Authority(aid.clone()),
                    Endpoint::User(holder.clone()),
                    "update key",
                    uk.wire_size(),
                )?;
                let mut users = self.directory.users.write();
                let state = users.users.get_mut(&holder).expect("holder exists");
                let key = state
                    .keys
                    .get_mut(&(owner_id, aid.clone()))
                    .expect("filtered above");
                apply_update_tolerant(key, &uk)?;
            }
            pending.delivered_holders.insert(holder);
        }
        Ok(())
    }

    /// Rolls every journaled in-flight revocation forward to completion
    /// (crash recovery), across all shards in global journal order.
    /// Returns how many revocations converged. Partial progress is
    /// retained on failure, so calling `recover` again after clearing
    /// the fault continues where it stopped.
    ///
    /// # Errors
    ///
    /// Propagates the first fault that still blocks convergence.
    pub fn recover(&self) -> Result<usize, CloudError> {
        let _trace = mabe_trace::Span::child("cloud.recover");
        let mut work: Vec<(u64, Arc<AuthorityShard>)> = Vec::new();
        for shard in self.control.shards.read().values() {
            let st = shard.state.lock();
            for id in st.in_flight.keys() {
                work.push((*id, Arc::clone(shard)));
            }
        }
        work.sort_by_key(|(id, _)| *id);
        let mut completed = 0;
        for (id, shard) in work {
            let mut st = shard.state.lock();
            self.drive_in_shard(&mut st, id, true)?;
            completed += 1;
        }
        Ok(completed)
    }

    /// Whether any revocation is journaled but not yet converged.
    pub fn needs_recovery(&self) -> bool {
        self.control
            .shards
            .read()
            .values()
            .any(|s| !s.state.lock().in_flight.is_empty())
    }

    /// Progress summaries of every in-flight revocation, in global
    /// journal order.
    pub fn pending_revocations(&self) -> Vec<String> {
        let mut entries: Vec<(u64, String)> = Vec::new();
        for shard in self.control.shards.read().values() {
            let st = shard.state.lock();
            for (id, p) in st.in_flight.iter() {
                entries.push((*id, p.progress()));
            }
        }
        entries.sort_by_key(|(id, _)| *id);
        entries.into_iter().map(|(_, p)| p).collect()
    }

    /// Marks an authority unreachable: grants and revocations against it
    /// fail with [`CloudError::AuthorityUnavailable`], while reads keep
    /// serving the last consistent version (graceful degradation).
    pub fn set_authority_down(&self, aid: &AuthorityId) {
        if let Some(shard) = self.control.shard(aid) {
            shard.state.lock().down = true;
        }
    }

    /// Brings a downed authority back.
    pub fn set_authority_up(&self, aid: &AuthorityId) {
        if let Some(shard) = self.control.shard(aid) {
            shard.state.lock().down = false;
        }
    }

    /// Whether an authority is currently marked down.
    pub fn authority_is_down(&self, aid: &AuthorityId) -> bool {
        self.control
            .shard(aid)
            .is_some_and(|shard| shard.state.lock().down)
    }

    /// Journals a restored revocation event into its authority's shard
    /// (durable replay path). The authority must already be installed.
    pub(crate) fn begin_revocation(&self, event: RevocationEvent) -> u64 {
        let shard = self
            .control
            .shard(&event.aid)
            .expect("authority installed before revocation replay");
        let mut st = shard.state.lock();
        self.begin_in_shard(&mut st, event)
    }

    /// Defers one journaled revocation by global id, locating its shard
    /// first (durable replay path for `RevocationDeferred` records).
    /// Unknown ids are a clean no-op.
    pub(crate) fn defer_revocation(&self, id: u64) -> Result<(), CloudError> {
        let shard = self
            .control
            .shards
            .read()
            .values()
            .find(|s| s.state.lock().in_flight.contains_key(&id))
            .cloned();
        let Some(shard) = shard else {
            return Ok(());
        };
        let mut st = shard.state.lock();
        self.defer_in_shard(&mut st, id)
    }

    /// Drives one journaled revocation by global id, locating its shard
    /// first (durable replay path). Unknown ids are a clean no-op.
    pub(crate) fn drive_revocation(&self, id: u64, recovered: bool) -> Result<(), CloudError> {
        let shard = self
            .control
            .shards
            .read()
            .values()
            .find(|s| s.state.lock().in_flight.contains_key(&id))
            .cloned();
        let Some(shard) = shard else {
            return Ok(());
        };
        let mut st = shard.state.lock();
        self.drive_in_shard(&mut st, id, recovered)
    }

    /// Brings a user back online and replays any queued update keys.
    /// Consecutive updates per `(owner, authority)` are **composed**
    /// into one compact key first ([`mabe_core::UpdateKey::compose`]),
    /// so a user offline through `n` revocations downloads one update
    /// key per authority, not `n`.
    ///
    /// Queued updates the user's key has already moved past — e.g. the
    /// fresh reduced keys delivered when the user was revoked while
    /// offline land at the *new* version — are dropped, not replayed, so
    /// syncing never resurrects stale key material. Delivery runs at the
    /// [`fault_points::SYNC_DELIVER`] fault point; on failure the
    /// undelivered remainder is re-queued so a later sync resumes.
    ///
    /// # Errors
    ///
    /// Propagates key-update failures (e.g. corrupted queues) and
    /// unrecovered injected faults.
    pub fn sync_user(&self, uid: &Uid) -> Result<(), CloudError> {
        let _trace = mabe_trace::Span::child("cloud.sync_user").detail(uid.to_string());
        let (queue, versions) = {
            let mut users = self.directory.users.write();
            users.offline.remove(uid);
            let Some(queue) = users.pending_updates.remove(uid) else {
                return Ok(());
            };
            let versions: BTreeMap<(OwnerId, AuthorityId), u64> = users
                .users
                .get(uid)
                .ok_or_else(|| CloudError::Core(Error::UnknownUser(uid.clone())))?
                .keys
                .iter()
                .map(|(slot, key)| (slot.clone(), key.version))
                .collect();
            (queue, versions)
        };
        // Compact chains per (owner, authority), dropping entries the
        // key has already advanced past.
        let mut compacted: BTreeMap<(OwnerId, AuthorityId), UpdateKey> = BTreeMap::new();
        let mut stale = 0u64;
        for (owner_id, uk) in queue {
            let slot = (owner_id, uk.aid.clone());
            let current = versions.get(&slot).copied().unwrap_or(0);
            if uk.from_version < current {
                stale += 1;
                continue;
            }
            match compacted.remove(&slot) {
                Some(prev) => {
                    compacted.insert(slot, prev.compose(&uk)?);
                }
                None => {
                    compacted.insert(slot, uk);
                }
            }
        }
        if stale > 0 {
            mabe_telemetry::global()
                .counter("mabe_stale_update_keys_dropped_total", &[("op", "sync")])
                .add(stale);
        }
        let work: Vec<((OwnerId, AuthorityId), UpdateKey)> = compacted.into_iter().collect();
        for (i, (slot, uk)) in work.iter().enumerate() {
            if let Err(e) = self.transmit(
                fault_points::SYNC_DELIVER,
                Endpoint::Authority(slot.1.clone()),
                Endpoint::User(uid.clone()),
                "composed deferred update key",
                uk.wire_size(),
            ) {
                // Crash-safety: re-queue the undelivered remainder so the
                // next sync picks up exactly where this one stopped.
                let requeue: Vec<(OwnerId, UpdateKey)> = work[i..]
                    .iter()
                    .map(|((owner_id, _), uk)| (owner_id.clone(), uk.clone()))
                    .collect();
                self.directory
                    .users
                    .write()
                    .pending_updates
                    .insert(uid.clone(), requeue);
                return Err(e);
            }
            let mut users = self.directory.users.write();
            let state = users.users.get_mut(uid).expect("checked above");
            if let Some(key) = state.keys.get_mut(slot) {
                apply_update_tolerant(key, uk)?;
            }
        }
        Ok(())
    }
}
