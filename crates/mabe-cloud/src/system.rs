//! End-to-end orchestration of the five-entity deployment (paper Fig. 1).
//!
//! [`CloudSystem`] is a thin shell over three layered modules — the
//! [directory](crate::directory) (identities and registries), the
//! [control plane](crate::control) (grant / revoke / key delivery /
//! recovery, serialized per authority shard), and the
//! [data plane](crate::data) (publish / read / re-encrypt) — routing
//! every key and ciphertext through the byte-accounted [`Wire`] so the
//! paper's storage and communication experiments fall out of ordinary
//! operation.
//!
//! Every public operation takes `&self`: shared state lives behind the
//! lock hierarchy documented in DESIGN.md §12, so concurrent readers,
//! a live revocation, and chaos bookkeeping coexist on one system.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use mabe_core::{Error, OwnerId, Uid, UpdateKey, UserSecretKey, ZP_BYTES};
use mabe_faults::{FaultInjector, FaultKind, RetryError, RetryPolicy};
use mabe_policy::{AuthorityId, ParsePolicyError};

use crate::audit::AuditLog;
use crate::control::ControlPlane;
use crate::data::DataPlane;
use crate::directory::Directory;
use crate::server::CloudServer;
use crate::wire::{Disposition, Endpoint, Wire};

/// Named fault points the system consults its [`FaultInjector`] at.
///
/// Chaos plans reference these constants when scheduling faults
/// (`FaultPlan::at(fault_points::REVOKE_REENCRYPT, 1, FaultKind::Crash)`),
/// so the instrumented sites and the test schedules cannot drift apart.
pub mod fault_points {
    /// Authority-side `KeyGen` during an attribute grant.
    pub const GRANT_KEYGEN: &str = "grant.keygen";
    /// Secret-key delivery from an authority to the granted user.
    pub const GRANT_DELIVER: &str = "grant.deliver";
    /// Owner upload of a sealed record to the server.
    pub const PUBLISH_STORE: &str = "publish.store";
    /// Server-to-user component download on a read.
    pub const READ_FETCH: &str = "read.fetch";
    /// The authority's `ReKey` step at the start of a revocation.
    pub const REVOKE_REKEY: &str = "revoke.rekey";
    /// Delivery of fresh (attribute-reduced) keys to the revoked user.
    pub const REVOKE_FRESH_KEY: &str = "revoke.fresh_key";
    /// Update-key delivery to a non-revoked holder.
    pub const REVOKE_UPDATE_DELIVER: &str = "revoke.update_deliver";
    /// Update-key delivery to a data owner.
    pub const REVOKE_OWNER_UPDATE: &str = "revoke.owner_update";
    /// Server-side proxy re-encryption of one affected ciphertext.
    pub const REVOKE_REENCRYPT: &str = "revoke.reencrypt";
    /// Composed update-key delivery when an offline user syncs.
    pub const SYNC_DELIVER: &str = "sync.deliver";
    /// Parking a lazy revocation's re-encryption work on the
    /// pending-upgrade queue (immediate phase of a lazy revoke).
    pub const LAZY_ENQUEUE: &str = "cloud.lazy_enqueue";
    /// One component upgrade performed by the lazy drain (background
    /// worker or inline backpressure drain).
    pub const LAZY_DRAIN: &str = "cloud.lazy_drain";
    /// A read-triggered upgrade: a stale component is re-encrypted in
    /// place before being served.
    pub const READ_UPGRADE: &str = "cloud.read_upgrade";
}

/// Errors from system-level operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CloudError {
    /// An underlying scheme operation failed.
    Core(Error),
    /// A policy string did not parse.
    Parse(ParsePolicyError),
    /// No such authority in the system.
    UnknownAuthority(AuthorityId),
    /// No such record on the server.
    UnknownRecord(String),
    /// No such component label within the record.
    UnknownComponent(String),
    /// Entity lookup failed.
    UnknownEntity(String),
    /// The authority exists but is unreachable (administratively down or
    /// an injected outage). Transient: retrying may succeed.
    AuthorityUnavailable(AuthorityId),
    /// A storage-layer operation failed. Transient.
    Storage(&'static str),
    /// The backing store is out of space: the durable system has
    /// degraded to read-only. Reads keep serving; mutations fail fast
    /// with this error until compaction (or an operator) reclaims
    /// space, at which point writes resume automatically. Transient.
    StoreFull {
        /// The fault point (or gate) that observed the full disk.
        point: &'static str,
    },
    /// A transmission was lost in transit (dropped or corrupted) and the
    /// retry budget has not yet absorbed it. Transient.
    Lost {
        /// The fault point where the loss occurred.
        point: &'static str,
    },
    /// A simulated crash fired mid-operation. Fatal for the current call;
    /// journaled state lets [`CloudSystem::recover`] roll forward.
    Crashed {
        /// The fault point where the crash fired.
        point: &'static str,
    },
    /// A transient error persisted through every allowed retry.
    RetriesExhausted {
        /// The operation (fault point) that kept failing.
        op: &'static str,
        /// Attempts performed, including the first.
        attempts: u32,
        /// The last transient error observed.
        last: Box<CloudError>,
    },
}

impl CloudError {
    /// Whether retrying the failed operation could help.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            CloudError::AuthorityUnavailable(_)
                | CloudError::Storage(_)
                | CloudError::StoreFull { .. }
                | CloudError::Lost { .. }
        )
    }

    /// Collapses a [`RetryError`] into a `CloudError`, wrapping exhausted
    /// retries with the operation name and attempt count.
    fn from_retry(op: &'static str, err: RetryError<CloudError>) -> CloudError {
        match err {
            RetryError::Fatal(e) => e,
            RetryError::GaveUp { attempts, last }
            | RetryError::DeadlineExceeded { attempts, last } => CloudError::RetriesExhausted {
                op,
                attempts,
                last: Box::new(last),
            },
        }
    }
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::Core(e) => write!(f, "{e}"),
            CloudError::Parse(e) => write!(f, "{e}"),
            CloudError::UnknownAuthority(a) => write!(f, "unknown authority {a}"),
            CloudError::UnknownRecord(r) => write!(f, "unknown record {r}"),
            CloudError::UnknownComponent(c) => write!(f, "unknown component {c}"),
            CloudError::UnknownEntity(e) => write!(f, "unknown entity {e}"),
            CloudError::AuthorityUnavailable(a) => write!(f, "authority {a} unavailable"),
            CloudError::Storage(p) => write!(f, "storage error at {p}"),
            CloudError::StoreFull { point } => {
                write!(
                    f,
                    "storage out of space at {point}: writes degraded to read-only"
                )
            }
            CloudError::Lost { point } => write!(f, "transmission lost at {point}"),
            CloudError::Crashed { point } => write!(f, "crashed at {point}"),
            CloudError::RetriesExhausted { op, attempts, last } => {
                write!(f, "{op} failed after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for CloudError {}

/// Applies an update key, treating "the key already advanced to (or past)
/// the target version" as success — the idempotency that makes replayed
/// deliveries during crash recovery harmless.
pub(crate) fn apply_update_tolerant(
    key: &mut UserSecretKey,
    uk: &UpdateKey,
) -> Result<(), CloudError> {
    match key.apply_update(uk) {
        Ok(()) => Ok(()),
        Err(Error::VersionMismatch { found, .. }) if found >= uk.to_version => Ok(()),
        Err(e) => Err(e.into()),
    }
}

impl From<Error> for CloudError {
    fn from(e: Error) -> Self {
        CloudError::Core(e)
    }
}

impl From<ParsePolicyError> for CloudError {
    fn from(e: ParsePolicyError) -> Self {
        CloudError::Parse(e)
    }
}

/// Paper-accounted storage overhead per entity class (Table III).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct StorageReport {
    /// Bytes per attribute authority.
    pub authorities: BTreeMap<AuthorityId, usize>,
    /// Bytes per owner.
    pub owners: BTreeMap<OwnerId, usize>,
    /// Bytes per user.
    pub users: BTreeMap<Uid, usize>,
    /// Bytes on the server.
    pub server: usize,
}

/// An [`RngCore`] view over a mutex-guarded RNG: each draw takes the
/// lock, so `&self` call sites share one deterministic stream without
/// holding it across unrelated work.
pub(crate) struct LockedRng<'a>(pub(crate) &'a Mutex<StdRng>);

impl RngCore for LockedRng<'_> {
    fn next_u32(&mut self) -> u32 {
        self.0.lock().next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.lock().next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.lock().fill_bytes(dest)
    }
}

/// The complete simulated deployment, layered as directory / control
/// plane / data plane (see the module docs and DESIGN.md §12).
#[derive(Debug)]
pub struct CloudSystem {
    /// Crypto randomness. A leaf lock: taken per draw, never while
    /// calling back into another layer.
    pub(crate) rng: Mutex<StdRng>,
    pub(crate) directory: Directory,
    pub(crate) control: ControlPlane,
    pub(crate) data: DataPlane,
    pub(crate) wire: Wire,
    pub(crate) audit: Mutex<AuditLog>,
    pub(crate) faults: FaultInjector,
    pub(crate) retry: RwLock<RetryPolicy>,
    /// Jitter draws come from a dedicated stream so fault schedules never
    /// perturb the crypto determinism of `rng`.
    pub(crate) retry_rng: Mutex<StdRng>,
    /// Lazy-revocation machinery: the pending-upgrade queue, the
    /// server-held update-key archive, and the drain claim set.
    pub(crate) lazy: crate::lazy::LazyState,
    /// Hot-key caches: decrypted content keys and composed update-key
    /// chains, invalidated by revocation's version bump (see
    /// [`crate::cache`]).
    pub(crate) cache: crate::cache::SystemCaches,
}

impl CloudSystem {
    /// Creates an empty system with a deterministic RNG seed and no fault
    /// injection (the production configuration).
    pub fn new(seed: u64) -> Self {
        Self::with_faults(seed, FaultInjector::none())
    }

    /// Creates a system whose instrumented operations consult `faults` —
    /// the entry point for seeded chaos runs.
    pub fn with_faults(seed: u64, faults: FaultInjector) -> Self {
        // The wide-event pipeline rides the trace sink; installing it
        // here keeps every deployment observable with no extra setup.
        mabe_events::install();
        CloudSystem {
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            directory: Directory::new(),
            control: ControlPlane::new(),
            data: DataPlane::new(),
            wire: Wire::new(),
            audit: Mutex::new(AuditLog::new()),
            faults,
            retry: RwLock::new(RetryPolicy::default()),
            retry_rng: Mutex::new(StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15)),
            lazy: crate::lazy::LazyState::new(),
            cache: crate::cache::SystemCaches::new(),
        }
    }

    /// Cumulative hot-key cache statistics (content-key and update-key
    /// chain hits, misses, evictions).
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// Sends one message through the wire under the retry policy,
    /// consulting the fault injector at `point` on every attempt.
    ///
    /// Drops and corruptions burn bandwidth (the lossy transmission is
    /// still byte-accounted) and are retried with backoff; successful
    /// retries are logged as [`Disposition::Retransmit`] so the delivery
    /// report keeps exact counts. Injected duplicates deliver twice.
    /// Storage errors and authority outages at a transmit point are
    /// treated as transient unavailability of the receiving end.
    ///
    /// # Errors
    ///
    /// [`CloudError::Crashed`] on an injected crash,
    /// [`CloudError::RetriesExhausted`] when transient faults outlast the
    /// retry budget.
    pub(crate) fn transmit(
        &self,
        point: &'static str,
        from: Endpoint,
        to: Endpoint,
        what: &str,
        bytes: usize,
    ) -> Result<(), CloudError> {
        let retry = *self.retry.read();
        retry
            .run(
                &mut LockedRng(&self.retry_rng),
                point,
                |attempt| {
                    let ok_disposition = if attempt > 1 {
                        Disposition::Retransmit
                    } else {
                        Disposition::Delivered
                    };
                    match self.faults.decide(point) {
                        Some(FaultKind::Crash) => Err(CloudError::Crashed { point }),
                        Some(FaultKind::Drop) => {
                            self.wire.send_with(
                                from.clone(),
                                to.clone(),
                                what,
                                bytes,
                                Disposition::Dropped,
                            );
                            Err(CloudError::Lost { point })
                        }
                        Some(FaultKind::Corrupt) => {
                            self.wire.send_with(
                                from.clone(),
                                to.clone(),
                                what,
                                bytes,
                                Disposition::Corrupted,
                            );
                            Err(CloudError::Lost { point })
                        }
                        Some(FaultKind::Duplicate) => {
                            self.wire.send_with(
                                from.clone(),
                                to.clone(),
                                what,
                                bytes,
                                ok_disposition,
                            );
                            self.wire.send_with(
                                from.clone(),
                                to.clone(),
                                what,
                                bytes,
                                Disposition::Duplicate,
                            );
                            Ok(())
                        }
                        Some(
                            FaultKind::StorageError
                            | FaultKind::TornWrite
                            | FaultKind::PartialFlush
                            | FaultKind::ReadCorrupt
                            | FaultKind::ManifestTorn,
                        ) => Err(CloudError::Storage(point)),
                        Some(FaultKind::NoSpace) => Err(CloudError::StoreFull { point }),
                        Some(FaultKind::AuthorityDown) => Err(CloudError::Lost { point }),
                        Some(FaultKind::Delay) => {
                            mabe_telemetry::global()
                                .counter("mabe_fault_delay_us_total", &[("point", point)])
                                .add(self.faults.delay_us());
                            self.wire.send_with(
                                from.clone(),
                                to.clone(),
                                what,
                                bytes,
                                ok_disposition,
                            );
                            Ok(())
                        }
                        None => {
                            self.wire.send_with(
                                from.clone(),
                                to.clone(),
                                what,
                                bytes,
                                ok_disposition,
                            );
                            Ok(())
                        }
                    }
                },
                CloudError::is_transient,
            )
            .map_err(|e| CloudError::from_retry(point, e))
    }

    /// Consults the fault injector at a local (non-wire) operation point
    /// under the retry policy. Drop/duplicate/corrupt kinds are
    /// meaningless off the wire and are ignored.
    pub(crate) fn local_op(
        &self,
        point: &'static str,
        aid: Option<&AuthorityId>,
    ) -> Result<(), CloudError> {
        let retry = *self.retry.read();
        retry
            .run(
                &mut LockedRng(&self.retry_rng),
                point,
                |_| match self.faults.decide(point) {
                    Some(FaultKind::Crash) => Err(CloudError::Crashed { point }),
                    // The disk-level kinds only shape byte survival inside
                    // mabe-store; on a cloud op they degrade to a transient
                    // storage error.
                    Some(
                        FaultKind::StorageError
                        | FaultKind::TornWrite
                        | FaultKind::PartialFlush
                        | FaultKind::ReadCorrupt
                        | FaultKind::ManifestTorn,
                    ) => Err(CloudError::Storage(point)),
                    Some(FaultKind::NoSpace) => Err(CloudError::StoreFull { point }),
                    Some(FaultKind::AuthorityDown) => Err(match aid {
                        Some(a) => CloudError::AuthorityUnavailable(a.clone()),
                        None => CloudError::Lost { point },
                    }),
                    Some(FaultKind::Delay) => {
                        mabe_telemetry::global()
                            .counter("mabe_fault_delay_us_total", &[("point", point)])
                            .add(self.faults.delay_us());
                        Ok(())
                    }
                    Some(FaultKind::Drop)
                    | Some(FaultKind::Duplicate)
                    | Some(FaultKind::Corrupt)
                    | None => Ok(()),
                },
                CloudError::is_transient,
            )
            .map_err(|e| CloudError::from_retry(point, e))
    }

    /// The byte-accounted transport log.
    pub fn wire(&self) -> &Wire {
        &self.wire
    }

    /// The tamper-evident audit trail of every system operation.
    ///
    /// Returns a lock guard dereferencing to the [`AuditLog`]; method
    /// calls work as before (`sys.audit().verify()`), comparisons need
    /// an explicit `&*`.
    pub fn audit(&self) -> impl std::ops::Deref<Target = AuditLog> + '_ {
        self.audit.lock()
    }

    /// Resets communication accounting (e.g. between experiment phases).
    pub fn reset_wire(&self) {
        self.wire.reset();
    }

    /// The fault injector (inspect the injection log, hit counters,
    /// arm/disarm mid-run — all interior-mutable).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Replaces the fault injector wholesale (e.g. a fresh chaos plan).
    pub fn faults_mut(&mut self) -> &mut FaultInjector {
        &mut self.faults
    }

    /// The retry policy applied to instrumented operations.
    pub fn retry_policy(&self) -> RetryPolicy {
        *self.retry.read()
    }

    /// Replaces the retry policy (e.g. `RetryPolicy::none()` to surface
    /// every transient fault).
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.retry.write() = policy;
    }

    /// JSON snapshot of the global telemetry registry: crypto-op
    /// counters, per-pair wire bytes, and latency histograms
    /// (encrypt/decrypt/re-encrypt, server ops, revocation end-to-end).
    pub fn metrics_snapshot(&self) -> String {
        mabe_telemetry::global().snapshot_json()
    }

    /// Prometheus text exposition of the same registry.
    pub fn metrics_prometheus(&self) -> String {
        mabe_telemetry::global().prometheus()
    }

    /// The cloud server.
    pub fn server(&self) -> &CloudServer {
        &self.data.server
    }

    /// A shared handle on the cloud server, for harnesses that drive
    /// reads from worker threads while this system mutates state.
    pub fn server_arc(&self) -> Arc<CloudServer> {
        Arc::clone(&self.data.server)
    }

    /// Current key version of an authority.
    pub fn authority_version(&self, aid: &AuthorityId) -> Option<u64> {
        self.control
            .shard(aid)
            .map(|shard| shard.state.lock().authority.version())
    }

    /// Every installed authority shard with its current liveness
    /// (`true` = serving, `false` = marked down). This is the view the
    /// observability plane's `/readyz` probes scrape, so it takes each
    /// shard lock only long enough to read the `down` flag.
    pub fn authority_liveness(&self) -> Vec<(AuthorityId, bool)> {
        self.control
            .shards
            .read()
            .iter()
            .map(|(aid, shard)| (aid.clone(), !shard.state.lock().down))
            .collect()
    }

    /// Paper-accounted storage overhead per entity (Table III).
    pub fn storage_report(&self) -> StorageReport {
        let authorities = self
            .control
            .shards
            .read()
            .keys()
            .map(|aid| (aid.clone(), ZP_BYTES))
            .collect();
        let owners = self
            .directory
            .owners
            .read()
            .iter()
            .map(|(id, o)| (id.clone(), o.storage_size()))
            .collect();
        let users = self
            .directory
            .users
            .read()
            .users
            .iter()
            .map(|(uid, s)| {
                (
                    uid.clone(),
                    s.keys.values().map(UserSecretKey::wire_size).sum(),
                )
            })
            .collect();
        StorageReport {
            authorities,
            owners,
            users,
            server: self.data.server.storage_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::PairClass;

    /// Populates the paper's running example in an existing system: a
    /// medical authority and a clinical-trial authority, one hospital
    /// owner, three users.
    fn medical_world(sys: &CloudSystem) -> (Uid, Uid, Uid, OwnerId) {
        sys.add_authority("MedOrg", &["Doctor", "Nurse"]).unwrap();
        sys.add_authority("Trial", &["Researcher", "Sponsor"])
            .unwrap();
        let owner = sys.add_owner("hospital").unwrap();
        let alice = sys.add_user("alice").unwrap();
        let bob = sys.add_user("bob").unwrap();
        let carol = sys.add_user("carol").unwrap();
        sys.grant(&alice, &["Doctor@MedOrg", "Researcher@Trial"])
            .unwrap();
        sys.grant(&bob, &["Doctor@MedOrg", "Sponsor@Trial"])
            .unwrap();
        sys.grant(&carol, &["Nurse@MedOrg", "Researcher@Trial"])
            .unwrap();
        (alice, bob, carol, owner)
    }

    fn medical_system() -> (CloudSystem, Uid, Uid, Uid, OwnerId) {
        let sys = CloudSystem::new(42);
        let (alice, bob, carol, owner) = medical_world(&sys);
        (sys, alice, bob, carol, owner)
    }

    #[test]
    fn end_to_end_publish_and_read() {
        let (sys, alice, bob, carol, owner) = medical_system();
        sys.publish(
            &owner,
            "patient-7",
            &[
                ("diagnosis", b"flu".as_slice(), "Doctor@MedOrg"),
                (
                    "trial-data",
                    b"cohort A".as_slice(),
                    "Doctor@MedOrg AND Researcher@Trial",
                ),
            ],
        )
        .unwrap();

        // Alice (Doctor+Researcher) reads both.
        assert_eq!(
            sys.read(&alice, &owner, "patient-7", "diagnosis").unwrap(),
            b"flu"
        );
        assert_eq!(
            sys.read(&alice, &owner, "patient-7", "trial-data").unwrap(),
            b"cohort A"
        );
        // Bob (Doctor+Sponsor) reads diagnosis only.
        assert_eq!(
            sys.read(&bob, &owner, "patient-7", "diagnosis").unwrap(),
            b"flu"
        );
        assert!(sys.read(&bob, &owner, "patient-7", "trial-data").is_err());
        // Carol (Nurse+Researcher) reads neither.
        assert!(sys.read(&carol, &owner, "patient-7", "diagnosis").is_err());
        assert!(sys.read(&carol, &owner, "patient-7", "trial-data").is_err());
    }

    #[test]
    fn revocation_lifecycle_through_the_system() {
        let (sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(
            &owner,
            "rec",
            &[("x", b"secret".as_slice(), "Doctor@MedOrg")],
        )
        .unwrap();
        assert_eq!(sys.read(&alice, &owner, "rec", "x").unwrap(), b"secret");
        assert_eq!(sys.read(&bob, &owner, "rec", "x").unwrap(), b"secret");

        // Revoke Alice's Doctor attribute.
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        assert_eq!(sys.authority_version(&AuthorityId::new("MedOrg")), Some(2));

        // Alice can no longer read; Bob still can (keys auto-updated).
        assert!(sys.read(&alice, &owner, "rec", "x").is_err());
        assert_eq!(sys.read(&bob, &owner, "rec", "x").unwrap(), b"secret");

        // New publications under the new version behave the same.
        sys.publish(
            &owner,
            "rec2",
            &[("y", b"fresh".as_slice(), "Doctor@MedOrg")],
        )
        .unwrap();
        assert!(sys.read(&alice, &owner, "rec2", "y").is_err());
        assert_eq!(sys.read(&bob, &owner, "rec2", "y").unwrap(), b"fresh");

        // A user who joins after the revocation can read the old record.
        let dave = sys.add_user("dave").unwrap();
        sys.grant(&dave, &["Doctor@MedOrg"]).unwrap();
        assert_eq!(sys.read(&dave, &owner, "rec", "x").unwrap(), b"secret");
    }

    #[test]
    fn late_owner_gets_keys_flowing() {
        let (sys, alice, _bob, _carol, _owner) = medical_system();
        let clinic = sys.add_owner("clinic").unwrap();
        sys.publish(
            &clinic,
            "c-rec",
            &[("n", b"note".as_slice(), "Doctor@MedOrg")],
        )
        .unwrap();
        assert_eq!(sys.read(&alice, &clinic, "c-rec", "n").unwrap(), b"note");
    }

    #[test]
    fn wire_accounting_accumulates_per_pair() {
        let (sys, alice, _bob, _carol, owner) = medical_system();
        sys.publish(&owner, "r", &[("x", b"d".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        sys.read(&alice, &owner, "r", "x").unwrap();
        let report = sys.wire().report();
        assert!(report[&PairClass::AuthorityUser] > 0, "secret keys flowed");
        assert!(report[&PairClass::AuthorityOwner] > 0, "public keys flowed");
        assert!(report[&PairClass::ServerOwner] > 0, "upload flowed");
        assert!(report[&PairClass::ServerUser] > 0, "download flowed");
    }

    #[test]
    fn storage_report_covers_all_entities() {
        let (sys, _alice, _bob, _carol, owner) = medical_system();
        let report = sys.storage_report();
        assert_eq!(report.authorities.len(), 2);
        // Authority stores only its version key.
        assert!(report.authorities.values().all(|&b| b == ZP_BYTES));
        assert!(report.owners[&owner] > 0);
        assert_eq!(report.users.len(), 3);
        assert!(report.users.values().all(|&b| b > 0));
    }

    #[test]
    fn unknown_lookups_error() {
        let (sys, alice, _bob, _carol, owner) = medical_system();
        assert!(matches!(
            sys.read(&alice, &owner, "nope", "x"),
            Err(CloudError::UnknownRecord(_))
        ));
        sys.publish(&owner, "r", &[("x", b"d".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        assert!(matches!(
            sys.read(&alice, &owner, "r", "nope"),
            Err(CloudError::UnknownComponent(_))
        ));
        assert!(matches!(
            sys.grant(&Uid::new("ghost"), &["Doctor@MedOrg"]),
            Err(CloudError::Core(Error::UnknownUser(_)))
        ));
        assert!(matches!(
            sys.revoke(&alice, "Doctor@Nowhere"),
            Err(CloudError::UnknownAuthority(_))
        ));
        assert!(matches!(
            sys.publish(&owner, "bad", &[("x", b"d".as_slice(), "not a policy !!")]),
            Err(CloudError::Parse(_))
        ));
    }

    #[test]
    fn revocation_reencrypts_every_owners_ciphertexts() {
        let (sys, alice, bob, _carol, hospital) = medical_system();
        let clinic = sys.add_owner("clinic").unwrap();
        sys.publish(
            &hospital,
            "h-rec",
            &[("x", b"h".as_slice(), "Doctor@MedOrg")],
        )
        .unwrap();
        sys.publish(&clinic, "c-rec", &[("x", b"c".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        assert!(sys.read(&alice, &hospital, "h-rec", "x").is_ok());
        assert!(sys.read(&alice, &clinic, "c-rec", "x").is_ok());

        // One revocation at MedOrg must re-encrypt records of BOTH
        // owners (per-owner update keys, per-owner update info).
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        assert!(sys.read(&alice, &hospital, "h-rec", "x").is_err());
        assert!(sys.read(&alice, &clinic, "c-rec", "x").is_err());
        assert_eq!(sys.read(&bob, &hospital, "h-rec", "x").unwrap(), b"h");
        assert_eq!(sys.read(&bob, &clinic, "c-rec", "x").unwrap(), b"c");
    }

    #[test]
    fn outsourced_read_matches_direct_read() {
        let (sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(
            &owner,
            "r",
            &[(
                "x",
                b"outsource me".as_slice(),
                "Doctor@MedOrg AND Researcher@Trial",
            )],
        )
        .unwrap();
        assert_eq!(sys.read(&alice, &owner, "r", "x").unwrap(), b"outsource me");
        assert_eq!(
            sys.read_outsourced(&alice, &owner, "r", "x").unwrap(),
            b"outsource me"
        );
        // Unauthorized user fails identically on both paths.
        assert!(sys.read(&bob, &owner, "r", "x").is_err());
        assert!(sys.read_outsourced(&bob, &owner, "r", "x").is_err());
        // The outsourced path also survives a revocation + key update.
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        assert!(sys.read_outsourced(&alice, &owner, "r", "x").is_err());
    }

    #[test]
    fn audit_trail_records_lifecycle() {
        let (sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(&owner, "r", &[("x", b"v".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        let _ = sys.read(&alice, &owner, "r", "x");
        let _ = sys.read(&bob, &owner, "r", "x");
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        let _ = sys.read(&alice, &owner, "r", "x"); // denied

        let audit = sys.audit();
        assert!(audit.verify(), "hash chain intact");
        // 2 AAs + 1 owner + 3 users + 3 grants + 1 publish + 3 reads +
        // 3 for the revocation (begun + revoked + completed) = 16.
        assert_eq!(audit.entries().len(), 16);
        assert!(audit.incomplete_revocations().is_empty());
        assert_eq!(audit.denials().count(), 1);
        assert!(audit.for_user("alice").count() >= 4);
        // The denial is alice's post-revocation read.
        let denial = audit.denials().next().unwrap();
        assert!(denial.event.to_string().contains("alice"));
    }

    #[test]
    fn user_level_revocation() {
        let (sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(
            &owner,
            "r",
            &[
                ("med", b"m".as_slice(), "Doctor@MedOrg"),
                ("trial", b"t".as_slice(), "Researcher@Trial"),
            ],
        )
        .unwrap();
        assert!(sys.read(&alice, &owner, "r", "med").is_ok());
        assert!(sys.read(&alice, &owner, "r", "trial").is_ok());

        // Wipe Alice everywhere in one call: MedOrg and Trial each bump
        // exactly once regardless of how many attributes she held.
        sys.revoke_user(&alice).unwrap();
        assert_eq!(sys.authority_version(&AuthorityId::new("MedOrg")), Some(2));
        assert_eq!(sys.authority_version(&AuthorityId::new("Trial")), Some(2));
        assert!(sys.read(&alice, &owner, "r", "med").is_err());
        assert!(sys.read(&alice, &owner, "r", "trial").is_err());
        // Bob unaffected.
        assert!(sys.read(&bob, &owner, "r", "med").is_ok());
        // Re-revoking an attribute-less user fails.
        assert!(
            sys.revoke_user(&alice).is_ok(),
            "no-op: no authorities involved"
        );
        assert!(sys
            .revoke_user_at(&alice, &AuthorityId::new("MedOrg"))
            .is_err());
    }

    #[test]
    fn offline_user_catches_up_with_queued_update_keys() {
        let (sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(&owner, "r", &[("x", b"v".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        assert!(sys.read(&bob, &owner, "r", "x").is_ok());

        // Bob goes offline; two revocations happen (two version bumps).
        sys.set_offline(&bob);
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        let dave = sys.add_user("dave").unwrap();
        sys.grant(&dave, &["Doctor@MedOrg"]).unwrap();
        sys.revoke(&dave, "Doctor@MedOrg").unwrap();
        assert_eq!(sys.authority_version(&AuthorityId::new("MedOrg")), Some(3));

        // Bob's keys are two versions stale: reads fail cleanly.
        assert!(sys.read(&bob, &owner, "r", "x").is_err());

        // Coming back online replays the queued UK chain in order.
        sys.sync_user(&bob).unwrap();
        assert_eq!(sys.read(&bob, &owner, "r", "x").unwrap(), b"v");

        // Syncing an already-synced user is a no-op.
        sys.sync_user(&bob).unwrap();
        assert_eq!(sys.read(&bob, &owner, "r", "x").unwrap(), b"v");
    }

    #[test]
    fn metrics_exports_cover_the_lifecycle() {
        let (sys, alice, _bob, _carol, owner) = medical_system();
        sys.publish(&owner, "r", &[("x", b"v".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        sys.read(&alice, &owner, "r", "x").unwrap();
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();

        let json = sys.metrics_snapshot();
        for series in [
            "mabe_encrypt_latency_us",
            "mabe_decrypt_latency_us",
            "mabe_reencrypt_latency_us",
            "mabe_revocation_e2e_latency_us",
            "mabe_system_op_latency_us",
            "mabe_server_op_latency_us",
            "mabe_wire_bytes_total",
            "mabe_crypto_ops_total",
        ] {
            assert!(
                json.contains(series),
                "JSON snapshot missing {series}: {json}"
            );
        }

        let prom = sys.metrics_prometheus();
        assert!(prom.contains("# TYPE mabe_wire_bytes_total counter"));
        assert!(prom.contains("# TYPE mabe_revocation_e2e_latency_us histogram"));
        assert!(prom.contains(r#"pair="authority_user""#));
    }

    #[test]
    fn multiple_revocations_chain_versions() {
        let (sys, alice, bob, carol, owner) = medical_system();
        sys.publish(
            &owner,
            "r",
            &[("x", b"v".as_slice(), "Nurse@MedOrg OR Doctor@MedOrg")],
        )
        .unwrap();
        assert_eq!(sys.read(&carol, &owner, "r", "x").unwrap(), b"v");

        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        sys.revoke(&carol, "Nurse@MedOrg").unwrap();
        assert_eq!(sys.authority_version(&AuthorityId::new("MedOrg")), Some(3));

        // Bob still reads after two re-encryptions.
        assert_eq!(sys.read(&bob, &owner, "r", "x").unwrap(), b"v");
        // Carol lost access.
        assert!(sys.read(&carol, &owner, "r", "x").is_err());
    }

    #[test]
    fn authority_outage_blocks_control_plane_not_reads() {
        let (sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(&owner, "r", &[("x", b"v".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        let med = AuthorityId::new("MedOrg");
        sys.set_authority_down(&med);
        assert!(sys.authority_is_down(&med));
        // Control-plane operations against the downed authority fail...
        assert!(matches!(
            sys.revoke(&alice, "Doctor@MedOrg"),
            Err(CloudError::AuthorityUnavailable(_))
        ));
        assert!(matches!(
            sys.grant(&bob, &["Nurse@MedOrg"]),
            Err(CloudError::AuthorityUnavailable(_))
        ));
        // ...but the data plane still serves the last consistent version.
        assert_eq!(sys.read(&alice, &owner, "r", "x").unwrap(), b"v");
        // Back up, the revocation goes through.
        sys.set_authority_up(&med);
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        assert!(sys.read(&alice, &owner, "r", "x").is_err());
        assert_eq!(sys.read(&bob, &owner, "r", "x").unwrap(), b"v");
    }

    #[test]
    fn crash_mid_reencryption_recovers_forward() {
        use mabe_faults::FaultPlan;
        let plan = FaultPlan::new(11).at(fault_points::REVOKE_REENCRYPT, 1, FaultKind::Crash);
        let sys = CloudSystem::with_faults(42, FaultInjector::new(plan));
        let (alice, bob, _carol, owner) = medical_world(&sys);
        sys.publish(&owner, "r", &[("x", b"v".as_slice(), "Doctor@MedOrg")])
            .unwrap();

        let err = sys.revoke(&alice, "Doctor@MedOrg").unwrap_err();
        assert!(matches!(err, CloudError::Crashed { .. }), "got {err}");
        assert!(sys.needs_recovery());
        assert_eq!(sys.audit().incomplete_revocations().len(), 1);
        assert_eq!(sys.pending_revocations().len(), 1);

        // The scheduled crash fired once; recovery rolls the journaled
        // revocation forward to convergence.
        assert_eq!(sys.recover().unwrap(), 1);
        assert!(!sys.needs_recovery());
        assert!(sys.audit().incomplete_revocations().is_empty());
        assert!(sys.audit().verify());
        assert!(
            sys.read(&alice, &owner, "r", "x").is_err(),
            "revoked stays revoked after recovery"
        );
        assert_eq!(
            sys.read(&bob, &owner, "r", "x").unwrap(),
            b"v",
            "holder converged"
        );
        assert!(sys
            .metrics_snapshot()
            .contains("mabe_revocations_recovered_total"));
    }

    #[test]
    fn crash_during_key_delivery_is_resumable_and_idempotent() {
        use mabe_faults::FaultPlan;
        // Crash on the very first holder update-key delivery.
        let plan = FaultPlan::new(3).at(fault_points::REVOKE_UPDATE_DELIVER, 1, FaultKind::Crash);
        let sys = CloudSystem::with_faults(42, FaultInjector::new(plan));
        let (alice, bob, carol, owner) = medical_world(&sys);
        sys.publish(
            &owner,
            "r",
            &[("x", b"v".as_slice(), "Nurse@MedOrg OR Doctor@MedOrg")],
        )
        .unwrap();

        assert!(sys.revoke(&alice, "Doctor@MedOrg").is_err());
        assert!(sys.needs_recovery());
        // recover() twice: the second call must be a clean no-op.
        assert_eq!(sys.recover().unwrap(), 1);
        assert_eq!(sys.recover().unwrap(), 0);
        assert_eq!(sys.read(&bob, &owner, "r", "x").unwrap(), b"v");
        assert_eq!(sys.read(&carol, &owner, "r", "x").unwrap(), b"v");
        assert!(sys.read(&alice, &owner, "r", "x").is_err());
    }

    #[test]
    fn a_new_revocation_first_drives_a_stalled_one() {
        use mabe_faults::FaultPlan;
        let plan = FaultPlan::new(7).at(fault_points::REVOKE_REENCRYPT, 1, FaultKind::Crash);
        let sys = CloudSystem::with_faults(42, FaultInjector::new(plan));
        let (alice, bob, carol, owner) = medical_world(&sys);
        sys.publish(
            &owner,
            "r",
            &[("x", b"v".as_slice(), "Nurse@MedOrg OR Doctor@MedOrg")],
        )
        .unwrap();
        assert!(sys.revoke(&alice, "Doctor@MedOrg").is_err());
        assert!(sys.needs_recovery());
        // Versions chain: revoking carol at the same authority first
        // rolls the stalled revocation forward, then re-keys.
        sys.revoke(&carol, "Nurse@MedOrg").unwrap();
        assert!(!sys.needs_recovery());
        assert_eq!(sys.authority_version(&AuthorityId::new("MedOrg")), Some(3));
        assert_eq!(sys.read(&bob, &owner, "r", "x").unwrap(), b"v");
        assert!(sys.read(&alice, &owner, "r", "x").is_err());
        assert!(sys.read(&carol, &owner, "r", "x").is_err());
    }

    #[test]
    fn transient_drops_are_retried_transparently() {
        use mabe_faults::FaultPlan;
        let plan = FaultPlan::new(5)
            .rate(fault_points::READ_FETCH, FaultKind::Drop, 0.4)
            .budget(6);
        let sys = CloudSystem::with_faults(42, FaultInjector::new(plan));
        let (alice, _bob, _carol, owner) = medical_world(&sys);
        sys.publish(&owner, "r", &[("x", b"v".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        for _ in 0..8 {
            assert_eq!(sys.read(&alice, &owner, "r", "x").unwrap(), b"v");
        }
        let report = sys.wire().delivery_report();
        assert!(report.dropped > 0, "some fetches were dropped: {report:?}");
        // Every read succeeded, so each drop burst ended in a delivered
        // retransmission (consecutive drops within one operation share
        // one final retransmit).
        assert!(
            report.retried > 0 && report.retried <= report.dropped,
            "drops ended in retransmissions: {report:?}"
        );
        assert_eq!(
            report.bytes_sent,
            report.bytes_delivered + report.bytes_lost
        );
        assert!(sys.faults().injected(FaultKind::Drop) > 0);
    }

    #[test]
    fn syncing_an_offline_revoked_user_does_not_resurrect_stale_keys() {
        let (sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(
            &owner,
            "r",
            &[
                ("med", b"m".as_slice(), "Doctor@MedOrg"),
                ("trial", b"t".as_slice(), "Sponsor@Trial"),
            ],
        )
        .unwrap();
        assert!(sys.read(&bob, &owner, "r", "med").is_ok());

        sys.set_offline(&bob);
        // A revocation bob misses queues an update key (v1 -> v2)...
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        // ...then bob himself is revoked at MedOrg while still offline:
        // fresh reduced keys (already at v3) are delivered eagerly.
        sys.revoke(&bob, "Doctor@MedOrg").unwrap();
        assert_eq!(sys.authority_version(&AuthorityId::new("MedOrg")), Some(3));

        // The old failure mode: sync replayed the stale v1->v2 update
        // onto the fresh v3 key and died with VersionMismatch.
        sys.sync_user(&bob).unwrap();
        assert!(
            sys.read(&bob, &owner, "r", "med").is_err(),
            "revoked attribute stays revoked after sync"
        );
        assert_eq!(
            sys.read(&bob, &owner, "r", "trial").unwrap(),
            b"t",
            "unrelated authority unaffected"
        );
        // Syncing again is a no-op.
        sys.sync_user(&bob).unwrap();
    }

    #[test]
    fn parallel_reencryption_matches_sequential_results() {
        // Same seed, same world: one system re-encrypts sequentially,
        // the other with a 4-worker pool. Access control must agree.
        let run = |workers: usize| {
            let sys = CloudSystem::new(42);
            let (alice, bob, _carol, owner) = medical_world(&sys);
            for i in 0..6 {
                sys.publish(
                    &owner,
                    &format!("rec-{i}"),
                    &[("x", b"v".as_slice(), "Doctor@MedOrg")],
                )
                .unwrap();
            }
            sys.set_reencrypt_workers(workers);
            sys.revoke(&alice, "Doctor@MedOrg").unwrap();
            let alice_reads: Vec<bool> = (0..6)
                .map(|i| sys.read(&alice, &owner, &format!("rec-{i}"), "x").is_ok())
                .collect();
            let bob_reads: Vec<bool> = (0..6)
                .map(|i| sys.read(&bob, &owner, &format!("rec-{i}"), "x").is_ok())
                .collect();
            (alice_reads, bob_reads)
        };
        let (a1, b1) = run(1);
        let (a4, b4) = run(4);
        assert!(a1.iter().all(|ok| !ok), "revoked reader locked out");
        assert!(b1.iter().all(|ok| *ok), "holder keeps access");
        assert_eq!(a1, a4);
        assert_eq!(b1, b4);
    }
}
