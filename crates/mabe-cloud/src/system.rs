//! End-to-end orchestration of the five-entity deployment (paper Fig. 1).
//!
//! [`CloudSystem`] wires together the CA, the attribute authorities, the
//! data owners, the users and the semi-trusted server, routing every key
//! and ciphertext through the byte-accounted [`Wire`] so the paper's
//! storage and communication experiments fall out of ordinary operation.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use mabe_core::{
    open_component, seal_envelope, AttributeAuthority, CertificateAuthority, DataOwner, Error,
    OwnerId, Uid, UpdateKey, UserPublicKey, UserSecretKey, ZP_BYTES,
};
use mabe_faults::{FaultInjector, FaultKind, RetryError, RetryPolicy};
use mabe_policy::{parse, Attribute, AuthorityId, ParsePolicyError, Policy};

use crate::audit::{AuditEvent, AuditLog};
use crate::recovery::{PendingRevocation, RevocationStage};
use crate::server::CloudServer;
use crate::wire::{Disposition, Endpoint, Wire};

/// Named fault points the system consults its [`FaultInjector`] at.
///
/// Chaos plans reference these constants when scheduling faults
/// (`FaultPlan::at(fault_points::REVOKE_REENCRYPT, 1, FaultKind::Crash)`),
/// so the instrumented sites and the test schedules cannot drift apart.
pub mod fault_points {
    /// Authority-side `KeyGen` during an attribute grant.
    pub const GRANT_KEYGEN: &str = "grant.keygen";
    /// Secret-key delivery from an authority to the granted user.
    pub const GRANT_DELIVER: &str = "grant.deliver";
    /// Owner upload of a sealed record to the server.
    pub const PUBLISH_STORE: &str = "publish.store";
    /// Server-to-user component download on a read.
    pub const READ_FETCH: &str = "read.fetch";
    /// The authority's `ReKey` step at the start of a revocation.
    pub const REVOKE_REKEY: &str = "revoke.rekey";
    /// Delivery of fresh (attribute-reduced) keys to the revoked user.
    pub const REVOKE_FRESH_KEY: &str = "revoke.fresh_key";
    /// Update-key delivery to a non-revoked holder.
    pub const REVOKE_UPDATE_DELIVER: &str = "revoke.update_deliver";
    /// Update-key delivery to a data owner.
    pub const REVOKE_OWNER_UPDATE: &str = "revoke.owner_update";
    /// Server-side proxy re-encryption of one affected ciphertext.
    pub const REVOKE_REENCRYPT: &str = "revoke.reencrypt";
    /// Composed update-key delivery when an offline user syncs.
    pub const SYNC_DELIVER: &str = "sync.deliver";
}

/// Errors from system-level operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CloudError {
    /// An underlying scheme operation failed.
    Core(Error),
    /// A policy string did not parse.
    Parse(ParsePolicyError),
    /// No such authority in the system.
    UnknownAuthority(AuthorityId),
    /// No such record on the server.
    UnknownRecord(String),
    /// No such component label within the record.
    UnknownComponent(String),
    /// Entity lookup failed.
    UnknownEntity(String),
    /// The authority exists but is unreachable (administratively down or
    /// an injected outage). Transient: retrying may succeed.
    AuthorityUnavailable(AuthorityId),
    /// A storage-layer operation failed. Transient.
    Storage(&'static str),
    /// A transmission was lost in transit (dropped or corrupted) and the
    /// retry budget has not yet absorbed it. Transient.
    Lost {
        /// The fault point where the loss occurred.
        point: &'static str,
    },
    /// A simulated crash fired mid-operation. Fatal for the current call;
    /// journaled state lets [`CloudSystem::recover`] roll forward.
    Crashed {
        /// The fault point where the crash fired.
        point: &'static str,
    },
    /// A transient error persisted through every allowed retry.
    RetriesExhausted {
        /// The operation (fault point) that kept failing.
        op: &'static str,
        /// Attempts performed, including the first.
        attempts: u32,
        /// The last transient error observed.
        last: Box<CloudError>,
    },
}

impl CloudError {
    /// Whether retrying the failed operation could help.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            CloudError::AuthorityUnavailable(_) | CloudError::Storage(_) | CloudError::Lost { .. }
        )
    }

    /// Collapses a [`RetryError`] into a `CloudError`, wrapping exhausted
    /// retries with the operation name and attempt count.
    fn from_retry(op: &'static str, err: RetryError<CloudError>) -> CloudError {
        match err {
            RetryError::Fatal(e) => e,
            RetryError::GaveUp { attempts, last }
            | RetryError::DeadlineExceeded { attempts, last } => CloudError::RetriesExhausted {
                op,
                attempts,
                last: Box::new(last),
            },
        }
    }
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::Core(e) => write!(f, "{e}"),
            CloudError::Parse(e) => write!(f, "{e}"),
            CloudError::UnknownAuthority(a) => write!(f, "unknown authority {a}"),
            CloudError::UnknownRecord(r) => write!(f, "unknown record {r}"),
            CloudError::UnknownComponent(c) => write!(f, "unknown component {c}"),
            CloudError::UnknownEntity(e) => write!(f, "unknown entity {e}"),
            CloudError::AuthorityUnavailable(a) => write!(f, "authority {a} unavailable"),
            CloudError::Storage(p) => write!(f, "storage error at {p}"),
            CloudError::Lost { point } => write!(f, "transmission lost at {point}"),
            CloudError::Crashed { point } => write!(f, "crashed at {point}"),
            CloudError::RetriesExhausted { op, attempts, last } => {
                write!(f, "{op} failed after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for CloudError {}

/// Applies an update key, treating "the key already advanced to (or past)
/// the target version" as success — the idempotency that makes replayed
/// deliveries during crash recovery harmless.
fn apply_update_tolerant(key: &mut UserSecretKey, uk: &UpdateKey) -> Result<(), CloudError> {
    match key.apply_update(uk) {
        Ok(()) => Ok(()),
        Err(Error::VersionMismatch { found, .. }) if found >= uk.to_version => Ok(()),
        Err(e) => Err(e.into()),
    }
}

impl From<Error> for CloudError {
    fn from(e: Error) -> Self {
        CloudError::Core(e)
    }
}

impl From<ParsePolicyError> for CloudError {
    fn from(e: ParsePolicyError) -> Self {
        CloudError::Parse(e)
    }
}

/// Per-user runtime state: the CA-issued public key plus every secret
/// key, slotted by `(owner, authority)`.
#[derive(Debug)]
pub(crate) struct UserState {
    pub(crate) pk: UserPublicKey,
    pub(crate) keys: BTreeMap<(OwnerId, AuthorityId), UserSecretKey>,
}

/// Paper-accounted storage overhead per entity class (Table III).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct StorageReport {
    /// Bytes per attribute authority.
    pub authorities: BTreeMap<AuthorityId, usize>,
    /// Bytes per owner.
    pub owners: BTreeMap<OwnerId, usize>,
    /// Bytes per user.
    pub users: BTreeMap<Uid, usize>,
    /// Bytes on the server.
    pub server: usize,
}

/// The complete simulated deployment.
#[derive(Debug)]
pub struct CloudSystem {
    pub(crate) rng: StdRng,
    pub(crate) ca: CertificateAuthority,
    pub(crate) authorities: BTreeMap<AuthorityId, AttributeAuthority>,
    pub(crate) owners: BTreeMap<OwnerId, DataOwner>,
    pub(crate) users: BTreeMap<Uid, UserState>,
    pub(crate) grants: BTreeMap<Uid, BTreeSet<Attribute>>,
    pub(crate) offline: BTreeSet<Uid>,
    pub(crate) pending_updates: BTreeMap<Uid, Vec<(OwnerId, UpdateKey)>>,
    pub(crate) server: CloudServer,
    pub(crate) wire: Wire,
    pub(crate) audit: AuditLog,
    pub(crate) faults: FaultInjector,
    pub(crate) retry: RetryPolicy,
    /// Jitter draws come from a dedicated stream so fault schedules never
    /// perturb the crypto determinism of `rng`.
    pub(crate) retry_rng: StdRng,
    pub(crate) down: BTreeSet<AuthorityId>,
    pub(crate) in_flight: BTreeMap<u64, PendingRevocation>,
    pub(crate) next_revocation: u64,
}

impl CloudSystem {
    /// Creates an empty system with a deterministic RNG seed and no fault
    /// injection (the production configuration).
    pub fn new(seed: u64) -> Self {
        Self::with_faults(seed, FaultInjector::none())
    }

    /// Creates a system whose instrumented operations consult `faults` —
    /// the entry point for seeded chaos runs.
    pub fn with_faults(seed: u64, faults: FaultInjector) -> Self {
        CloudSystem {
            rng: StdRng::seed_from_u64(seed),
            ca: CertificateAuthority::new(),
            authorities: BTreeMap::new(),
            owners: BTreeMap::new(),
            users: BTreeMap::new(),
            grants: BTreeMap::new(),
            offline: BTreeSet::new(),
            pending_updates: BTreeMap::new(),
            server: CloudServer::new(),
            wire: Wire::new(),
            audit: AuditLog::new(),
            faults,
            retry: RetryPolicy::default(),
            retry_rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            down: BTreeSet::new(),
            in_flight: BTreeMap::new(),
            next_revocation: 0,
        }
    }

    /// Sends one message through the wire under the retry policy,
    /// consulting the fault injector at `point` on every attempt.
    ///
    /// Drops and corruptions burn bandwidth (the lossy transmission is
    /// still byte-accounted) and are retried with backoff; successful
    /// retries are logged as [`Disposition::Retransmit`] so the delivery
    /// report keeps exact counts. Injected duplicates deliver twice.
    /// Storage errors and authority outages at a transmit point are
    /// treated as transient unavailability of the receiving end.
    ///
    /// # Errors
    ///
    /// [`CloudError::Crashed`] on an injected crash,
    /// [`CloudError::RetriesExhausted`] when transient faults outlast the
    /// retry budget.
    fn transmit(
        &mut self,
        point: &'static str,
        from: Endpoint,
        to: Endpoint,
        what: &str,
        bytes: usize,
    ) -> Result<(), CloudError> {
        let Self {
            faults,
            wire,
            retry,
            retry_rng,
            ..
        } = self;
        retry
            .run(
                retry_rng,
                point,
                |attempt| {
                    let ok_disposition = if attempt > 1 {
                        Disposition::Retransmit
                    } else {
                        Disposition::Delivered
                    };
                    match faults.decide(point) {
                        Some(FaultKind::Crash) => Err(CloudError::Crashed { point }),
                        Some(FaultKind::Drop) => {
                            wire.send_with(
                                from.clone(),
                                to.clone(),
                                what,
                                bytes,
                                Disposition::Dropped,
                            );
                            Err(CloudError::Lost { point })
                        }
                        Some(FaultKind::Corrupt) => {
                            wire.send_with(
                                from.clone(),
                                to.clone(),
                                what,
                                bytes,
                                Disposition::Corrupted,
                            );
                            Err(CloudError::Lost { point })
                        }
                        Some(FaultKind::Duplicate) => {
                            wire.send_with(from.clone(), to.clone(), what, bytes, ok_disposition);
                            wire.send_with(
                                from.clone(),
                                to.clone(),
                                what,
                                bytes,
                                Disposition::Duplicate,
                            );
                            Ok(())
                        }
                        Some(
                            FaultKind::StorageError
                            | FaultKind::TornWrite
                            | FaultKind::PartialFlush
                            | FaultKind::ReadCorrupt,
                        ) => Err(CloudError::Storage(point)),
                        Some(FaultKind::AuthorityDown) => Err(CloudError::Lost { point }),
                        Some(FaultKind::Delay) => {
                            mabe_telemetry::global()
                                .counter("mabe_fault_delay_us_total", &[("point", point)])
                                .add(faults.delay_us());
                            wire.send_with(from.clone(), to.clone(), what, bytes, ok_disposition);
                            Ok(())
                        }
                        None => {
                            wire.send_with(from.clone(), to.clone(), what, bytes, ok_disposition);
                            Ok(())
                        }
                    }
                },
                CloudError::is_transient,
            )
            .map_err(|e| CloudError::from_retry(point, e))
    }

    /// Consults the fault injector at a local (non-wire) operation point
    /// under the retry policy. Drop/duplicate/corrupt kinds are
    /// meaningless off the wire and are ignored.
    pub(crate) fn local_op(
        &mut self,
        point: &'static str,
        aid: Option<&AuthorityId>,
    ) -> Result<(), CloudError> {
        let Self {
            faults,
            retry,
            retry_rng,
            ..
        } = self;
        retry
            .run(
                retry_rng,
                point,
                |_| match faults.decide(point) {
                    Some(FaultKind::Crash) => Err(CloudError::Crashed { point }),
                    // The disk-level kinds only shape byte survival inside
                    // mabe-store; on a cloud op they degrade to a transient
                    // storage error.
                    Some(
                        FaultKind::StorageError
                        | FaultKind::TornWrite
                        | FaultKind::PartialFlush
                        | FaultKind::ReadCorrupt,
                    ) => Err(CloudError::Storage(point)),
                    Some(FaultKind::AuthorityDown) => Err(match aid {
                        Some(a) => CloudError::AuthorityUnavailable(a.clone()),
                        None => CloudError::Lost { point },
                    }),
                    Some(FaultKind::Delay) => {
                        mabe_telemetry::global()
                            .counter("mabe_fault_delay_us_total", &[("point", point)])
                            .add(faults.delay_us());
                        Ok(())
                    }
                    Some(FaultKind::Drop)
                    | Some(FaultKind::Duplicate)
                    | Some(FaultKind::Corrupt)
                    | None => Ok(()),
                },
                CloudError::is_transient,
            )
            .map_err(|e| CloudError::from_retry(point, e))
    }

    /// Registers an attribute authority managing `attribute_names`, and
    /// introduces it to every existing owner (SK_o registration plus
    /// public-key download, both byte-accounted).
    ///
    /// # Errors
    ///
    /// Fails if the AID is taken.
    pub fn add_authority(
        &mut self,
        name: &str,
        attribute_names: &[&str],
    ) -> Result<AuthorityId, CloudError> {
        let aid = self.ca.register_authority(name)?;
        let aa = AttributeAuthority::new(aid.clone(), attribute_names, &mut self.rng);
        self.install_authority(aa)
    }

    /// Introduces a (freshly set-up or journal-restored) authority to the
    /// system: every existing owner not already registered with it
    /// exchanges `SK_o`, every owner re-learns its public keys, and the
    /// registration is audited. Factored out of [`Self::add_authority`]
    /// so durable replay installs the serialized post-setup authority
    /// through the exact same path (regenerating identical wire
    /// accounting and audit entries).
    pub(crate) fn install_authority(
        &mut self,
        mut aa: AttributeAuthority,
    ) -> Result<AuthorityId, CloudError> {
        let aid = aa.aid().clone();
        for owner in self.owners.values_mut() {
            if !aa.has_owner(owner.id()) {
                let sk = owner.owner_secret_key();
                self.wire.send(
                    Endpoint::Owner(owner.id().clone()),
                    Endpoint::Authority(aid.clone()),
                    "owner secret key",
                    sk.wire_size(),
                );
                aa.register_owner(sk)?;
            }
            let pks = aa.public_keys();
            self.wire.send(
                Endpoint::Authority(aid.clone()),
                Endpoint::Owner(owner.id().clone()),
                "authority public keys",
                pks.wire_size(),
            );
            owner.learn_authority_keys(pks);
        }
        self.authorities.insert(aid.clone(), aa);
        self.audit.record(AuditEvent::AuthorityAdded {
            aid: aid.to_string(),
        });
        Ok(aid)
    }

    /// Registers a data owner, exchanging `SK_o` / public keys with every
    /// existing authority and issuing this owner's user secret keys to
    /// every already-granted user.
    ///
    /// # Errors
    ///
    /// Fails if the owner id collides.
    pub fn add_owner(&mut self, name: &str) -> Result<OwnerId, CloudError> {
        let id = OwnerId::new(name);
        if self.owners.contains_key(&id) {
            return Err(CloudError::Core(Error::AlreadyRegistered(name.to_owned())));
        }
        let owner = DataOwner::new(id.clone(), &mut self.rng);
        self.install_owner(owner)
    }

    /// Installs a (fresh or journal-restored) owner: exchanges keys with
    /// every authority it is not yet registered with, issues this owner's
    /// user secret keys to every already-granted user, and audits the
    /// registration. The replay twin of [`Self::install_authority`].
    pub(crate) fn install_owner(&mut self, mut owner: DataOwner) -> Result<OwnerId, CloudError> {
        let id = owner.id().clone();
        if self.owners.contains_key(&id) {
            return Err(CloudError::Core(Error::AlreadyRegistered(id.to_string())));
        }
        for (aid, aa) in self.authorities.iter_mut() {
            if !aa.has_owner(&id) {
                let sk = owner.owner_secret_key();
                self.wire.send(
                    Endpoint::Owner(id.clone()),
                    Endpoint::Authority(aid.clone()),
                    "owner secret key",
                    sk.wire_size(),
                );
                aa.register_owner(sk)?;
            }
            let pks = aa.public_keys();
            self.wire.send(
                Endpoint::Authority(aid.clone()),
                Endpoint::Owner(id.clone()),
                "authority public keys",
                pks.wire_size(),
            );
            owner.learn_authority_keys(pks);
        }
        // Existing users need keys scoped to the new owner.
        for (uid, attrs) in &self.grants {
            let state = self.users.get_mut(uid).expect("granted user exists");
            let involved: BTreeSet<&AuthorityId> = attrs.iter().map(|a| a.authority()).collect();
            for aid in involved {
                let aa = self.authorities.get(aid).expect("authority exists");
                let key = aa.keygen(uid, &id)?;
                self.wire.send(
                    Endpoint::Authority(aid.clone()),
                    Endpoint::User(uid.clone()),
                    "user secret key",
                    key.wire_size(),
                );
                state.keys.insert((id.clone(), aid.clone()), key);
            }
        }
        self.owners.insert(id.clone(), owner);
        self.audit.record(AuditEvent::OwnerAdded {
            owner: id.to_string(),
        });
        Ok(id)
    }

    /// Registers a user with the CA.
    ///
    /// # Errors
    ///
    /// Fails if the UID collides.
    pub fn add_user(&mut self, name: &str) -> Result<Uid, CloudError> {
        let pk = self.ca.register_user(name, &mut self.rng)?;
        Ok(self.install_user(pk))
    }

    /// Installs a CA-registered user (fresh or journal-restored): the key
    /// delivery is byte-accounted, runtime state allocated, and the
    /// registration audited.
    pub(crate) fn install_user(&mut self, pk: UserPublicKey) -> Uid {
        let uid = pk.uid.clone();
        self.wire.send(
            Endpoint::Ca,
            Endpoint::User(uid.clone()),
            "uid + public key",
            pk.wire_size(),
        );
        self.users.insert(
            uid.clone(),
            UserState {
                pk,
                keys: BTreeMap::new(),
            },
        );
        self.grants.insert(uid.clone(), BTreeSet::new());
        self.audit.record(AuditEvent::UserAdded {
            uid: uid.to_string(),
        });
        uid
    }

    /// Grants attributes to a user: the relevant authorities record the
    /// grant and issue secret keys scoped to every owner.
    ///
    /// Key generation and delivery run under the retry policy at the
    /// [`fault_points::GRANT_KEYGEN`] / [`fault_points::GRANT_DELIVER`]
    /// fault points; a downed authority fails fast with
    /// [`CloudError::AuthorityUnavailable`].
    ///
    /// # Errors
    ///
    /// Fails on unknown user/authority/attribute, downed authorities, or
    /// unrecovered injected faults.
    pub fn grant(&mut self, uid: &Uid, attributes: &[&str]) -> Result<(), CloudError> {
        let _trace = mabe_trace::Span::child("cloud.grant").detail(uid.to_string());
        if !self.users.contains_key(uid) {
            return Err(CloudError::Core(Error::UnknownUser(uid.clone())));
        }
        let mut by_authority: BTreeMap<AuthorityId, Vec<Attribute>> = BTreeMap::new();
        for raw in attributes {
            let attr: Attribute = raw
                .parse()
                .map_err(|_| CloudError::UnknownEntity(format!("attribute {raw}")))?;
            by_authority
                .entry(attr.authority().clone())
                .or_default()
                .push(attr);
        }
        for (aid, attrs) in by_authority {
            if !self.authorities.contains_key(&aid) {
                return Err(CloudError::UnknownAuthority(aid.clone()));
            }
            if self.down.contains(&aid) {
                return Err(CloudError::AuthorityUnavailable(aid.clone()));
            }
            self.local_op(fault_points::GRANT_KEYGEN, Some(&aid))?;
            {
                let state = self.users.get(uid).expect("checked above");
                let aa = self.authorities.get_mut(&aid).expect("checked above");
                aa.grant(&state.pk, attrs.iter().cloned())?;
            }
            self.grants
                .get_mut(uid)
                .expect("user exists")
                .extend(attrs.iter().cloned());
            let owner_ids: Vec<OwnerId> = self.owners.keys().cloned().collect();
            for owner_id in owner_ids {
                let key = self
                    .authorities
                    .get(&aid)
                    .expect("checked above")
                    .keygen(uid, &owner_id)?;
                self.transmit(
                    fault_points::GRANT_DELIVER,
                    Endpoint::Authority(aid.clone()),
                    Endpoint::User(uid.clone()),
                    "user secret key",
                    key.wire_size(),
                )?;
                self.users
                    .get_mut(uid)
                    .expect("checked above")
                    .keys
                    .insert((owner_id, aid.clone()), key);
            }
        }
        self.audit.record(AuditEvent::Granted {
            uid: uid.to_string(),
            attributes: attributes.iter().map(|a| a.to_string()).collect(),
        });
        Ok(())
    }

    /// Publishes a record: each `(label, data, policy)` component is
    /// sealed (fresh content key, CP-ABE-wrapped) and uploaded.
    ///
    /// # Errors
    ///
    /// Fails on unknown owner, bad policy, or encryption errors.
    pub fn publish(
        &mut self,
        owner_id: &OwnerId,
        record: &str,
        components: &[(&str, &[u8], &str)],
    ) -> Result<(), CloudError> {
        let _span = mabe_telemetry::Span::with_labels("mabe_system_op", &[("op", "publish")]);
        let _trace = mabe_trace::Span::child("cloud.publish").detail(record.to_owned());
        let owner = self
            .owners
            .get_mut(owner_id)
            .ok_or_else(|| CloudError::Core(Error::UnknownOwner(owner_id.clone())))?;
        let policies: Vec<Policy> = components
            .iter()
            .map(|(_, _, p)| parse(p))
            .collect::<Result<_, _>>()?;
        let specs: Vec<(&str, &[u8], &Policy)> = components
            .iter()
            .zip(policies.iter())
            .map(|((label, data, _), policy)| (*label, *data, policy))
            .collect();
        let envelope = seal_envelope(owner, &specs, &mut self.rng)?;
        // The upload consults PUBLISH_STORE: transient storage errors and
        // drops are retried; a crash aborts *before* the store, so a
        // failed publish never leaves a half-written record.
        self.transmit(
            fault_points::PUBLISH_STORE,
            Endpoint::Owner(owner_id.clone()),
            Endpoint::Server,
            &format!("record {record}"),
            envelope.stored_size(),
        )?;
        self.server.store(owner_id.clone(), record, envelope);
        self.audit.record(AuditEvent::Published {
            owner: owner_id.to_string(),
            record: record.to_owned(),
            components: components.iter().map(|(l, _, _)| (*l).to_owned()).collect(),
        });
        Ok(())
    }

    /// A user downloads one component of a record and decrypts it.
    ///
    /// # Errors
    ///
    /// Unknown record/component, or any decryption error (unsatisfied
    /// policy, missing authority key, stale versions).
    pub fn read(
        &mut self,
        uid: &Uid,
        owner_id: &OwnerId,
        record: &str,
        label: &str,
    ) -> Result<Vec<u8>, CloudError> {
        let _span = mabe_telemetry::Span::with_labels("mabe_system_op", &[("op", "read")]);
        let _trace = mabe_trace::Span::child("cloud.read").detail(format!("{record}/{label}"));
        if !self.users.contains_key(uid) {
            return Err(CloudError::Core(Error::UnknownUser(uid.clone())));
        }
        let envelope = self
            .server
            .fetch(owner_id, record)
            .ok_or_else(|| CloudError::UnknownRecord(record.to_owned()))?;
        let component = envelope
            .component(label)
            .ok_or_else(|| CloudError::UnknownComponent(label.to_owned()))?;
        // Reads are server-side only: they keep working while authorities
        // are down (graceful degradation at the last consistent version),
        // and transient download faults are retried at READ_FETCH.
        self.transmit(
            fault_points::READ_FETCH,
            Endpoint::Server,
            Endpoint::User(uid.clone()),
            &format!("component {record}/{label}"),
            component.stored_size(),
        )?;
        let state = self.users.get(uid).expect("checked above");
        let keys: BTreeMap<AuthorityId, UserSecretKey> = state
            .keys
            .iter()
            .filter(|((o, _), _)| o == owner_id)
            .map(|((_, aid), key)| (aid.clone(), key.clone()))
            .collect();
        let result = open_component(component, &state.pk, &keys);
        self.audit.record(AuditEvent::Read {
            uid: uid.to_string(),
            owner: owner_id.to_string(),
            record: record.to_owned(),
            component: label.to_owned(),
            allowed: result.is_ok(),
        });
        Ok(result?)
    }

    /// Like [`Self::read`], but decryption is outsourced: the user sends
    /// a blinded transform key, the **server** runs all pairings and
    /// returns a token, and the user finishes with one `G_T`
    /// exponentiation (the DAC-MACS-style extension in
    /// `mabe_core::outsource`). The server learns nothing: the token
    /// carries the user's `1/z` blinding.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::read`].
    pub fn read_outsourced(
        &mut self,
        uid: &Uid,
        owner_id: &OwnerId,
        record: &str,
        label: &str,
    ) -> Result<Vec<u8>, CloudError> {
        let _span =
            mabe_telemetry::Span::with_labels("mabe_system_op", &[("op", "read_outsourced")]);
        let _trace =
            mabe_trace::Span::child("cloud.read_outsourced").detail(format!("{record}/{label}"));
        let state = self
            .users
            .get(uid)
            .ok_or_else(|| CloudError::Core(Error::UnknownUser(uid.clone())))?;
        let envelope = self
            .server
            .fetch(owner_id, record)
            .ok_or_else(|| CloudError::UnknownRecord(record.to_owned()))?;
        let component = envelope
            .component(label)
            .ok_or_else(|| CloudError::UnknownComponent(label.to_owned()))?;

        let keys: BTreeMap<AuthorityId, UserSecretKey> = state
            .keys
            .iter()
            .filter(|((o, _), _)| o == owner_id)
            .map(|((_, aid), key)| (aid.clone(), key.clone()))
            .collect();
        let (tk, rk) = mabe_core::make_transform_key(&state.pk, &keys, &mut self.rng)?;
        // The blinded key travels to the server (same element count as
        // the underlying secret keys plus the blinded PK).
        let tk_bytes: usize =
            keys.values().map(UserSecretKey::wire_size).sum::<usize>() + mabe_core::G_BYTES;
        self.wire.send(
            Endpoint::User(uid.clone()),
            Endpoint::Server,
            "transform key",
            tk_bytes,
        );
        let token = mabe_core::server_transform(&component.key_ct, &tk)?;
        // Only the 128-byte token comes back — not the ciphertext.
        self.wire.send(
            Endpoint::Server,
            Endpoint::User(uid.clone()),
            format!("transform token {record}/{label}"),
            mabe_core::GT_BYTES + component.sealed.len() + component.nonce.len(),
        );
        let kem = mabe_core::client_recover(&component.key_ct, &token, &rk);
        let result = mabe_core::open_component_with_kem(component, &kem);
        self.audit.record(AuditEvent::Read {
            uid: uid.to_string(),
            owner: owner_id.to_string(),
            record: record.to_owned(),
            component: label.to_owned(),
            allowed: result.is_ok(),
        });
        Ok(result?)
    }

    /// Revokes one attribute from one user, running the full two-phase
    /// protocol: the authority re-keys, the intent is journaled to the
    /// audit log, then fresh keys flow to the revoked user, update keys
    /// to every other holder and every owner, and the server
    /// re-encrypts every affected ciphertext.
    ///
    /// A crash mid-flight leaves a journaled [`PendingRevocation`] that
    /// [`Self::recover`] rolls forward; every step is idempotent under
    /// replay.
    ///
    /// # Errors
    ///
    /// Unknown user/authority, the user not holding the attribute, a
    /// downed authority, or an unrecovered injected fault.
    pub fn revoke(&mut self, uid: &Uid, attribute: &str) -> Result<(), CloudError> {
        // End-to-end revocation latency: ReKey at the authority through
        // the last server-side re-encryption.
        let _e2e = mabe_telemetry::Span::start("mabe_revocation_e2e");
        let _trace = mabe_trace::Span::child("cloud.revoke").detail(format!("{uid} {attribute}"));
        let attr: Attribute = attribute
            .parse()
            .map_err(|_| CloudError::UnknownEntity(format!("attribute {attribute}")))?;
        let aid = attr.authority().clone();
        self.precheck_revocation(&aid)?;
        let aa = self.authorities.get_mut(&aid).expect("prechecked");
        let event = aa.revoke_attribute(uid, &attr, &mut self.rng)?;
        let id = self.begin_revocation(event);
        self.drive_revocation(id, false)
    }

    /// User-level revocation at one authority: strips all of the user's
    /// attributes from that domain in a single version bump. Same
    /// two-phase, crash-safe machinery as [`Self::revoke`].
    ///
    /// # Errors
    ///
    /// Unknown user/authority, no attributes held there, a downed
    /// authority, or an unrecovered injected fault.
    pub fn revoke_user_at(&mut self, uid: &Uid, aid: &AuthorityId) -> Result<(), CloudError> {
        let _e2e = mabe_telemetry::Span::start("mabe_revocation_e2e");
        let _trace =
            mabe_trace::Span::child("cloud.revoke_user_at").detail(format!("{uid} @{aid}"));
        self.precheck_revocation(aid)?;
        let aa = self.authorities.get_mut(aid).expect("prechecked");
        let event = aa.revoke_user(uid, &mut self.rng)?;
        let id = self.begin_revocation(event);
        self.drive_revocation(id, false)
    }

    /// Gates a revocation: the authority must exist, be reachable, pass
    /// the [`fault_points::REVOKE_REKEY`] fault point, and have no
    /// in-flight revocation (versions chain, so revocations at one
    /// authority serialize — any crashed predecessor is driven to
    /// completion first).
    pub(crate) fn precheck_revocation(&mut self, aid: &AuthorityId) -> Result<(), CloudError> {
        if !self.authorities.contains_key(aid) {
            return Err(CloudError::UnknownAuthority(aid.clone()));
        }
        if self.down.contains(aid) {
            return Err(CloudError::AuthorityUnavailable(aid.clone()));
        }
        self.local_op(fault_points::REVOKE_REKEY, Some(aid))?;
        let stalled: Vec<u64> = self
            .in_flight
            .iter()
            .filter(|(_, p)| &p.event.aid == aid)
            .map(|(id, _)| *id)
            .collect();
        for id in stalled {
            self.drive_revocation(id, true)?;
        }
        Ok(())
    }

    /// Journals the intent of a revocation (audit `RevocationBegun` +
    /// `Revoked`), removes the revoked grants, purges now-stale queued
    /// update keys for the revoked user at that authority, and parks the
    /// event as a [`PendingRevocation`]. Returns the journal id.
    pub(crate) fn begin_revocation(&mut self, event: mabe_core::RevocationEvent) -> u64 {
        let id = self.next_revocation;
        self.next_revocation += 1;
        let aid = event.aid.clone();
        let uid = event.revoked_uid.clone();
        self.audit.record(AuditEvent::RevocationBegun {
            uid: uid.to_string(),
            aid: aid.to_string(),
            from_version: event.from_version,
            to_version: event.to_version,
        });
        self.audit.record(AuditEvent::Revoked {
            uid: uid.to_string(),
            attributes: event
                .revoked_attributes
                .iter()
                .map(|a| a.to_string())
                .collect(),
            aid: aid.to_string(),
            new_version: event.to_version,
        });
        if let Some(grants) = self.grants.get_mut(&uid) {
            for attr in &event.revoked_attributes {
                grants.remove(attr);
            }
        }
        // Update keys still queued for the revoked user at this authority
        // are superseded by the fresh reduced keys (already at the new
        // version): replaying them on sync would only fail. Purge them so
        // an offline revoked user syncs cleanly.
        if let Some(queue) = self.pending_updates.get_mut(&uid) {
            let before = queue.len();
            queue.retain(|(_, uk)| uk.aid != aid);
            let purged = (before - queue.len()) as u64;
            if purged > 0 {
                mabe_telemetry::global()
                    .counter("mabe_stale_update_keys_dropped_total", &[("op", "revoke")])
                    .add(purged);
            }
        }
        self.in_flight.insert(id, PendingRevocation::new(id, event));
        mabe_trace::event(mabe_trace::TraceEvent::RevocationPhase { stage: "begun" });
        id
    }

    /// Drives one journaled revocation to completion. On success the
    /// audit log gains `RevocationCompleted` (plus `RevocationRecovered`
    /// when `recovered`); on failure the pending entry is re-parked with
    /// its checkpoints intact so a later drive resumes, not restarts.
    pub(crate) fn drive_revocation(&mut self, id: u64, recovered: bool) -> Result<(), CloudError> {
        let Some(mut pending) = self.in_flight.remove(&id) else {
            return Ok(());
        };
        match self.drive_phases(&mut pending) {
            Ok(()) => {
                self.audit.record(AuditEvent::RevocationCompleted {
                    aid: pending.event.aid.to_string(),
                    version: pending.event.to_version,
                });
                mabe_trace::event(mabe_trace::TraceEvent::RevocationPhase { stage: "complete" });
                if recovered {
                    self.audit.record(AuditEvent::RevocationRecovered {
                        aid: pending.event.aid.to_string(),
                        version: pending.event.to_version,
                    });
                    mabe_telemetry::global()
                        .counter("mabe_revocations_recovered_total", &[])
                        .inc();
                    mabe_trace::event(mabe_trace::TraceEvent::RevocationPhase {
                        stage: "recovered",
                    });
                }
                Ok(())
            }
            Err(e) => {
                self.in_flight.insert(id, pending);
                Err(e)
            }
        }
    }

    fn drive_phases(&mut self, pending: &mut PendingRevocation) -> Result<(), CloudError> {
        if pending.stage == RevocationStage::KeyDelivery {
            mabe_trace::event(mabe_trace::TraceEvent::RevocationPhase {
                stage: "key_delivery",
            });
            self.deliver_keys(pending)?;
            pending.stage = RevocationStage::ReEncryption;
        }
        mabe_trace::event(mabe_trace::TraceEvent::RevocationPhase {
            stage: "re_encryption",
        });
        self.reencrypt_phase(pending)
    }

    /// Phase 1: fresh reduced keys to the revoked user (delivered eagerly
    /// even if offline — the old keys must die), then update keys to
    /// every other holder (queued for offline holders). Checkpointed per
    /// holder; key application is version-tolerant, so replays after a
    /// crash are no-ops.
    fn deliver_keys(&mut self, pending: &mut PendingRevocation) -> Result<(), CloudError> {
        let _trace =
            mabe_trace::Span::child("cloud.deliver_keys").detail(format!("@{}", pending.event.aid));
        let aid = pending.event.aid.clone();
        let uid = pending.event.revoked_uid.clone();
        if !pending.fresh_keys_delivered {
            if self.users.contains_key(&uid) {
                let fresh: Vec<(OwnerId, UserSecretKey)> = pending
                    .event
                    .revoked_user_keys
                    .iter()
                    .map(|(o, k)| (o.clone(), k.clone()))
                    .collect();
                for (owner_id, key) in fresh {
                    self.transmit(
                        fault_points::REVOKE_FRESH_KEY,
                        Endpoint::Authority(aid.clone()),
                        Endpoint::User(uid.clone()),
                        "re-issued secret key",
                        key.wire_size(),
                    )?;
                    self.users
                        .get_mut(&uid)
                        .expect("checked above")
                        .keys
                        .insert((owner_id, aid.clone()), key);
                }
            }
            pending.fresh_keys_delivered = true;
        }
        let holders: Vec<Uid> = self
            .grants
            .iter()
            .filter(|(holder, attrs)| {
                **holder != uid && attrs.iter().any(|a| a.authority() == &aid)
            })
            .map(|(holder, _)| holder.clone())
            .collect();
        for holder in holders {
            if pending.delivered_holders.contains(&holder) {
                continue;
            }
            if self.offline.contains(&holder) {
                let queue = self.pending_updates.entry(holder.clone()).or_default();
                for (owner_id, uk) in &pending.event.update_keys {
                    queue.push((owner_id.clone(), uk.clone()));
                }
                pending.delivered_holders.insert(holder);
                continue;
            }
            let slots: Vec<(OwnerId, UpdateKey)> = pending
                .event
                .update_keys
                .iter()
                .filter(|(owner_id, _)| {
                    self.users
                        .get(&holder)
                        .is_some_and(|s| s.keys.contains_key(&((*owner_id).clone(), aid.clone())))
                })
                .map(|(o, uk)| (o.clone(), uk.clone()))
                .collect();
            for (owner_id, uk) in slots {
                self.transmit(
                    fault_points::REVOKE_UPDATE_DELIVER,
                    Endpoint::Authority(aid.clone()),
                    Endpoint::User(holder.clone()),
                    "update key",
                    uk.wire_size(),
                )?;
                let state = self.users.get_mut(&holder).expect("holder exists");
                let key = state
                    .keys
                    .get_mut(&(owner_id, aid.clone()))
                    .expect("filtered above");
                apply_update_tolerant(key, &uk)?;
            }
            pending.delivered_holders.insert(holder);
        }
        Ok(())
    }

    /// Phase 2: owners apply their update keys (checkpointed), then the
    /// server re-encrypts every affected ciphertext. The worklist comes
    /// from [`CloudServer::affected_ciphertexts`], which only returns
    /// components still at the old version — replaying a half-finished
    /// phase naturally skips what is already done.
    fn reencrypt_phase(&mut self, pending: &mut PendingRevocation) -> Result<(), CloudError> {
        let _trace = mabe_trace::Span::child("cloud.reencrypt_phase")
            .detail(format!("@{}", pending.event.aid));
        let aid = pending.event.aid.clone();
        let owner_ids: Vec<OwnerId> = self.owners.keys().cloned().collect();
        for owner_id in owner_ids {
            let Some(uk) = pending.event.update_keys.get(&owner_id).cloned() else {
                continue;
            };
            if !pending.updated_owners.contains(&owner_id) {
                self.transmit(
                    fault_points::REVOKE_OWNER_UPDATE,
                    Endpoint::Authority(aid.clone()),
                    Endpoint::Owner(owner_id.clone()),
                    "update key",
                    uk.wire_size(),
                )?;
                let owner = self.owners.get_mut(&owner_id).expect("owner exists");
                match owner.apply_update_key(&uk) {
                    Ok(()) => {}
                    Err(Error::VersionMismatch { found, .. }) if found >= uk.to_version => {}
                    Err(e) => return Err(e.into()),
                }
                pending.updated_owners.insert(owner_id.clone());
            }
            let affected =
                self.server
                    .affected_ciphertexts(&owner_id, &aid, pending.event.from_version);
            for (record_key, label, ct_id) in affected {
                let _trace = mabe_trace::Span::child("cloud.reencrypt")
                    .detail(format!("{}/{}/{label}", record_key.0, record_key.1));
                self.local_op(fault_points::REVOKE_REENCRYPT, None)?;
                let owner = self.owners.get(&owner_id).expect("owner exists");
                let ui = owner.update_info_for(
                    ct_id,
                    &aid,
                    pending.event.from_version,
                    pending.event.to_version,
                )?;
                self.wire.send(
                    Endpoint::Owner(owner_id.clone()),
                    Endpoint::Server,
                    "update key + update info",
                    uk.wire_size() + ui.wire_size(),
                );
                self.server
                    .reencrypt_component(&record_key, &label, &uk, &ui)?;
            }
        }
        Ok(())
    }

    /// Rolls every journaled in-flight revocation forward to completion
    /// (crash recovery). Returns how many revocations converged. Partial
    /// progress is retained on failure, so calling `recover` again after
    /// clearing the fault continues where it stopped.
    ///
    /// # Errors
    ///
    /// Propagates the first fault that still blocks convergence.
    pub fn recover(&mut self) -> Result<usize, CloudError> {
        let _trace = mabe_trace::Span::child("cloud.recover");
        let ids: Vec<u64> = self.in_flight.keys().copied().collect();
        let mut completed = 0;
        for id in ids {
            self.drive_revocation(id, true)?;
            completed += 1;
        }
        Ok(completed)
    }

    /// Whether any revocation is journaled but not yet converged.
    pub fn needs_recovery(&self) -> bool {
        !self.in_flight.is_empty()
    }

    /// Progress summaries of every in-flight revocation.
    pub fn pending_revocations(&self) -> Vec<String> {
        self.in_flight
            .values()
            .map(PendingRevocation::progress)
            .collect()
    }

    /// Marks an authority unreachable: grants and revocations against it
    /// fail with [`CloudError::AuthorityUnavailable`], while reads keep
    /// serving the last consistent version (graceful degradation).
    pub fn set_authority_down(&mut self, aid: &AuthorityId) {
        self.down.insert(aid.clone());
    }

    /// Brings a downed authority back.
    pub fn set_authority_up(&mut self, aid: &AuthorityId) {
        self.down.remove(aid);
    }

    /// Whether an authority is currently marked down.
    pub fn authority_is_down(&self, aid: &AuthorityId) -> bool {
        self.down.contains(aid)
    }

    /// Full user-level revocation: runs [`Self::revoke_user_at`] against
    /// every authority where the user currently holds attributes.
    ///
    /// # Errors
    ///
    /// Unknown user; propagates per-authority failures.
    pub fn revoke_user(&mut self, uid: &Uid) -> Result<(), CloudError> {
        let involved: Vec<AuthorityId> = self
            .grants
            .get(uid)
            .ok_or_else(|| CloudError::Core(Error::UnknownUser(uid.clone())))?
            .iter()
            .map(|a| a.authority().clone())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        for aid in involved {
            self.revoke_user_at(uid, &aid)?;
        }
        Ok(())
    }

    /// Marks a user offline: update keys queue up instead of being
    /// applied (the paper sends `UK` to all non-revoked users; offline
    /// ones catch up later via [`Self::sync_user`]).
    pub fn set_offline(&mut self, uid: &Uid) {
        self.offline.insert(uid.clone());
    }

    /// Brings a user back online and replays any queued update keys.
    /// Consecutive updates per `(owner, authority)` are **composed**
    /// into one compact key first ([`mabe_core::UpdateKey::compose`]),
    /// so a user offline through `n` revocations downloads one update
    /// key per authority, not `n`.
    ///
    /// Queued updates the user's key has already moved past — e.g. the
    /// fresh reduced keys delivered when the user was revoked while
    /// offline land at the *new* version — are dropped, not replayed, so
    /// syncing never resurrects stale key material. Delivery runs at the
    /// [`fault_points::SYNC_DELIVER`] fault point; on failure the
    /// undelivered remainder is re-queued so a later sync resumes.
    ///
    /// # Errors
    ///
    /// Propagates key-update failures (e.g. corrupted queues) and
    /// unrecovered injected faults.
    pub fn sync_user(&mut self, uid: &Uid) -> Result<(), CloudError> {
        let _trace = mabe_trace::Span::child("cloud.sync_user").detail(uid.to_string());
        self.offline.remove(uid);
        let Some(queue) = self.pending_updates.remove(uid) else {
            return Ok(());
        };
        let versions: BTreeMap<(OwnerId, AuthorityId), u64> = self
            .users
            .get(uid)
            .ok_or_else(|| CloudError::Core(Error::UnknownUser(uid.clone())))?
            .keys
            .iter()
            .map(|(slot, key)| (slot.clone(), key.version))
            .collect();
        // Compact chains per (owner, authority), dropping entries the
        // key has already advanced past.
        let mut compacted: BTreeMap<(OwnerId, AuthorityId), UpdateKey> = BTreeMap::new();
        let mut stale = 0u64;
        for (owner_id, uk) in queue {
            let slot = (owner_id, uk.aid.clone());
            let current = versions.get(&slot).copied().unwrap_or(0);
            if uk.from_version < current {
                stale += 1;
                continue;
            }
            match compacted.remove(&slot) {
                Some(prev) => {
                    compacted.insert(slot, prev.compose(&uk)?);
                }
                None => {
                    compacted.insert(slot, uk);
                }
            }
        }
        if stale > 0 {
            mabe_telemetry::global()
                .counter("mabe_stale_update_keys_dropped_total", &[("op", "sync")])
                .add(stale);
        }
        let work: Vec<((OwnerId, AuthorityId), UpdateKey)> = compacted.into_iter().collect();
        for (i, (slot, uk)) in work.iter().enumerate() {
            if let Err(e) = self.transmit(
                fault_points::SYNC_DELIVER,
                Endpoint::Authority(slot.1.clone()),
                Endpoint::User(uid.clone()),
                "composed deferred update key",
                uk.wire_size(),
            ) {
                // Crash-safety: re-queue the undelivered remainder so the
                // next sync picks up exactly where this one stopped.
                let requeue: Vec<(OwnerId, UpdateKey)> = work[i..]
                    .iter()
                    .map(|((owner_id, _), uk)| (owner_id.clone(), uk.clone()))
                    .collect();
                self.pending_updates.insert(uid.clone(), requeue);
                return Err(e);
            }
            let state = self.users.get_mut(uid).expect("checked above");
            if let Some(key) = state.keys.get_mut(slot) {
                apply_update_tolerant(key, uk)?;
            }
        }
        Ok(())
    }

    /// The byte-accounted transport log.
    pub fn wire(&self) -> &Wire {
        &self.wire
    }

    /// The tamper-evident audit trail of every system operation.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Resets communication accounting (e.g. between experiment phases).
    pub fn reset_wire(&mut self) {
        self.wire.reset();
    }

    /// The fault injector (inspect the injection log, hit counters).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Mutable access to the fault injector (arm/disarm mid-run, e.g. to
    /// clear chaos before asserting convergence).
    pub fn faults_mut(&mut self) -> &mut FaultInjector {
        &mut self.faults
    }

    /// The retry policy applied to instrumented operations.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Replaces the retry policy (e.g. `RetryPolicy::none()` to surface
    /// every transient fault).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// JSON snapshot of the global telemetry registry: crypto-op
    /// counters, per-pair wire bytes, and latency histograms
    /// (encrypt/decrypt/re-encrypt, server ops, revocation end-to-end).
    pub fn metrics_snapshot(&self) -> String {
        mabe_telemetry::global().snapshot_json()
    }

    /// Prometheus text exposition of the same registry.
    pub fn metrics_prometheus(&self) -> String {
        mabe_telemetry::global().prometheus()
    }

    /// The cloud server.
    pub fn server(&self) -> &CloudServer {
        &self.server
    }

    /// Current key version of an authority.
    pub fn authority_version(&self, aid: &AuthorityId) -> Option<u64> {
        self.authorities.get(aid).map(|a| a.version())
    }

    /// Paper-accounted storage overhead per entity (Table III).
    pub fn storage_report(&self) -> StorageReport {
        StorageReport {
            authorities: self
                .authorities
                .keys()
                .map(|aid| (aid.clone(), ZP_BYTES))
                .collect(),
            owners: self
                .owners
                .iter()
                .map(|(id, o)| (id.clone(), o.storage_size()))
                .collect(),
            users: self
                .users
                .iter()
                .map(|(uid, s)| {
                    (
                        uid.clone(),
                        s.keys.values().map(UserSecretKey::wire_size).sum(),
                    )
                })
                .collect(),
            server: self.server.storage_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::PairClass;

    /// Populates the paper's running example in an existing system: a
    /// medical authority and a clinical-trial authority, one hospital
    /// owner, three users.
    fn medical_world(sys: &mut CloudSystem) -> (Uid, Uid, Uid, OwnerId) {
        sys.add_authority("MedOrg", &["Doctor", "Nurse"]).unwrap();
        sys.add_authority("Trial", &["Researcher", "Sponsor"])
            .unwrap();
        let owner = sys.add_owner("hospital").unwrap();
        let alice = sys.add_user("alice").unwrap();
        let bob = sys.add_user("bob").unwrap();
        let carol = sys.add_user("carol").unwrap();
        sys.grant(&alice, &["Doctor@MedOrg", "Researcher@Trial"])
            .unwrap();
        sys.grant(&bob, &["Doctor@MedOrg", "Sponsor@Trial"])
            .unwrap();
        sys.grant(&carol, &["Nurse@MedOrg", "Researcher@Trial"])
            .unwrap();
        (alice, bob, carol, owner)
    }

    fn medical_system() -> (CloudSystem, Uid, Uid, Uid, OwnerId) {
        let mut sys = CloudSystem::new(42);
        let (alice, bob, carol, owner) = medical_world(&mut sys);
        (sys, alice, bob, carol, owner)
    }

    #[test]
    fn end_to_end_publish_and_read() {
        let (mut sys, alice, bob, carol, owner) = medical_system();
        sys.publish(
            &owner,
            "patient-7",
            &[
                ("diagnosis", b"flu".as_slice(), "Doctor@MedOrg"),
                (
                    "trial-data",
                    b"cohort A".as_slice(),
                    "Doctor@MedOrg AND Researcher@Trial",
                ),
            ],
        )
        .unwrap();

        // Alice (Doctor+Researcher) reads both.
        assert_eq!(
            sys.read(&alice, &owner, "patient-7", "diagnosis").unwrap(),
            b"flu"
        );
        assert_eq!(
            sys.read(&alice, &owner, "patient-7", "trial-data").unwrap(),
            b"cohort A"
        );
        // Bob (Doctor+Sponsor) reads diagnosis only.
        assert_eq!(
            sys.read(&bob, &owner, "patient-7", "diagnosis").unwrap(),
            b"flu"
        );
        assert!(sys.read(&bob, &owner, "patient-7", "trial-data").is_err());
        // Carol (Nurse+Researcher) reads neither.
        assert!(sys.read(&carol, &owner, "patient-7", "diagnosis").is_err());
        assert!(sys.read(&carol, &owner, "patient-7", "trial-data").is_err());
    }

    #[test]
    fn revocation_lifecycle_through_the_system() {
        let (mut sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(
            &owner,
            "rec",
            &[("x", b"secret".as_slice(), "Doctor@MedOrg")],
        )
        .unwrap();
        assert_eq!(sys.read(&alice, &owner, "rec", "x").unwrap(), b"secret");
        assert_eq!(sys.read(&bob, &owner, "rec", "x").unwrap(), b"secret");

        // Revoke Alice's Doctor attribute.
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        assert_eq!(sys.authority_version(&AuthorityId::new("MedOrg")), Some(2));

        // Alice can no longer read; Bob still can (keys auto-updated).
        assert!(sys.read(&alice, &owner, "rec", "x").is_err());
        assert_eq!(sys.read(&bob, &owner, "rec", "x").unwrap(), b"secret");

        // New publications under the new version behave the same.
        sys.publish(
            &owner,
            "rec2",
            &[("y", b"fresh".as_slice(), "Doctor@MedOrg")],
        )
        .unwrap();
        assert!(sys.read(&alice, &owner, "rec2", "y").is_err());
        assert_eq!(sys.read(&bob, &owner, "rec2", "y").unwrap(), b"fresh");

        // A user who joins after the revocation can read the old record.
        let dave = sys.add_user("dave").unwrap();
        sys.grant(&dave, &["Doctor@MedOrg"]).unwrap();
        assert_eq!(sys.read(&dave, &owner, "rec", "x").unwrap(), b"secret");
    }

    #[test]
    fn late_owner_gets_keys_flowing() {
        let (mut sys, alice, _bob, _carol, _owner) = medical_system();
        let clinic = sys.add_owner("clinic").unwrap();
        sys.publish(
            &clinic,
            "c-rec",
            &[("n", b"note".as_slice(), "Doctor@MedOrg")],
        )
        .unwrap();
        assert_eq!(sys.read(&alice, &clinic, "c-rec", "n").unwrap(), b"note");
    }

    #[test]
    fn wire_accounting_accumulates_per_pair() {
        let (mut sys, alice, _bob, _carol, owner) = medical_system();
        sys.publish(&owner, "r", &[("x", b"d".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        sys.read(&alice, &owner, "r", "x").unwrap();
        let report = sys.wire().report();
        assert!(report[&PairClass::AuthorityUser] > 0, "secret keys flowed");
        assert!(report[&PairClass::AuthorityOwner] > 0, "public keys flowed");
        assert!(report[&PairClass::ServerOwner] > 0, "upload flowed");
        assert!(report[&PairClass::ServerUser] > 0, "download flowed");
    }

    #[test]
    fn storage_report_covers_all_entities() {
        let (sys, _alice, _bob, _carol, owner) = medical_system();
        let report = sys.storage_report();
        assert_eq!(report.authorities.len(), 2);
        // Authority stores only its version key.
        assert!(report.authorities.values().all(|&b| b == ZP_BYTES));
        assert!(report.owners[&owner] > 0);
        assert_eq!(report.users.len(), 3);
        assert!(report.users.values().all(|&b| b > 0));
    }

    #[test]
    fn unknown_lookups_error() {
        let (mut sys, alice, _bob, _carol, owner) = medical_system();
        assert!(matches!(
            sys.read(&alice, &owner, "nope", "x"),
            Err(CloudError::UnknownRecord(_))
        ));
        sys.publish(&owner, "r", &[("x", b"d".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        assert!(matches!(
            sys.read(&alice, &owner, "r", "nope"),
            Err(CloudError::UnknownComponent(_))
        ));
        assert!(matches!(
            sys.grant(&Uid::new("ghost"), &["Doctor@MedOrg"]),
            Err(CloudError::Core(Error::UnknownUser(_)))
        ));
        assert!(matches!(
            sys.revoke(&alice, "Doctor@Nowhere"),
            Err(CloudError::UnknownAuthority(_))
        ));
        assert!(matches!(
            sys.publish(&owner, "bad", &[("x", b"d".as_slice(), "not a policy !!")]),
            Err(CloudError::Parse(_))
        ));
    }

    #[test]
    fn revocation_reencrypts_every_owners_ciphertexts() {
        let (mut sys, alice, bob, _carol, hospital) = medical_system();
        let clinic = sys.add_owner("clinic").unwrap();
        sys.publish(
            &hospital,
            "h-rec",
            &[("x", b"h".as_slice(), "Doctor@MedOrg")],
        )
        .unwrap();
        sys.publish(&clinic, "c-rec", &[("x", b"c".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        assert!(sys.read(&alice, &hospital, "h-rec", "x").is_ok());
        assert!(sys.read(&alice, &clinic, "c-rec", "x").is_ok());

        // One revocation at MedOrg must re-encrypt records of BOTH
        // owners (per-owner update keys, per-owner update info).
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        assert!(sys.read(&alice, &hospital, "h-rec", "x").is_err());
        assert!(sys.read(&alice, &clinic, "c-rec", "x").is_err());
        assert_eq!(sys.read(&bob, &hospital, "h-rec", "x").unwrap(), b"h");
        assert_eq!(sys.read(&bob, &clinic, "c-rec", "x").unwrap(), b"c");
    }

    #[test]
    fn outsourced_read_matches_direct_read() {
        let (mut sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(
            &owner,
            "r",
            &[(
                "x",
                b"outsource me".as_slice(),
                "Doctor@MedOrg AND Researcher@Trial",
            )],
        )
        .unwrap();
        assert_eq!(sys.read(&alice, &owner, "r", "x").unwrap(), b"outsource me");
        assert_eq!(
            sys.read_outsourced(&alice, &owner, "r", "x").unwrap(),
            b"outsource me"
        );
        // Unauthorized user fails identically on both paths.
        assert!(sys.read(&bob, &owner, "r", "x").is_err());
        assert!(sys.read_outsourced(&bob, &owner, "r", "x").is_err());
        // The outsourced path also survives a revocation + key update.
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        assert!(sys.read_outsourced(&alice, &owner, "r", "x").is_err());
    }

    #[test]
    fn audit_trail_records_lifecycle() {
        let (mut sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(&owner, "r", &[("x", b"v".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        let _ = sys.read(&alice, &owner, "r", "x");
        let _ = sys.read(&bob, &owner, "r", "x");
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        let _ = sys.read(&alice, &owner, "r", "x"); // denied

        let audit = sys.audit();
        assert!(audit.verify(), "hash chain intact");
        // 2 AAs + 1 owner + 3 users + 3 grants + 1 publish + 3 reads +
        // 3 for the revocation (begun + revoked + completed) = 16.
        assert_eq!(audit.entries().len(), 16);
        assert!(audit.incomplete_revocations().is_empty());
        assert_eq!(audit.denials().count(), 1);
        assert!(audit.for_user("alice").count() >= 4);
        // The denial is alice's post-revocation read.
        let denial = audit.denials().next().unwrap();
        assert!(denial.event.to_string().contains("alice"));
    }

    #[test]
    fn user_level_revocation() {
        let (mut sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(
            &owner,
            "r",
            &[
                ("med", b"m".as_slice(), "Doctor@MedOrg"),
                ("trial", b"t".as_slice(), "Researcher@Trial"),
            ],
        )
        .unwrap();
        assert!(sys.read(&alice, &owner, "r", "med").is_ok());
        assert!(sys.read(&alice, &owner, "r", "trial").is_ok());

        // Wipe Alice everywhere in one call: MedOrg and Trial each bump
        // exactly once regardless of how many attributes she held.
        sys.revoke_user(&alice).unwrap();
        assert_eq!(sys.authority_version(&AuthorityId::new("MedOrg")), Some(2));
        assert_eq!(sys.authority_version(&AuthorityId::new("Trial")), Some(2));
        assert!(sys.read(&alice, &owner, "r", "med").is_err());
        assert!(sys.read(&alice, &owner, "r", "trial").is_err());
        // Bob unaffected.
        assert!(sys.read(&bob, &owner, "r", "med").is_ok());
        // Re-revoking an attribute-less user fails.
        assert!(
            sys.revoke_user(&alice).is_ok(),
            "no-op: no authorities involved"
        );
        assert!(sys
            .revoke_user_at(&alice, &AuthorityId::new("MedOrg"))
            .is_err());
    }

    #[test]
    fn offline_user_catches_up_with_queued_update_keys() {
        let (mut sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(&owner, "r", &[("x", b"v".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        assert!(sys.read(&bob, &owner, "r", "x").is_ok());

        // Bob goes offline; two revocations happen (two version bumps).
        sys.set_offline(&bob);
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        let dave = sys.add_user("dave").unwrap();
        sys.grant(&dave, &["Doctor@MedOrg"]).unwrap();
        sys.revoke(&dave, "Doctor@MedOrg").unwrap();
        assert_eq!(sys.authority_version(&AuthorityId::new("MedOrg")), Some(3));

        // Bob's keys are two versions stale: reads fail cleanly.
        assert!(sys.read(&bob, &owner, "r", "x").is_err());

        // Coming back online replays the queued UK chain in order.
        sys.sync_user(&bob).unwrap();
        assert_eq!(sys.read(&bob, &owner, "r", "x").unwrap(), b"v");

        // Syncing an already-synced user is a no-op.
        sys.sync_user(&bob).unwrap();
        assert_eq!(sys.read(&bob, &owner, "r", "x").unwrap(), b"v");
    }

    #[test]
    fn metrics_exports_cover_the_lifecycle() {
        let (mut sys, alice, _bob, _carol, owner) = medical_system();
        sys.publish(&owner, "r", &[("x", b"v".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        sys.read(&alice, &owner, "r", "x").unwrap();
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();

        let json = sys.metrics_snapshot();
        for series in [
            "mabe_encrypt_latency_us",
            "mabe_decrypt_latency_us",
            "mabe_reencrypt_latency_us",
            "mabe_revocation_e2e_latency_us",
            "mabe_system_op_latency_us",
            "mabe_server_op_latency_us",
            "mabe_wire_bytes_total",
            "mabe_crypto_ops_total",
        ] {
            assert!(
                json.contains(series),
                "JSON snapshot missing {series}: {json}"
            );
        }

        let prom = sys.metrics_prometheus();
        assert!(prom.contains("# TYPE mabe_wire_bytes_total counter"));
        assert!(prom.contains("# TYPE mabe_revocation_e2e_latency_us histogram"));
        assert!(prom.contains(r#"pair="authority_user""#));
    }

    #[test]
    fn multiple_revocations_chain_versions() {
        let (mut sys, alice, bob, carol, owner) = medical_system();
        sys.publish(
            &owner,
            "r",
            &[("x", b"v".as_slice(), "Nurse@MedOrg OR Doctor@MedOrg")],
        )
        .unwrap();
        assert_eq!(sys.read(&carol, &owner, "r", "x").unwrap(), b"v");

        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        sys.revoke(&carol, "Nurse@MedOrg").unwrap();
        assert_eq!(sys.authority_version(&AuthorityId::new("MedOrg")), Some(3));

        // Bob still reads after two re-encryptions.
        assert_eq!(sys.read(&bob, &owner, "r", "x").unwrap(), b"v");
        // Carol lost access.
        assert!(sys.read(&carol, &owner, "r", "x").is_err());
    }

    #[test]
    fn authority_outage_blocks_control_plane_not_reads() {
        let (mut sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(&owner, "r", &[("x", b"v".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        let med = AuthorityId::new("MedOrg");
        sys.set_authority_down(&med);
        assert!(sys.authority_is_down(&med));
        // Control-plane operations against the downed authority fail...
        assert!(matches!(
            sys.revoke(&alice, "Doctor@MedOrg"),
            Err(CloudError::AuthorityUnavailable(_))
        ));
        assert!(matches!(
            sys.grant(&bob, &["Nurse@MedOrg"]),
            Err(CloudError::AuthorityUnavailable(_))
        ));
        // ...but the data plane still serves the last consistent version.
        assert_eq!(sys.read(&alice, &owner, "r", "x").unwrap(), b"v");
        // Back up, the revocation goes through.
        sys.set_authority_up(&med);
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        assert!(sys.read(&alice, &owner, "r", "x").is_err());
        assert_eq!(sys.read(&bob, &owner, "r", "x").unwrap(), b"v");
    }

    #[test]
    fn crash_mid_reencryption_recovers_forward() {
        use mabe_faults::FaultPlan;
        let plan = FaultPlan::new(11).at(fault_points::REVOKE_REENCRYPT, 1, FaultKind::Crash);
        let mut sys = CloudSystem::with_faults(42, FaultInjector::new(plan));
        let (alice, bob, _carol, owner) = medical_world(&mut sys);
        sys.publish(&owner, "r", &[("x", b"v".as_slice(), "Doctor@MedOrg")])
            .unwrap();

        let err = sys.revoke(&alice, "Doctor@MedOrg").unwrap_err();
        assert!(matches!(err, CloudError::Crashed { .. }), "got {err}");
        assert!(sys.needs_recovery());
        assert_eq!(sys.audit().incomplete_revocations().len(), 1);
        assert_eq!(sys.pending_revocations().len(), 1);

        // The scheduled crash fired once; recovery rolls the journaled
        // revocation forward to convergence.
        assert_eq!(sys.recover().unwrap(), 1);
        assert!(!sys.needs_recovery());
        assert!(sys.audit().incomplete_revocations().is_empty());
        assert!(sys.audit().verify());
        assert!(
            sys.read(&alice, &owner, "r", "x").is_err(),
            "revoked stays revoked after recovery"
        );
        assert_eq!(
            sys.read(&bob, &owner, "r", "x").unwrap(),
            b"v",
            "holder converged"
        );
        assert!(sys
            .metrics_snapshot()
            .contains("mabe_revocations_recovered_total"));
    }

    #[test]
    fn crash_during_key_delivery_is_resumable_and_idempotent() {
        use mabe_faults::FaultPlan;
        // Crash on the very first holder update-key delivery.
        let plan = FaultPlan::new(3).at(fault_points::REVOKE_UPDATE_DELIVER, 1, FaultKind::Crash);
        let mut sys = CloudSystem::with_faults(42, FaultInjector::new(plan));
        let (alice, bob, carol, owner) = medical_world(&mut sys);
        sys.publish(
            &owner,
            "r",
            &[("x", b"v".as_slice(), "Nurse@MedOrg OR Doctor@MedOrg")],
        )
        .unwrap();

        assert!(sys.revoke(&alice, "Doctor@MedOrg").is_err());
        assert!(sys.needs_recovery());
        // recover() twice: the second call must be a clean no-op.
        assert_eq!(sys.recover().unwrap(), 1);
        assert_eq!(sys.recover().unwrap(), 0);
        assert_eq!(sys.read(&bob, &owner, "r", "x").unwrap(), b"v");
        assert_eq!(sys.read(&carol, &owner, "r", "x").unwrap(), b"v");
        assert!(sys.read(&alice, &owner, "r", "x").is_err());
    }

    #[test]
    fn a_new_revocation_first_drives_a_stalled_one() {
        use mabe_faults::FaultPlan;
        let plan = FaultPlan::new(7).at(fault_points::REVOKE_REENCRYPT, 1, FaultKind::Crash);
        let mut sys = CloudSystem::with_faults(42, FaultInjector::new(plan));
        let (alice, bob, carol, owner) = medical_world(&mut sys);
        sys.publish(
            &owner,
            "r",
            &[("x", b"v".as_slice(), "Nurse@MedOrg OR Doctor@MedOrg")],
        )
        .unwrap();
        assert!(sys.revoke(&alice, "Doctor@MedOrg").is_err());
        assert!(sys.needs_recovery());
        // Versions chain: revoking carol at the same authority first
        // rolls the stalled revocation forward, then re-keys.
        sys.revoke(&carol, "Nurse@MedOrg").unwrap();
        assert!(!sys.needs_recovery());
        assert_eq!(sys.authority_version(&AuthorityId::new("MedOrg")), Some(3));
        assert_eq!(sys.read(&bob, &owner, "r", "x").unwrap(), b"v");
        assert!(sys.read(&alice, &owner, "r", "x").is_err());
        assert!(sys.read(&carol, &owner, "r", "x").is_err());
    }

    #[test]
    fn transient_drops_are_retried_transparently() {
        use mabe_faults::FaultPlan;
        let plan = FaultPlan::new(5)
            .rate(fault_points::READ_FETCH, FaultKind::Drop, 0.4)
            .budget(6);
        let mut sys = CloudSystem::with_faults(42, FaultInjector::new(plan));
        let (alice, _bob, _carol, owner) = medical_world(&mut sys);
        sys.publish(&owner, "r", &[("x", b"v".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        for _ in 0..8 {
            assert_eq!(sys.read(&alice, &owner, "r", "x").unwrap(), b"v");
        }
        let report = sys.wire().delivery_report();
        assert!(report.dropped > 0, "some fetches were dropped: {report:?}");
        // Every read succeeded, so each drop burst ended in a delivered
        // retransmission (consecutive drops within one operation share
        // one final retransmit).
        assert!(
            report.retried > 0 && report.retried <= report.dropped,
            "drops ended in retransmissions: {report:?}"
        );
        assert_eq!(
            report.bytes_sent,
            report.bytes_delivered + report.bytes_lost
        );
        assert!(sys.faults().injected(FaultKind::Drop) > 0);
    }

    #[test]
    fn syncing_an_offline_revoked_user_does_not_resurrect_stale_keys() {
        let (mut sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(
            &owner,
            "r",
            &[
                ("med", b"m".as_slice(), "Doctor@MedOrg"),
                ("trial", b"t".as_slice(), "Sponsor@Trial"),
            ],
        )
        .unwrap();
        assert!(sys.read(&bob, &owner, "r", "med").is_ok());

        sys.set_offline(&bob);
        // A revocation bob misses queues an update key (v1 -> v2)...
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        // ...then bob himself is revoked at MedOrg while still offline:
        // fresh reduced keys (already at v3) are delivered eagerly.
        sys.revoke(&bob, "Doctor@MedOrg").unwrap();
        assert_eq!(sys.authority_version(&AuthorityId::new("MedOrg")), Some(3));

        // The old failure mode: sync replayed the stale v1->v2 update
        // onto the fresh v3 key and died with VersionMismatch.
        sys.sync_user(&bob).unwrap();
        assert!(
            sys.read(&bob, &owner, "r", "med").is_err(),
            "revoked attribute stays revoked after sync"
        );
        assert_eq!(
            sys.read(&bob, &owner, "r", "trial").unwrap(),
            b"t",
            "unrelated authority unaffected"
        );
        // Syncing again is a no-op.
        sys.sync_user(&bob).unwrap();
    }
}
