//! End-to-end orchestration of the five-entity deployment (paper Fig. 1).
//!
//! [`CloudSystem`] wires together the CA, the attribute authorities, the
//! data owners, the users and the semi-trusted server, routing every key
//! and ciphertext through the byte-accounted [`Wire`] so the paper's
//! storage and communication experiments fall out of ordinary operation.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use mabe_core::{
    open_component, seal_envelope, AttributeAuthority, CertificateAuthority, DataOwner, Error,
    OwnerId, Uid, UserPublicKey, UserSecretKey, ZP_BYTES,
};
use mabe_policy::{parse, Attribute, AuthorityId, ParsePolicyError, Policy};

use crate::audit::{AuditEvent, AuditLog};
use crate::server::CloudServer;
use crate::wire::{Endpoint, Wire};

/// Errors from system-level operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CloudError {
    /// An underlying scheme operation failed.
    Core(Error),
    /// A policy string did not parse.
    Parse(ParsePolicyError),
    /// No such authority in the system.
    UnknownAuthority(AuthorityId),
    /// No such record on the server.
    UnknownRecord(String),
    /// No such component label within the record.
    UnknownComponent(String),
    /// Entity lookup failed.
    UnknownEntity(String),
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::Core(e) => write!(f, "{e}"),
            CloudError::Parse(e) => write!(f, "{e}"),
            CloudError::UnknownAuthority(a) => write!(f, "unknown authority {a}"),
            CloudError::UnknownRecord(r) => write!(f, "unknown record {r}"),
            CloudError::UnknownComponent(c) => write!(f, "unknown component {c}"),
            CloudError::UnknownEntity(e) => write!(f, "unknown entity {e}"),
        }
    }
}

impl std::error::Error for CloudError {}

impl From<Error> for CloudError {
    fn from(e: Error) -> Self {
        CloudError::Core(e)
    }
}

impl From<ParsePolicyError> for CloudError {
    fn from(e: ParsePolicyError) -> Self {
        CloudError::Parse(e)
    }
}

#[derive(Debug)]
struct UserState {
    pk: UserPublicKey,
    keys: BTreeMap<(OwnerId, AuthorityId), UserSecretKey>,
}

/// Paper-accounted storage overhead per entity class (Table III).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct StorageReport {
    /// Bytes per attribute authority.
    pub authorities: BTreeMap<AuthorityId, usize>,
    /// Bytes per owner.
    pub owners: BTreeMap<OwnerId, usize>,
    /// Bytes per user.
    pub users: BTreeMap<Uid, usize>,
    /// Bytes on the server.
    pub server: usize,
}

/// The complete simulated deployment.
#[derive(Debug)]
pub struct CloudSystem {
    rng: StdRng,
    ca: CertificateAuthority,
    authorities: BTreeMap<AuthorityId, AttributeAuthority>,
    owners: BTreeMap<OwnerId, DataOwner>,
    users: BTreeMap<Uid, UserState>,
    grants: BTreeMap<Uid, BTreeSet<Attribute>>,
    offline: BTreeSet<Uid>,
    pending_updates: BTreeMap<Uid, Vec<(OwnerId, mabe_core::UpdateKey)>>,
    server: CloudServer,
    wire: Wire,
    audit: AuditLog,
}

impl CloudSystem {
    /// Creates an empty system with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        CloudSystem {
            rng: StdRng::seed_from_u64(seed),
            ca: CertificateAuthority::new(),
            authorities: BTreeMap::new(),
            owners: BTreeMap::new(),
            users: BTreeMap::new(),
            grants: BTreeMap::new(),
            offline: BTreeSet::new(),
            pending_updates: BTreeMap::new(),
            server: CloudServer::new(),
            wire: Wire::new(),
            audit: AuditLog::new(),
        }
    }

    /// Registers an attribute authority managing `attribute_names`, and
    /// introduces it to every existing owner (SK_o registration plus
    /// public-key download, both byte-accounted).
    ///
    /// # Errors
    ///
    /// Fails if the AID is taken.
    pub fn add_authority(
        &mut self,
        name: &str,
        attribute_names: &[&str],
    ) -> Result<AuthorityId, CloudError> {
        let aid = self.ca.register_authority(name)?;
        let mut aa = AttributeAuthority::new(aid.clone(), attribute_names, &mut self.rng);
        for owner in self.owners.values_mut() {
            let sk = owner.owner_secret_key();
            self.wire.send(
                Endpoint::Owner(owner.id().clone()),
                Endpoint::Authority(aid.clone()),
                "owner secret key",
                sk.wire_size(),
            );
            aa.register_owner(sk)?;
            let pks = aa.public_keys();
            self.wire.send(
                Endpoint::Authority(aid.clone()),
                Endpoint::Owner(owner.id().clone()),
                "authority public keys",
                pks.wire_size(),
            );
            owner.learn_authority_keys(pks);
        }
        self.authorities.insert(aid.clone(), aa);
        self.audit.record(AuditEvent::AuthorityAdded {
            aid: aid.to_string(),
        });
        Ok(aid)
    }

    /// Registers a data owner, exchanging `SK_o` / public keys with every
    /// existing authority and issuing this owner's user secret keys to
    /// every already-granted user.
    ///
    /// # Errors
    ///
    /// Fails if the owner id collides.
    pub fn add_owner(&mut self, name: &str) -> Result<OwnerId, CloudError> {
        let id = OwnerId::new(name);
        if self.owners.contains_key(&id) {
            return Err(CloudError::Core(Error::AlreadyRegistered(name.to_owned())));
        }
        let mut owner = DataOwner::new(id.clone(), &mut self.rng);
        for (aid, aa) in self.authorities.iter_mut() {
            let sk = owner.owner_secret_key();
            self.wire.send(
                Endpoint::Owner(id.clone()),
                Endpoint::Authority(aid.clone()),
                "owner secret key",
                sk.wire_size(),
            );
            aa.register_owner(sk)?;
            let pks = aa.public_keys();
            self.wire.send(
                Endpoint::Authority(aid.clone()),
                Endpoint::Owner(id.clone()),
                "authority public keys",
                pks.wire_size(),
            );
            owner.learn_authority_keys(pks);
        }
        // Existing users need keys scoped to the new owner.
        for (uid, attrs) in &self.grants {
            let state = self.users.get_mut(uid).expect("granted user exists");
            let involved: BTreeSet<&AuthorityId> = attrs.iter().map(|a| a.authority()).collect();
            for aid in involved {
                let aa = self.authorities.get(aid).expect("authority exists");
                let key = aa.keygen(uid, &id)?;
                self.wire.send(
                    Endpoint::Authority(aid.clone()),
                    Endpoint::User(uid.clone()),
                    "user secret key",
                    key.wire_size(),
                );
                state.keys.insert((id.clone(), aid.clone()), key);
            }
        }
        self.owners.insert(id.clone(), owner);
        self.audit.record(AuditEvent::OwnerAdded {
            owner: id.to_string(),
        });
        Ok(id)
    }

    /// Registers a user with the CA.
    ///
    /// # Errors
    ///
    /// Fails if the UID collides.
    pub fn add_user(&mut self, name: &str) -> Result<Uid, CloudError> {
        let pk = self.ca.register_user(name, &mut self.rng)?;
        let uid = pk.uid.clone();
        self.wire.send(
            Endpoint::Ca,
            Endpoint::User(uid.clone()),
            "uid + public key",
            pk.wire_size(),
        );
        self.users.insert(
            uid.clone(),
            UserState {
                pk,
                keys: BTreeMap::new(),
            },
        );
        self.grants.insert(uid.clone(), BTreeSet::new());
        self.audit.record(AuditEvent::UserAdded {
            uid: uid.to_string(),
        });
        Ok(uid)
    }

    /// Grants attributes to a user: the relevant authorities record the
    /// grant and issue secret keys scoped to every owner.
    ///
    /// # Errors
    ///
    /// Fails on unknown user/authority/attribute.
    pub fn grant(&mut self, uid: &Uid, attributes: &[&str]) -> Result<(), CloudError> {
        let state = self
            .users
            .get_mut(uid)
            .ok_or_else(|| CloudError::Core(Error::UnknownUser(uid.clone())))?;
        let mut by_authority: BTreeMap<AuthorityId, Vec<Attribute>> = BTreeMap::new();
        for raw in attributes {
            let attr: Attribute = raw
                .parse()
                .map_err(|_| CloudError::UnknownEntity(format!("attribute {raw}")))?;
            by_authority
                .entry(attr.authority().clone())
                .or_default()
                .push(attr);
        }
        for (aid, attrs) in by_authority {
            let aa = self
                .authorities
                .get_mut(&aid)
                .ok_or_else(|| CloudError::UnknownAuthority(aid.clone()))?;
            aa.grant(&state.pk, attrs.iter().cloned())?;
            self.grants
                .get_mut(uid)
                .expect("user exists")
                .extend(attrs.iter().cloned());
            for owner_id in self.owners.keys() {
                let key = aa.keygen(uid, owner_id)?;
                self.wire.send(
                    Endpoint::Authority(aid.clone()),
                    Endpoint::User(uid.clone()),
                    "user secret key",
                    key.wire_size(),
                );
                state.keys.insert((owner_id.clone(), aid.clone()), key);
            }
        }
        self.audit.record(AuditEvent::Granted {
            uid: uid.to_string(),
            attributes: attributes.iter().map(|a| a.to_string()).collect(),
        });
        Ok(())
    }

    /// Publishes a record: each `(label, data, policy)` component is
    /// sealed (fresh content key, CP-ABE-wrapped) and uploaded.
    ///
    /// # Errors
    ///
    /// Fails on unknown owner, bad policy, or encryption errors.
    pub fn publish(
        &mut self,
        owner_id: &OwnerId,
        record: &str,
        components: &[(&str, &[u8], &str)],
    ) -> Result<(), CloudError> {
        let _span = mabe_telemetry::Span::with_labels("mabe_system_op", &[("op", "publish")]);
        let owner = self
            .owners
            .get_mut(owner_id)
            .ok_or_else(|| CloudError::Core(Error::UnknownOwner(owner_id.clone())))?;
        let policies: Vec<Policy> = components
            .iter()
            .map(|(_, _, p)| parse(p))
            .collect::<Result<_, _>>()?;
        let specs: Vec<(&str, &[u8], &Policy)> = components
            .iter()
            .zip(policies.iter())
            .map(|((label, data, _), policy)| (*label, *data, policy))
            .collect();
        let envelope = seal_envelope(owner, &specs, &mut self.rng)?;
        self.wire.send(
            Endpoint::Owner(owner_id.clone()),
            Endpoint::Server,
            format!("record {record}"),
            envelope.stored_size(),
        );
        self.server.store(owner_id.clone(), record, envelope);
        self.audit.record(AuditEvent::Published {
            owner: owner_id.to_string(),
            record: record.to_owned(),
            components: components.iter().map(|(l, _, _)| (*l).to_owned()).collect(),
        });
        Ok(())
    }

    /// A user downloads one component of a record and decrypts it.
    ///
    /// # Errors
    ///
    /// Unknown record/component, or any decryption error (unsatisfied
    /// policy, missing authority key, stale versions).
    pub fn read(
        &mut self,
        uid: &Uid,
        owner_id: &OwnerId,
        record: &str,
        label: &str,
    ) -> Result<Vec<u8>, CloudError> {
        let _span = mabe_telemetry::Span::with_labels("mabe_system_op", &[("op", "read")]);
        let state = self
            .users
            .get(uid)
            .ok_or_else(|| CloudError::Core(Error::UnknownUser(uid.clone())))?;
        let envelope = self
            .server
            .fetch(owner_id, record)
            .ok_or_else(|| CloudError::UnknownRecord(record.to_owned()))?;
        let component = envelope
            .component(label)
            .ok_or_else(|| CloudError::UnknownComponent(label.to_owned()))?;
        self.wire.send(
            Endpoint::Server,
            Endpoint::User(uid.clone()),
            format!("component {record}/{label}"),
            component.stored_size(),
        );
        let keys: BTreeMap<AuthorityId, UserSecretKey> = state
            .keys
            .iter()
            .filter(|((o, _), _)| o == owner_id)
            .map(|((_, aid), key)| (aid.clone(), key.clone()))
            .collect();
        let result = open_component(component, &state.pk, &keys);
        self.audit.record(AuditEvent::Read {
            uid: uid.to_string(),
            owner: owner_id.to_string(),
            record: record.to_owned(),
            component: label.to_owned(),
            allowed: result.is_ok(),
        });
        Ok(result?)
    }

    /// Like [`Self::read`], but decryption is outsourced: the user sends
    /// a blinded transform key, the **server** runs all pairings and
    /// returns a token, and the user finishes with one `G_T`
    /// exponentiation (the DAC-MACS-style extension in
    /// `mabe_core::outsource`). The server learns nothing: the token
    /// carries the user's `1/z` blinding.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::read`].
    pub fn read_outsourced(
        &mut self,
        uid: &Uid,
        owner_id: &OwnerId,
        record: &str,
        label: &str,
    ) -> Result<Vec<u8>, CloudError> {
        let _span =
            mabe_telemetry::Span::with_labels("mabe_system_op", &[("op", "read_outsourced")]);
        let state = self
            .users
            .get(uid)
            .ok_or_else(|| CloudError::Core(Error::UnknownUser(uid.clone())))?;
        let envelope = self
            .server
            .fetch(owner_id, record)
            .ok_or_else(|| CloudError::UnknownRecord(record.to_owned()))?;
        let component = envelope
            .component(label)
            .ok_or_else(|| CloudError::UnknownComponent(label.to_owned()))?;

        let keys: BTreeMap<AuthorityId, UserSecretKey> = state
            .keys
            .iter()
            .filter(|((o, _), _)| o == owner_id)
            .map(|((_, aid), key)| (aid.clone(), key.clone()))
            .collect();
        let (tk, rk) = mabe_core::make_transform_key(&state.pk, &keys, &mut self.rng)?;
        // The blinded key travels to the server (same element count as
        // the underlying secret keys plus the blinded PK).
        let tk_bytes: usize =
            keys.values().map(UserSecretKey::wire_size).sum::<usize>() + mabe_core::G_BYTES;
        self.wire.send(
            Endpoint::User(uid.clone()),
            Endpoint::Server,
            "transform key",
            tk_bytes,
        );
        let token = mabe_core::server_transform(&component.key_ct, &tk)?;
        // Only the 128-byte token comes back — not the ciphertext.
        self.wire.send(
            Endpoint::Server,
            Endpoint::User(uid.clone()),
            format!("transform token {record}/{label}"),
            mabe_core::GT_BYTES + component.sealed.len() + component.nonce.len(),
        );
        let kem = mabe_core::client_recover(&component.key_ct, &token, &rk);
        let result = mabe_core::open_component_with_kem(component, &kem);
        self.audit.record(AuditEvent::Read {
            uid: uid.to_string(),
            owner: owner_id.to_string(),
            record: record.to_owned(),
            component: label.to_owned(),
            allowed: result.is_ok(),
        });
        Ok(result?)
    }

    /// Revokes one attribute from one user, running the full protocol:
    /// fresh keys for the revoked user, update keys to every other
    /// (online) holder and every owner, owner-side public-key updates,
    /// and server-side re-encryption of every affected ciphertext.
    ///
    /// # Errors
    ///
    /// Unknown user/authority, or the user does not hold the attribute.
    pub fn revoke(&mut self, uid: &Uid, attribute: &str) -> Result<(), CloudError> {
        // End-to-end revocation latency: ReKey at the authority through
        // the last server-side re-encryption.
        let _e2e = mabe_telemetry::Span::start("mabe_revocation_e2e");
        let attr: Attribute = attribute
            .parse()
            .map_err(|_| CloudError::UnknownEntity(format!("attribute {attribute}")))?;
        let aid = attr.authority().clone();
        let aa = self
            .authorities
            .get_mut(&aid)
            .ok_or_else(|| CloudError::UnknownAuthority(aid.clone()))?;
        let event = aa.revoke_attribute(uid, &attr, &mut self.rng)?;
        self.apply_revocation_event(event)
    }

    /// User-level revocation at one authority: strips all of the user's
    /// attributes from that domain in a single version bump.
    ///
    /// # Errors
    ///
    /// Unknown user/authority, or no attributes held there.
    pub fn revoke_user_at(&mut self, uid: &Uid, aid: &AuthorityId) -> Result<(), CloudError> {
        let _e2e = mabe_telemetry::Span::start("mabe_revocation_e2e");
        let aa = self
            .authorities
            .get_mut(aid)
            .ok_or_else(|| CloudError::UnknownAuthority(aid.clone()))?;
        let event = aa.revoke_user(uid, &mut self.rng)?;
        self.apply_revocation_event(event)
    }

    /// Full user-level revocation: runs [`Self::revoke_user_at`] against
    /// every authority where the user currently holds attributes.
    ///
    /// # Errors
    ///
    /// Unknown user; propagates per-authority failures.
    pub fn revoke_user(&mut self, uid: &Uid) -> Result<(), CloudError> {
        let involved: Vec<AuthorityId> = self
            .grants
            .get(uid)
            .ok_or_else(|| CloudError::Core(Error::UnknownUser(uid.clone())))?
            .iter()
            .map(|a| a.authority().clone())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        for aid in involved {
            self.revoke_user_at(uid, &aid)?;
        }
        Ok(())
    }

    /// Marks a user offline: update keys queue up instead of being
    /// applied (the paper sends `UK` to all non-revoked users; offline
    /// ones catch up later via [`Self::sync_user`]).
    pub fn set_offline(&mut self, uid: &Uid) {
        self.offline.insert(uid.clone());
    }

    /// Brings a user back online and replays any queued update keys.
    /// Consecutive updates per `(owner, authority)` are **composed**
    /// into one compact key first ([`mabe_core::UpdateKey::compose`]),
    /// so a user offline through `n` revocations downloads one update
    /// key per authority, not `n`.
    ///
    /// # Errors
    ///
    /// Propagates key-update failures (e.g. corrupted queues).
    pub fn sync_user(&mut self, uid: &Uid) -> Result<(), CloudError> {
        self.offline.remove(uid);
        let Some(queue) = self.pending_updates.remove(uid) else {
            return Ok(());
        };
        // Compact chains per (owner, authority).
        let mut compacted: BTreeMap<(OwnerId, AuthorityId), mabe_core::UpdateKey> = BTreeMap::new();
        for (owner_id, uk) in queue {
            let slot = (owner_id, uk.aid.clone());
            match compacted.remove(&slot) {
                Some(prev) => {
                    compacted.insert(slot, prev.compose(&uk)?);
                }
                None => {
                    compacted.insert(slot, uk);
                }
            }
        }
        let state = self
            .users
            .get_mut(uid)
            .ok_or_else(|| CloudError::Core(Error::UnknownUser(uid.clone())))?;
        for ((owner_id, aid), uk) in compacted {
            self.wire.send(
                Endpoint::Authority(aid.clone()),
                Endpoint::User(uid.clone()),
                "composed deferred update key",
                uk.wire_size(),
            );
            if let Some(key) = state.keys.get_mut(&(owner_id, aid)) {
                key.apply_update(&uk)?;
            }
        }
        Ok(())
    }

    /// Distributes one revocation event through the whole system.
    fn apply_revocation_event(
        &mut self,
        event: mabe_core::RevocationEvent,
    ) -> Result<(), CloudError> {
        let aid = event.aid.clone();
        let uid = event.revoked_uid.clone();
        self.audit.record(AuditEvent::Revoked {
            uid: uid.to_string(),
            attributes: event
                .revoked_attributes
                .iter()
                .map(|a| a.to_string())
                .collect(),
            aid: aid.to_string(),
            new_version: event.to_version,
        });
        if let Some(grants) = self.grants.get_mut(&uid) {
            for attr in &event.revoked_attributes {
                grants.remove(attr);
            }
        }

        // 1. Fresh (attribute-reduced) keys to the revoked user.
        if let Some(state) = self.users.get_mut(&uid) {
            for (owner_id, key) in &event.revoked_user_keys {
                self.wire.send(
                    Endpoint::Authority(aid.clone()),
                    Endpoint::User(uid.clone()),
                    "re-issued secret key",
                    key.wire_size(),
                );
                state
                    .keys
                    .insert((owner_id.clone(), aid.clone()), key.clone());
            }
        }

        // 2. Update keys to every other user holding attributes from
        //    this authority; offline holders get them queued.
        let holders: Vec<Uid> = self
            .grants
            .iter()
            .filter(|(holder, attrs)| {
                **holder != uid && attrs.iter().any(|a| a.authority() == &aid)
            })
            .map(|(holder, _)| holder.clone())
            .collect();
        for holder in holders {
            if self.offline.contains(&holder) {
                let queue = self.pending_updates.entry(holder).or_default();
                for (owner_id, uk) in &event.update_keys {
                    queue.push((owner_id.clone(), uk.clone()));
                }
                continue;
            }
            let state = self.users.get_mut(&holder).expect("holder exists");
            for (owner_id, uk) in &event.update_keys {
                if let Some(key) = state.keys.get_mut(&(owner_id.clone(), aid.clone())) {
                    self.wire.send(
                        Endpoint::Authority(aid.clone()),
                        Endpoint::User(holder.clone()),
                        "update key",
                        uk.wire_size(),
                    );
                    key.apply_update(uk)?;
                }
            }
        }

        // 3. Owners update public keys, then 4. produce update info so the
        //    server can re-encrypt affected ciphertexts.
        for (owner_id, owner) in self.owners.iter_mut() {
            let uk = &event.update_keys[owner_id];
            self.wire.send(
                Endpoint::Authority(aid.clone()),
                Endpoint::Owner(owner_id.clone()),
                "update key",
                uk.wire_size(),
            );
            owner.apply_update_key(uk)?;

            let affected = self
                .server
                .affected_ciphertexts(owner_id, &aid, event.from_version);
            for (record_key, label, ct_id) in affected {
                let ui =
                    owner.update_info_for(ct_id, &aid, event.from_version, event.to_version)?;
                self.wire.send(
                    Endpoint::Owner(owner_id.clone()),
                    Endpoint::Server,
                    "update key + update info",
                    uk.wire_size() + ui.wire_size(),
                );
                self.server
                    .reencrypt_component(&record_key, &label, uk, &ui)?;
            }
        }
        Ok(())
    }

    /// The byte-accounted transport log.
    pub fn wire(&self) -> &Wire {
        &self.wire
    }

    /// The tamper-evident audit trail of every system operation.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Resets communication accounting (e.g. between experiment phases).
    pub fn reset_wire(&mut self) {
        self.wire.reset();
    }

    /// JSON snapshot of the global telemetry registry: crypto-op
    /// counters, per-pair wire bytes, and latency histograms
    /// (encrypt/decrypt/re-encrypt, server ops, revocation end-to-end).
    pub fn metrics_snapshot(&self) -> String {
        mabe_telemetry::global().snapshot_json()
    }

    /// Prometheus text exposition of the same registry.
    pub fn metrics_prometheus(&self) -> String {
        mabe_telemetry::global().prometheus()
    }

    /// The cloud server.
    pub fn server(&self) -> &CloudServer {
        &self.server
    }

    /// Current key version of an authority.
    pub fn authority_version(&self, aid: &AuthorityId) -> Option<u64> {
        self.authorities.get(aid).map(|a| a.version())
    }

    /// Paper-accounted storage overhead per entity (Table III).
    pub fn storage_report(&self) -> StorageReport {
        StorageReport {
            authorities: self
                .authorities
                .keys()
                .map(|aid| (aid.clone(), ZP_BYTES))
                .collect(),
            owners: self
                .owners
                .iter()
                .map(|(id, o)| (id.clone(), o.storage_size()))
                .collect(),
            users: self
                .users
                .iter()
                .map(|(uid, s)| {
                    (
                        uid.clone(),
                        s.keys.values().map(UserSecretKey::wire_size).sum(),
                    )
                })
                .collect(),
            server: self.server.storage_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::PairClass;

    /// Builds the paper's running example: a medical authority and a
    /// clinical-trial authority, one hospital owner, three users.
    fn medical_system() -> (CloudSystem, Uid, Uid, Uid, OwnerId) {
        let mut sys = CloudSystem::new(42);
        sys.add_authority("MedOrg", &["Doctor", "Nurse"]).unwrap();
        sys.add_authority("Trial", &["Researcher", "Sponsor"])
            .unwrap();
        let owner = sys.add_owner("hospital").unwrap();
        let alice = sys.add_user("alice").unwrap();
        let bob = sys.add_user("bob").unwrap();
        let carol = sys.add_user("carol").unwrap();
        sys.grant(&alice, &["Doctor@MedOrg", "Researcher@Trial"])
            .unwrap();
        sys.grant(&bob, &["Doctor@MedOrg", "Sponsor@Trial"])
            .unwrap();
        sys.grant(&carol, &["Nurse@MedOrg", "Researcher@Trial"])
            .unwrap();
        (sys, alice, bob, carol, owner)
    }

    #[test]
    fn end_to_end_publish_and_read() {
        let (mut sys, alice, bob, carol, owner) = medical_system();
        sys.publish(
            &owner,
            "patient-7",
            &[
                ("diagnosis", b"flu".as_slice(), "Doctor@MedOrg"),
                (
                    "trial-data",
                    b"cohort A".as_slice(),
                    "Doctor@MedOrg AND Researcher@Trial",
                ),
            ],
        )
        .unwrap();

        // Alice (Doctor+Researcher) reads both.
        assert_eq!(
            sys.read(&alice, &owner, "patient-7", "diagnosis").unwrap(),
            b"flu"
        );
        assert_eq!(
            sys.read(&alice, &owner, "patient-7", "trial-data").unwrap(),
            b"cohort A"
        );
        // Bob (Doctor+Sponsor) reads diagnosis only.
        assert_eq!(
            sys.read(&bob, &owner, "patient-7", "diagnosis").unwrap(),
            b"flu"
        );
        assert!(sys.read(&bob, &owner, "patient-7", "trial-data").is_err());
        // Carol (Nurse+Researcher) reads neither.
        assert!(sys.read(&carol, &owner, "patient-7", "diagnosis").is_err());
        assert!(sys.read(&carol, &owner, "patient-7", "trial-data").is_err());
    }

    #[test]
    fn revocation_lifecycle_through_the_system() {
        let (mut sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(
            &owner,
            "rec",
            &[("x", b"secret".as_slice(), "Doctor@MedOrg")],
        )
        .unwrap();
        assert_eq!(sys.read(&alice, &owner, "rec", "x").unwrap(), b"secret");
        assert_eq!(sys.read(&bob, &owner, "rec", "x").unwrap(), b"secret");

        // Revoke Alice's Doctor attribute.
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        assert_eq!(sys.authority_version(&AuthorityId::new("MedOrg")), Some(2));

        // Alice can no longer read; Bob still can (keys auto-updated).
        assert!(sys.read(&alice, &owner, "rec", "x").is_err());
        assert_eq!(sys.read(&bob, &owner, "rec", "x").unwrap(), b"secret");

        // New publications under the new version behave the same.
        sys.publish(
            &owner,
            "rec2",
            &[("y", b"fresh".as_slice(), "Doctor@MedOrg")],
        )
        .unwrap();
        assert!(sys.read(&alice, &owner, "rec2", "y").is_err());
        assert_eq!(sys.read(&bob, &owner, "rec2", "y").unwrap(), b"fresh");

        // A user who joins after the revocation can read the old record.
        let dave = sys.add_user("dave").unwrap();
        sys.grant(&dave, &["Doctor@MedOrg"]).unwrap();
        assert_eq!(sys.read(&dave, &owner, "rec", "x").unwrap(), b"secret");
    }

    #[test]
    fn late_owner_gets_keys_flowing() {
        let (mut sys, alice, _bob, _carol, _owner) = medical_system();
        let clinic = sys.add_owner("clinic").unwrap();
        sys.publish(
            &clinic,
            "c-rec",
            &[("n", b"note".as_slice(), "Doctor@MedOrg")],
        )
        .unwrap();
        assert_eq!(sys.read(&alice, &clinic, "c-rec", "n").unwrap(), b"note");
    }

    #[test]
    fn wire_accounting_accumulates_per_pair() {
        let (mut sys, alice, _bob, _carol, owner) = medical_system();
        sys.publish(&owner, "r", &[("x", b"d".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        sys.read(&alice, &owner, "r", "x").unwrap();
        let report = sys.wire().report();
        assert!(report[&PairClass::AuthorityUser] > 0, "secret keys flowed");
        assert!(report[&PairClass::AuthorityOwner] > 0, "public keys flowed");
        assert!(report[&PairClass::ServerOwner] > 0, "upload flowed");
        assert!(report[&PairClass::ServerUser] > 0, "download flowed");
    }

    #[test]
    fn storage_report_covers_all_entities() {
        let (sys, _alice, _bob, _carol, owner) = medical_system();
        let report = sys.storage_report();
        assert_eq!(report.authorities.len(), 2);
        // Authority stores only its version key.
        assert!(report.authorities.values().all(|&b| b == ZP_BYTES));
        assert!(report.owners[&owner] > 0);
        assert_eq!(report.users.len(), 3);
        assert!(report.users.values().all(|&b| b > 0));
    }

    #[test]
    fn unknown_lookups_error() {
        let (mut sys, alice, _bob, _carol, owner) = medical_system();
        assert!(matches!(
            sys.read(&alice, &owner, "nope", "x"),
            Err(CloudError::UnknownRecord(_))
        ));
        sys.publish(&owner, "r", &[("x", b"d".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        assert!(matches!(
            sys.read(&alice, &owner, "r", "nope"),
            Err(CloudError::UnknownComponent(_))
        ));
        assert!(matches!(
            sys.grant(&Uid::new("ghost"), &["Doctor@MedOrg"]),
            Err(CloudError::Core(Error::UnknownUser(_)))
        ));
        assert!(matches!(
            sys.revoke(&alice, "Doctor@Nowhere"),
            Err(CloudError::UnknownAuthority(_))
        ));
        assert!(matches!(
            sys.publish(&owner, "bad", &[("x", b"d".as_slice(), "not a policy !!")]),
            Err(CloudError::Parse(_))
        ));
    }

    #[test]
    fn revocation_reencrypts_every_owners_ciphertexts() {
        let (mut sys, alice, bob, _carol, hospital) = medical_system();
        let clinic = sys.add_owner("clinic").unwrap();
        sys.publish(
            &hospital,
            "h-rec",
            &[("x", b"h".as_slice(), "Doctor@MedOrg")],
        )
        .unwrap();
        sys.publish(&clinic, "c-rec", &[("x", b"c".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        assert!(sys.read(&alice, &hospital, "h-rec", "x").is_ok());
        assert!(sys.read(&alice, &clinic, "c-rec", "x").is_ok());

        // One revocation at MedOrg must re-encrypt records of BOTH
        // owners (per-owner update keys, per-owner update info).
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        assert!(sys.read(&alice, &hospital, "h-rec", "x").is_err());
        assert!(sys.read(&alice, &clinic, "c-rec", "x").is_err());
        assert_eq!(sys.read(&bob, &hospital, "h-rec", "x").unwrap(), b"h");
        assert_eq!(sys.read(&bob, &clinic, "c-rec", "x").unwrap(), b"c");
    }

    #[test]
    fn outsourced_read_matches_direct_read() {
        let (mut sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(
            &owner,
            "r",
            &[(
                "x",
                b"outsource me".as_slice(),
                "Doctor@MedOrg AND Researcher@Trial",
            )],
        )
        .unwrap();
        assert_eq!(sys.read(&alice, &owner, "r", "x").unwrap(), b"outsource me");
        assert_eq!(
            sys.read_outsourced(&alice, &owner, "r", "x").unwrap(),
            b"outsource me"
        );
        // Unauthorized user fails identically on both paths.
        assert!(sys.read(&bob, &owner, "r", "x").is_err());
        assert!(sys.read_outsourced(&bob, &owner, "r", "x").is_err());
        // The outsourced path also survives a revocation + key update.
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        assert!(sys.read_outsourced(&alice, &owner, "r", "x").is_err());
    }

    #[test]
    fn audit_trail_records_lifecycle() {
        let (mut sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(&owner, "r", &[("x", b"v".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        let _ = sys.read(&alice, &owner, "r", "x");
        let _ = sys.read(&bob, &owner, "r", "x");
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        let _ = sys.read(&alice, &owner, "r", "x"); // denied

        let audit = sys.audit();
        assert!(audit.verify(), "hash chain intact");
        // 2 AAs + 1 owner + 3 users + 3 grants + 1 publish + 3 reads +
        // 1 revocation = 14 entries.
        assert_eq!(audit.entries().len(), 14);
        assert_eq!(audit.denials().count(), 1);
        assert!(audit.for_user("alice").count() >= 4);
        // The denial is alice's post-revocation read.
        let denial = audit.denials().next().unwrap();
        assert!(denial.event.to_string().contains("alice"));
    }

    #[test]
    fn user_level_revocation() {
        let (mut sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(
            &owner,
            "r",
            &[
                ("med", b"m".as_slice(), "Doctor@MedOrg"),
                ("trial", b"t".as_slice(), "Researcher@Trial"),
            ],
        )
        .unwrap();
        assert!(sys.read(&alice, &owner, "r", "med").is_ok());
        assert!(sys.read(&alice, &owner, "r", "trial").is_ok());

        // Wipe Alice everywhere in one call: MedOrg and Trial each bump
        // exactly once regardless of how many attributes she held.
        sys.revoke_user(&alice).unwrap();
        assert_eq!(sys.authority_version(&AuthorityId::new("MedOrg")), Some(2));
        assert_eq!(sys.authority_version(&AuthorityId::new("Trial")), Some(2));
        assert!(sys.read(&alice, &owner, "r", "med").is_err());
        assert!(sys.read(&alice, &owner, "r", "trial").is_err());
        // Bob unaffected.
        assert!(sys.read(&bob, &owner, "r", "med").is_ok());
        // Re-revoking an attribute-less user fails.
        assert!(
            sys.revoke_user(&alice).is_ok(),
            "no-op: no authorities involved"
        );
        assert!(sys
            .revoke_user_at(&alice, &AuthorityId::new("MedOrg"))
            .is_err());
    }

    #[test]
    fn offline_user_catches_up_with_queued_update_keys() {
        let (mut sys, alice, bob, _carol, owner) = medical_system();
        sys.publish(&owner, "r", &[("x", b"v".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        assert!(sys.read(&bob, &owner, "r", "x").is_ok());

        // Bob goes offline; two revocations happen (two version bumps).
        sys.set_offline(&bob);
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        let dave = sys.add_user("dave").unwrap();
        sys.grant(&dave, &["Doctor@MedOrg"]).unwrap();
        sys.revoke(&dave, "Doctor@MedOrg").unwrap();
        assert_eq!(sys.authority_version(&AuthorityId::new("MedOrg")), Some(3));

        // Bob's keys are two versions stale: reads fail cleanly.
        assert!(sys.read(&bob, &owner, "r", "x").is_err());

        // Coming back online replays the queued UK chain in order.
        sys.sync_user(&bob).unwrap();
        assert_eq!(sys.read(&bob, &owner, "r", "x").unwrap(), b"v");

        // Syncing an already-synced user is a no-op.
        sys.sync_user(&bob).unwrap();
        assert_eq!(sys.read(&bob, &owner, "r", "x").unwrap(), b"v");
    }

    #[test]
    fn metrics_exports_cover_the_lifecycle() {
        let (mut sys, alice, _bob, _carol, owner) = medical_system();
        sys.publish(&owner, "r", &[("x", b"v".as_slice(), "Doctor@MedOrg")])
            .unwrap();
        sys.read(&alice, &owner, "r", "x").unwrap();
        sys.revoke(&alice, "Doctor@MedOrg").unwrap();

        let json = sys.metrics_snapshot();
        for series in [
            "mabe_encrypt_latency_us",
            "mabe_decrypt_latency_us",
            "mabe_reencrypt_latency_us",
            "mabe_revocation_e2e_latency_us",
            "mabe_system_op_latency_us",
            "mabe_server_op_latency_us",
            "mabe_wire_bytes_total",
            "mabe_crypto_ops_total",
        ] {
            assert!(
                json.contains(series),
                "JSON snapshot missing {series}: {json}"
            );
        }

        let prom = sys.metrics_prometheus();
        assert!(prom.contains("# TYPE mabe_wire_bytes_total counter"));
        assert!(prom.contains("# TYPE mabe_revocation_e2e_latency_us histogram"));
        assert!(prom.contains(r#"pair="authority_user""#));
    }

    #[test]
    fn multiple_revocations_chain_versions() {
        let (mut sys, alice, bob, carol, owner) = medical_system();
        sys.publish(
            &owner,
            "r",
            &[("x", b"v".as_slice(), "Nurse@MedOrg OR Doctor@MedOrg")],
        )
        .unwrap();
        assert_eq!(sys.read(&carol, &owner, "r", "x").unwrap(), b"v");

        sys.revoke(&alice, "Doctor@MedOrg").unwrap();
        sys.revoke(&carol, "Nurse@MedOrg").unwrap();
        assert_eq!(sys.authority_version(&AuthorityId::new("MedOrg")), Some(3));

        // Bob still reads after two re-encryptions.
        assert_eq!(sys.read(&bob, &owner, "r", "x").unwrap(), b"v");
        // Carol lost access.
        assert!(sys.read(&carol, &owner, "r", "x").is_err());
    }
}
