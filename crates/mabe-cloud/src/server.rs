//! The semi-trusted cloud server.
//!
//! Per the paper's security model (§III-B) the server is *honest but
//! curious*: it stores envelopes, serves them to anyone who asks (access
//! control is enforced by the cryptography, not the server), and executes
//! re-encryption correctly — but it never holds content keys and the
//! proxy re-encryption keeps it unable to decrypt.
//!
//! Storage is behind a [`parking_lot::RwLock`] so many simulated users
//! can fetch concurrently while revocation-driven re-encryption takes the
//! write lock.

use std::collections::BTreeMap;

use parking_lot::RwLock;

use mabe_core::{
    read_string, reencrypt, CiphertextId, DataEnvelope, Error, OwnerId, UpdateInfo, UpdateKey,
};
use mabe_policy::AuthorityId;
use mabe_store::{key_str, Keyspace};

use crate::tables::{self, Components};

/// Key of a stored record: owner plus record name.
pub type RecordKey = (OwnerId, String);

/// The cloud storage server.
#[derive(Debug, Default)]
pub struct CloudServer {
    records: RwLock<BTreeMap<RecordKey, DataEnvelope>>,
    /// Derived component index mirroring `records`: one
    /// [`Components`] row per `(authority, owner, record, label)`, so
    /// revocation re-encryption walks an `(authority, owner)` prefix
    /// scan instead of a full record-map pass. Maintained by every
    /// write path ([`CloudServer::store`],
    /// [`CloudServer::reencrypt_component`], [`CloudServer::restore`]).
    index: Keyspace,
}

impl CloudServer {
    /// Creates an empty server.
    pub fn new() -> Self {
        Self::default()
    }

    fn index_envelope(&self, owner: &OwnerId, name: &str, envelope: &DataEnvelope) {
        for component in &envelope.components {
            for (aid, version) in &component.key_ct.versions {
                self.index.put::<Components>(
                    &(
                        aid.as_str().to_owned(),
                        owner.as_str().to_owned(),
                        name.to_owned(),
                        component.label.clone(),
                    ),
                    &tables::component_value(*version, component.key_ct.id),
                );
            }
        }
    }

    fn unindex_envelope(&self, owner: &OwnerId, name: &str, envelope: &DataEnvelope) {
        for component in &envelope.components {
            for aid in component.key_ct.versions.keys() {
                self.index.delete::<Components>(&(
                    aid.as_str().to_owned(),
                    owner.as_str().to_owned(),
                    name.to_owned(),
                    component.label.clone(),
                ));
            }
        }
    }

    /// Stores (or replaces) a record.
    pub fn store(&self, owner: OwnerId, name: impl Into<String>, envelope: DataEnvelope) {
        let _span = mabe_telemetry::Span::with_labels("mabe_server_op", &[("op", "store")]);
        let _trace = mabe_trace::Span::child("server.store");
        let name = name.into();
        let key = (owner, name);
        let mut records = self.records.write();
        if let Some(old) = records.insert(key.clone(), envelope) {
            self.unindex_envelope(&key.0, &key.1, &old);
        }
        let stored = records.get(&key).expect("record just inserted");
        self.index_envelope(&key.0, &key.1, stored);
    }

    /// Fetches a record (clone — the server hands out bytes, it does not
    /// share memory with clients).
    pub fn fetch(&self, owner: &OwnerId, name: &str) -> Option<DataEnvelope> {
        let _span = mabe_telemetry::Span::with_labels("mabe_server_op", &[("op", "fetch")]);
        let _trace = mabe_trace::Span::child("server.fetch");
        self.records
            .read()
            .get(&(owner.clone(), name.to_owned()))
            .cloned()
    }

    /// Number of stored records.
    pub fn record_count(&self) -> usize {
        self.records.read().len()
    }

    /// Total paper-accounted storage in bytes (Table III "Server" row).
    pub fn storage_size(&self) -> usize {
        self.records
            .read()
            .values()
            .map(DataEnvelope::stored_size)
            .sum()
    }

    /// All ciphertext ids (with their record keys) belonging to `owner`
    /// whose key-wrapping ciphertexts involve `aid` at `version` — the
    /// set a revocation at that authority forces the server to
    /// re-encrypt. Served from the component index with an
    /// `(authority, owner)` prefix range scan, so cost scales with the
    /// authority's footprint rather than total records stored.
    pub fn affected_ciphertexts(
        &self,
        owner: &OwnerId,
        aid: &AuthorityId,
        version: u64,
    ) -> Vec<(RecordKey, String, CiphertextId)> {
        let mut prefix = Vec::new();
        key_str(&mut prefix, aid.as_str());
        key_str(&mut prefix, owner.as_str());
        let rows = self
            .index
            .range::<Components>(&prefix)
            .expect("component index rows are self-encoded");
        let mut out = Vec::new();
        for ((_, row_owner, record, label), value) in rows {
            let Some((row_version, ct_id)) = tables::decode_component_value(&value) else {
                continue;
            };
            if row_version == version {
                out.push(((OwnerId::new(row_owner), record), label, ct_id));
            }
        }
        out
    }

    /// Every record holding at least one component sealed under `aid`
    /// (distinct, in key order) — the worklist a revocation or lazy
    /// drain at that authority must touch. An `(authority)` prefix
    /// range scan over the component index.
    pub(crate) fn records_for_authority(&self, aid: &AuthorityId) -> Vec<RecordKey> {
        let mut prefix = Vec::new();
        key_str(&mut prefix, aid.as_str());
        let rows = self
            .index
            .range::<Components>(&prefix)
            .expect("component index rows are self-encoded");
        let mut out: Vec<RecordKey> = Vec::new();
        for ((_, owner, record, _), _) in rows {
            let key = (OwnerId::new(owner), record);
            if out.last() != Some(&key) {
                out.push(key);
            }
        }
        out
    }

    /// Clones out every stored record — the checkpoint walk.
    pub(crate) fn export_records(&self) -> Vec<(RecordKey, DataEnvelope)> {
        self.records
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Serializes the entire server state to bytes (record keys plus
    /// wire-encoded envelopes) — crash/restart persistence for the
    /// simulated deployment.
    pub fn snapshot(&self) -> Vec<u8> {
        use mabe_core::WireCodec;
        let records = self.records.read();
        let mut out = Vec::new();
        out.extend_from_slice(&(records.len() as u32).to_be_bytes());
        for ((owner, name), envelope) in records.iter() {
            let owner_bytes = owner.as_str().as_bytes();
            out.extend_from_slice(&(owner_bytes.len() as u16).to_be_bytes());
            out.extend_from_slice(owner_bytes);
            let name_bytes = name.as_bytes();
            out.extend_from_slice(&(name_bytes.len() as u16).to_be_bytes());
            out.extend_from_slice(name_bytes);
            let env_bytes = envelope.to_wire_bytes();
            out.extend_from_slice(&(env_bytes.len() as u32).to_be_bytes());
            out.extend_from_slice(&env_bytes);
        }
        out
    }

    /// Restores a server from a [`CloudServer::snapshot`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Malformed`] on truncated or invalid input.
    pub fn restore(bytes: &[u8]) -> Result<Self, Error> {
        use mabe_core::{Reader, WireCodec};
        let mut r = Reader::new(bytes);
        let count = r.u32()?;
        // Each record costs at least 8 bytes of framing (two u16 string
        // lengths + one u32 envelope length), so a count beyond
        // remaining/8 can never be satisfied — reject before looping.
        if count > 1 << 20 || count as usize > r.remaining() / 8 {
            return Err(Error::Malformed("implausible record count"));
        }
        let mut records = BTreeMap::new();
        for _ in 0..count {
            let owner = read_string(&mut r)?;
            if owner.is_empty() {
                return Err(Error::Malformed("empty owner id"));
            }
            let name = read_string(&mut r)?;
            let len = r.u32()? as usize;
            if len > r.remaining() {
                return Err(Error::Malformed("oversized envelope length"));
            }
            let envelope = DataEnvelope::from_wire_bytes(r.bytes(len)?)?;
            if records
                .insert((OwnerId::new(owner), name), envelope)
                .is_some()
            {
                return Err(Error::Malformed("duplicate record in snapshot"));
            }
        }
        if !r.is_exhausted() {
            return Err(Error::Malformed("trailing bytes"));
        }
        let server = CloudServer {
            records: RwLock::new(records),
            index: Keyspace::default(),
        };
        {
            let records = server.records.read();
            for ((owner, name), envelope) in records.iter() {
                server.index_envelope(owner, name, envelope);
            }
        }
        Ok(server)
    }

    /// Runs `ReEncrypt` on one stored component (paper §V-C Phase 2).
    ///
    /// # Errors
    ///
    /// * [`Error::Malformed`] if the record or component does not exist.
    /// * Any [`reencrypt`] validation error.
    pub fn reencrypt_component(
        &self,
        record: &RecordKey,
        label: &str,
        uk: &UpdateKey,
        ui: &UpdateInfo,
    ) -> Result<(), Error> {
        let _span = mabe_telemetry::Span::with_labels("mabe_server_op", &[("op", "reencrypt")]);
        let _trace = mabe_trace::Span::child("server.reencrypt");
        let mut records = self.records.write();
        let envelope = records
            .get_mut(record)
            .ok_or(Error::Malformed("unknown record"))?;
        let component = envelope
            .component_mut(label)
            .ok_or(Error::Malformed("unknown component"))?;
        reencrypt(&mut component.key_ct, uk, ui)?;
        // The version bump changed index row values (never keys — the
        // authority set of a sealed component is fixed), so re-put them.
        for (aid, version) in &component.key_ct.versions {
            self.index.put::<Components>(
                &(
                    aid.as_str().to_owned(),
                    record.0.as_str().to_owned(),
                    record.1.clone(),
                    label.to_owned(),
                ),
                &tables::component_value(*version, component.key_ct.id),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_fetch_roundtrip() {
        let server = CloudServer::new();
        let owner = OwnerId::new("o");
        server.store(owner.clone(), "record-1", DataEnvelope::new());
        assert_eq!(server.record_count(), 1);
        assert!(server.fetch(&owner, "record-1").is_some());
        assert!(server.fetch(&owner, "missing").is_none());
        assert!(server.fetch(&OwnerId::new("other"), "record-1").is_none());
    }

    #[test]
    fn empty_server_sizes() {
        let server = CloudServer::new();
        assert_eq!(server.storage_size(), 0);
        assert_eq!(server.record_count(), 0);
    }

    #[test]
    fn concurrent_reads() {
        use std::sync::Arc;
        let server = Arc::new(CloudServer::new());
        let owner = OwnerId::new("o");
        server.store(owner.clone(), "r", DataEnvelope::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let server = Arc::clone(&server);
                let owner = owner.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        assert!(server.fetch(&owner, "r").is_some());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        use mabe_core::{seal_envelope, AttributeAuthority, CertificateAuthority, DataOwner};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut rng = StdRng::seed_from_u64(909090);
        let mut ca = CertificateAuthority::new();
        let aid = ca.register_authority("Org").unwrap();
        let mut aa = AttributeAuthority::new(aid.clone(), &["A"], &mut rng);
        let mut owner = DataOwner::new(OwnerId::new("owner"), &mut rng);
        aa.register_owner(owner.owner_secret_key()).unwrap();
        owner.learn_authority_keys(aa.public_keys());
        let policy = mabe_policy::parse("A@Org").unwrap();
        let envelope =
            seal_envelope(&mut owner, &[("x", b"persisted", &policy)], &mut rng).unwrap();

        let server = CloudServer::new();
        server.store(owner.id().clone(), "rec", envelope);
        server.store(owner.id().clone(), "empty", DataEnvelope::new());

        let bytes = server.snapshot();
        let restored = CloudServer::restore(&bytes).unwrap();
        assert_eq!(restored.record_count(), 2);
        assert_eq!(restored.storage_size(), server.storage_size());

        // The restored envelope still decrypts.
        let user = ca.register_user("alice", &mut rng).unwrap();
        aa.grant(&user, ["A@Org".parse().unwrap()]).unwrap();
        let keys = BTreeMap::from([(aid, aa.keygen(&user.uid, owner.id()).unwrap())]);
        let fetched = restored.fetch(owner.id(), "rec").unwrap();
        let data =
            mabe_core::open_component(fetched.component("x").unwrap(), &user, &keys).unwrap();
        assert_eq!(data, b"persisted");

        // Corrupted snapshots are rejected, not panicking.
        assert!(CloudServer::restore(&bytes[..bytes.len() / 2]).is_err());
        assert!(CloudServer::restore(&[0xff; 4]).is_err());
        let mut extended = bytes;
        extended.push(0);
        assert!(CloudServer::restore(&extended).is_err());
        // Empty server snapshots round-trip too.
        let empty = CloudServer::new();
        assert_eq!(
            CloudServer::restore(&empty.snapshot())
                .unwrap()
                .record_count(),
            0
        );
    }

    #[test]
    fn restore_rejects_hostile_snapshots() {
        // A claimed record count far beyond what the input could hold is
        // rejected before any per-record work.
        assert!(CloudServer::restore(&100u32.to_be_bytes()).is_err());

        let server = CloudServer::new();
        server.store(OwnerId::new("o"), "r", DataEnvelope::new());
        let snap = server.snapshot();

        // An envelope length field claiming u32::MAX must fail cleanly
        // instead of attempting a 4 GiB read. Layout: 4 (count) + 2+1
        // (owner "o") + 2+1 (name "r"), so the length field sits at 10.
        let mut oversized = snap.clone();
        oversized[10..14].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(CloudServer::restore(&oversized).is_err());

        // Duplicate record keys cannot silently collapse into one.
        let record = &snap[4..];
        let mut dup = 2u32.to_be_bytes().to_vec();
        dup.extend_from_slice(record);
        dup.extend_from_slice(record);
        assert!(CloudServer::restore(&dup).is_err());

        // Single-bit corruption anywhere never panics.
        for pos in 0..snap.len() {
            let mut corrupted = snap.clone();
            corrupted[pos] ^= 0x01;
            let _ = CloudServer::restore(&corrupted);
        }
    }

    #[test]
    fn affected_ciphertexts_empty_for_unknown() {
        let server = CloudServer::new();
        let owner = OwnerId::new("o");
        assert!(server
            .affected_ciphertexts(&owner, &AuthorityId::new("Med"), 1)
            .is_empty());
    }

    #[test]
    fn reencrypt_unknown_record_errors() {
        let server = CloudServer::new();
        let owner = OwnerId::new("o");
        let uk = UpdateKey {
            aid: AuthorityId::new("Med"),
            from_version: 1,
            to_version: 2,
            owner: owner.clone(),
            uk1: mabe_math::G1Affine::generator(),
            uk2: mabe_math::Fr::from_u64(2),
        };
        let ui = UpdateInfo {
            aid: AuthorityId::new("Med"),
            ct_id: CiphertextId(1),
            from_version: 1,
            to_version: 2,
            items: BTreeMap::new(),
        };
        assert!(server
            .reencrypt_component(&(owner, "r".into()), "x", &uk, &ui)
            .is_err());
    }
}
