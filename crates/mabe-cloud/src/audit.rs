//! Tamper-evident audit trail for system operations.
//!
//! Cloud-storage deployments need an account of *who did what*: grants,
//! publications, reads (allowed and denied), revocations. The trail is
//! hash-chained (each entry commits to its predecessor via SHA-256), so
//! truncation or in-place edits are detectable — a cheap integrity layer
//! appropriate for the semi-trusted server model.

use std::fmt;

use mabe_crypto::sha256::{Sha256, DIGEST_LEN};

/// The kind of event recorded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditEvent {
    /// An authority was registered.
    AuthorityAdded {
        /// Authority name.
        aid: String,
    },
    /// An owner was registered.
    OwnerAdded {
        /// Owner name.
        owner: String,
    },
    /// A user was registered.
    UserAdded {
        /// User name.
        uid: String,
    },
    /// Attributes were granted.
    Granted {
        /// Receiving user.
        uid: String,
        /// Granted attributes (canonical form).
        attributes: Vec<String>,
    },
    /// A record was published.
    Published {
        /// Publishing owner.
        owner: String,
        /// Record name.
        record: String,
        /// Component labels.
        components: Vec<String>,
    },
    /// A read attempt.
    Read {
        /// Reading user.
        uid: String,
        /// Record owner.
        owner: String,
        /// Record name.
        record: String,
        /// Component label.
        component: String,
        /// Whether decryption succeeded.
        allowed: bool,
    },
    /// An attribute (or whole user) revocation.
    Revoked {
        /// Affected user.
        uid: String,
        /// Revoked attributes.
        attributes: Vec<String>,
        /// Authority that performed it.
        aid: String,
        /// New key version.
        new_version: u64,
    },
    /// The journaled **intent** of a revocation: the authority has
    /// re-keyed (phase 1), but update-key delivery and proxy
    /// re-encryption (phase 2) have not completed. A `RevocationBegun`
    /// without a matching `RevocationCompleted` marks an in-flight
    /// revocation that [`crate::CloudSystem::recover`] must roll
    /// forward.
    RevocationBegun {
        /// Affected user.
        uid: String,
        /// Authority that re-keyed.
        aid: String,
        /// Version before the re-key.
        from_version: u64,
        /// Version being moved to.
        to_version: u64,
    },
    /// Phase 2 finished: every update key was delivered (or queued for
    /// offline users) and every affected ciphertext re-encrypted.
    RevocationCompleted {
        /// The authority whose revocation converged.
        aid: String,
        /// The version the system converged to.
        version: u64,
    },
    /// A revocation that had crashed mid-flight was rolled forward to
    /// completion by [`crate::CloudSystem::recover`].
    RevocationRecovered {
        /// The authority whose revocation was recovered.
        aid: String,
        /// The version the system converged to.
        version: u64,
    },
}

impl fmt::Display for AuditEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditEvent::AuthorityAdded { aid } => write!(f, "authority+ {aid}"),
            AuditEvent::OwnerAdded { owner } => write!(f, "owner+ {owner}"),
            AuditEvent::UserAdded { uid } => write!(f, "user+ {uid}"),
            AuditEvent::Granted { uid, attributes } => {
                write!(f, "grant {uid} <- {}", attributes.join(","))
            }
            AuditEvent::Published {
                owner,
                record,
                components,
            } => {
                write!(f, "publish {owner}/{record} [{}]", components.join(","))
            }
            AuditEvent::Read {
                uid,
                owner,
                record,
                component,
                allowed,
            } => write!(
                f,
                "read {uid} {owner}/{record}/{component}: {}",
                if *allowed { "allowed" } else { "DENIED" }
            ),
            AuditEvent::Revoked {
                uid,
                attributes,
                aid,
                new_version,
            } => write!(
                f,
                "revoke {uid} -{} @{aid} (v{new_version})",
                attributes.join(",")
            ),
            AuditEvent::RevocationBegun {
                uid,
                aid,
                from_version,
                to_version,
            } => write!(
                f,
                "revocation-begun {uid} @{aid} (v{from_version}->v{to_version})"
            ),
            AuditEvent::RevocationCompleted { aid, version } => {
                write!(f, "revocation-completed @{aid} (v{version})")
            }
            AuditEvent::RevocationRecovered { aid, version } => {
                write!(f, "revocation-recovered @{aid} (v{version})")
            }
        }
    }
}

/// One chained entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditEntry {
    /// Position in the log (0-based).
    pub index: u64,
    /// Monotonic sequence number drawn from the log's own counter. It
    /// survives independent of position, so a verifier who witnessed an
    /// earlier `seq` can prove later re-numbering.
    pub seq: u64,
    /// Logical (Lamport) timestamp at record time: strictly increasing,
    /// and advanceable past external clocks via
    /// [`AuditLog::observe_clock`] to order entries across components.
    pub timestamp: u64,
    /// The event.
    pub event: AuditEvent,
    /// `SHA-256(prev_digest ‖ index ‖ seq ‖ timestamp ‖ display(event))`.
    pub digest: [u8; DIGEST_LEN],
}

/// The hash-chained trail.
#[derive(Clone, Debug, Default)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
    next_seq: u64,
    clock: u64,
}

impl AuditLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    fn chain_digest(
        prev: &[u8; DIGEST_LEN],
        index: u64,
        seq: u64,
        timestamp: u64,
        event: &AuditEvent,
    ) -> [u8; DIGEST_LEN] {
        let mut h = Sha256::new();
        h.update(prev);
        h.update(&index.to_be_bytes());
        h.update(&seq.to_be_bytes());
        h.update(&timestamp.to_be_bytes());
        h.update(event.to_string().as_bytes());
        h.finalize()
    }

    /// Appends an event.
    pub fn record(&mut self, event: AuditEvent) {
        let index = self.entries.len() as u64;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.clock += 1;
        let timestamp = self.clock;
        let prev = self
            .entries
            .last()
            .map(|e| e.digest)
            .unwrap_or([0u8; DIGEST_LEN]);
        let digest = Self::chain_digest(&prev, index, seq, timestamp, &event);
        self.entries.push(AuditEntry {
            index,
            seq,
            timestamp,
            event,
            digest,
        });
    }

    /// Lamport-merges an external logical clock: subsequent entries will
    /// carry timestamps strictly greater than `external`.
    pub fn observe_clock(&mut self, external: u64) {
        self.clock = self.clock.max(external);
    }

    /// The current logical time (timestamp of the most recent entry).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// All entries in order.
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// The head digest (commits to the whole history).
    pub fn head(&self) -> Option<[u8; DIGEST_LEN]> {
        self.entries.last().map(|e| e.digest)
    }

    /// Recomputes the chain; `true` iff no entry was altered, reordered
    /// or removed from the middle, sequence numbers are strictly
    /// increasing, and logical timestamps are strictly increasing.
    pub fn verify(&self) -> bool {
        let mut prev = [0u8; DIGEST_LEN];
        let mut last_seq: Option<u64> = None;
        let mut last_ts: Option<u64> = None;
        for (i, entry) in self.entries.iter().enumerate() {
            if entry.index != i as u64 {
                return false;
            }
            if last_seq.is_some_and(|s| entry.seq <= s)
                || last_ts.is_some_and(|t| entry.timestamp <= t)
            {
                return false;
            }
            let expect =
                Self::chain_digest(&prev, entry.index, entry.seq, entry.timestamp, &entry.event);
            if expect != entry.digest {
                return false;
            }
            prev = entry.digest;
            last_seq = Some(entry.seq);
            last_ts = Some(entry.timestamp);
        }
        true
    }

    /// Entries involving a given user id.
    pub fn for_user<'a>(&'a self, uid: &'a str) -> impl Iterator<Item = &'a AuditEntry> {
        self.entries.iter().filter(move |e| match &e.event {
            AuditEvent::UserAdded { uid: u }
            | AuditEvent::Granted { uid: u, .. }
            | AuditEvent::Read { uid: u, .. }
            | AuditEvent::Revoked { uid: u, .. } => u == uid,
            _ => false,
        })
    }

    /// Denied reads — the interesting rows for a security review.
    pub fn denials(&self) -> impl Iterator<Item = &AuditEntry> {
        self.entries
            .iter()
            .filter(|e| matches!(e.event, AuditEvent::Read { allowed: false, .. }))
    }

    /// `(aid, to_version)` pairs whose [`AuditEvent::RevocationBegun`]
    /// intent has no matching [`AuditEvent::RevocationCompleted`] — the
    /// revocations a crash left in flight. An empty answer is the audit
    /// log's view of "every revocation converged".
    pub fn incomplete_revocations(&self) -> Vec<(String, u64)> {
        let mut open: Vec<(String, u64)> = Vec::new();
        for entry in &self.entries {
            match &entry.event {
                AuditEvent::RevocationBegun {
                    aid, to_version, ..
                } => open.push((aid.clone(), *to_version)),
                AuditEvent::RevocationCompleted { aid, version } => {
                    open.retain(|(a, v)| !(a == aid && v == version));
                }
                _ => {}
            }
        }
        open
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> AuditLog {
        let mut log = AuditLog::new();
        log.record(AuditEvent::AuthorityAdded { aid: "Med".into() });
        log.record(AuditEvent::UserAdded {
            uid: "alice".into(),
        });
        log.record(AuditEvent::Granted {
            uid: "alice".into(),
            attributes: vec!["Doctor@Med".into()],
        });
        log.record(AuditEvent::Read {
            uid: "alice".into(),
            owner: "o".into(),
            record: "r".into(),
            component: "x".into(),
            allowed: true,
        });
        log.record(AuditEvent::Read {
            uid: "bob".into(),
            owner: "o".into(),
            record: "r".into(),
            component: "x".into(),
            allowed: false,
        });
        log
    }

    #[test]
    fn chain_verifies() {
        let log = sample_log();
        assert!(log.verify());
        assert_eq!(log.entries().len(), 5);
        assert!(log.head().is_some());
        assert!(AuditLog::new().verify());
        assert!(AuditLog::new().head().is_none());
    }

    #[test]
    fn tampering_detected() {
        let mut log = sample_log();
        // Flip the allowed bit of the denied read.
        if let AuditEvent::Read { allowed, .. } = &mut log.entries[4].event {
            *allowed = true;
        }
        assert!(!log.verify());
    }

    #[test]
    fn reorder_detected() {
        let mut log = sample_log();
        log.entries.swap(1, 2);
        assert!(!log.verify());
    }

    #[test]
    fn truncation_from_middle_detected() {
        let mut log = sample_log();
        log.entries.remove(2);
        assert!(!log.verify());
        // Truncating the tail is NOT detectable from the log alone (an
        // auditor must compare against a previously witnessed head).
        let mut log = sample_log();
        let old_head = log.head().unwrap();
        log.entries.pop();
        assert!(log.verify(), "tail truncation yields a valid shorter chain");
        assert_ne!(log.head().unwrap(), old_head, "but the head changed");
    }

    #[test]
    fn seq_and_timestamp_are_strictly_monotonic() {
        let log = sample_log();
        for pair in log.entries().windows(2) {
            assert!(pair[1].seq > pair[0].seq);
            assert!(pair[1].timestamp > pair[0].timestamp);
        }
        assert_eq!(log.clock(), log.entries().last().unwrap().timestamp);
    }

    #[test]
    fn timestamp_edit_detected() {
        let mut log = sample_log();
        log.entries[3].timestamp += 100;
        assert!(!log.verify(), "timestamp is committed to by the digest");
    }

    #[test]
    fn seq_edit_detected() {
        let mut log = sample_log();
        log.entries[2].seq = 99;
        assert!(
            !log.verify(),
            "sequence number is committed to by the digest"
        );
    }

    #[test]
    fn observed_external_clock_orders_later_entries() {
        let mut log = sample_log();
        let before = log.clock();
        log.observe_clock(before + 1000);
        log.record(AuditEvent::UserAdded { uid: "late".into() });
        let last = log.entries().last().unwrap();
        assert!(last.timestamp > before + 1000);
        assert!(log.verify());
        // Observing a clock in the past must not rewind time.
        log.observe_clock(0);
        log.record(AuditEvent::UserAdded {
            uid: "later".into(),
        });
        assert!(log.verify());
    }

    #[test]
    fn filters() {
        let log = sample_log();
        assert_eq!(log.for_user("alice").count(), 3);
        assert_eq!(log.for_user("bob").count(), 1);
        assert_eq!(log.denials().count(), 1);
    }

    #[test]
    fn display_is_informative() {
        let log = sample_log();
        let rendered: Vec<String> = log.entries().iter().map(|e| e.event.to_string()).collect();
        assert!(rendered[2].contains("Doctor@Med"));
        assert!(rendered[4].contains("DENIED"));
    }

    #[test]
    fn incomplete_revocations_track_begun_vs_completed() {
        let mut log = AuditLog::new();
        assert!(log.incomplete_revocations().is_empty());
        log.record(AuditEvent::RevocationBegun {
            uid: "alice".into(),
            aid: "Med".into(),
            from_version: 1,
            to_version: 2,
        });
        log.record(AuditEvent::RevocationBegun {
            uid: "bob".into(),
            aid: "Trial".into(),
            from_version: 1,
            to_version: 2,
        });
        assert_eq!(
            log.incomplete_revocations(),
            vec![("Med".to_string(), 2), ("Trial".to_string(), 2)]
        );
        log.record(AuditEvent::RevocationCompleted {
            aid: "Med".into(),
            version: 2,
        });
        assert_eq!(log.incomplete_revocations(), vec![("Trial".to_string(), 2)]);
        log.record(AuditEvent::RevocationRecovered {
            aid: "Trial".into(),
            version: 2,
        });
        log.record(AuditEvent::RevocationCompleted {
            aid: "Trial".into(),
            version: 2,
        });
        assert!(log.incomplete_revocations().is_empty());
        assert!(log.verify());
        // The new events render distinctly.
        let rendered: Vec<String> = log.entries().iter().map(|e| e.event.to_string()).collect();
        assert!(rendered[0].contains("revocation-begun alice @Med (v1->v2)"));
        assert!(rendered[2].contains("revocation-completed @Med"));
        assert!(rendered[3].contains("revocation-recovered @Trial"));
        assert!(rendered[4].contains("revocation-completed @Trial"));
    }
}
