//! Tamper-evident audit trail for system operations.
//!
//! Cloud-storage deployments need an account of *who did what*: grants,
//! publications, reads (allowed and denied), revocations. The trail is
//! hash-chained (each entry commits to its predecessor via SHA-256), so
//! truncation or in-place edits are detectable — a cheap integrity layer
//! appropriate for the semi-trusted server model.

use std::fmt;

use mabe_crypto::sha256::{Sha256, DIGEST_LEN};

/// The kind of event recorded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditEvent {
    /// An authority was registered.
    AuthorityAdded {
        /// Authority name.
        aid: String,
    },
    /// An owner was registered.
    OwnerAdded {
        /// Owner name.
        owner: String,
    },
    /// A user was registered.
    UserAdded {
        /// User name.
        uid: String,
    },
    /// Attributes were granted.
    Granted {
        /// Receiving user.
        uid: String,
        /// Granted attributes (canonical form).
        attributes: Vec<String>,
    },
    /// A record was published.
    Published {
        /// Publishing owner.
        owner: String,
        /// Record name.
        record: String,
        /// Component labels.
        components: Vec<String>,
    },
    /// A read attempt.
    Read {
        /// Reading user.
        uid: String,
        /// Record owner.
        owner: String,
        /// Record name.
        record: String,
        /// Component label.
        component: String,
        /// Whether decryption succeeded.
        allowed: bool,
    },
    /// An attribute (or whole user) revocation.
    Revoked {
        /// Affected user.
        uid: String,
        /// Revoked attributes.
        attributes: Vec<String>,
        /// Authority that performed it.
        aid: String,
        /// New key version.
        new_version: u64,
    },
}

impl fmt::Display for AuditEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditEvent::AuthorityAdded { aid } => write!(f, "authority+ {aid}"),
            AuditEvent::OwnerAdded { owner } => write!(f, "owner+ {owner}"),
            AuditEvent::UserAdded { uid } => write!(f, "user+ {uid}"),
            AuditEvent::Granted { uid, attributes } => {
                write!(f, "grant {uid} <- {}", attributes.join(","))
            }
            AuditEvent::Published { owner, record, components } => {
                write!(f, "publish {owner}/{record} [{}]", components.join(","))
            }
            AuditEvent::Read { uid, owner, record, component, allowed } => write!(
                f,
                "read {uid} {owner}/{record}/{component}: {}",
                if *allowed { "allowed" } else { "DENIED" }
            ),
            AuditEvent::Revoked { uid, attributes, aid, new_version } => write!(
                f,
                "revoke {uid} -{} @{aid} (v{new_version})",
                attributes.join(",")
            ),
        }
    }
}

/// One chained entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditEntry {
    /// Sequence number (0-based).
    pub index: u64,
    /// The event.
    pub event: AuditEvent,
    /// `SHA-256(prev_digest ‖ index ‖ display(event))`.
    pub digest: [u8; DIGEST_LEN],
}

/// The hash-chained trail.
#[derive(Clone, Debug, Default)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
}

impl AuditLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    fn chain_digest(prev: &[u8; DIGEST_LEN], index: u64, event: &AuditEvent) -> [u8; DIGEST_LEN] {
        let mut h = Sha256::new();
        h.update(prev);
        h.update(&index.to_be_bytes());
        h.update(event.to_string().as_bytes());
        h.finalize()
    }

    /// Appends an event.
    pub fn record(&mut self, event: AuditEvent) {
        let index = self.entries.len() as u64;
        let prev = self
            .entries
            .last()
            .map(|e| e.digest)
            .unwrap_or([0u8; DIGEST_LEN]);
        let digest = Self::chain_digest(&prev, index, &event);
        self.entries.push(AuditEntry { index, event, digest });
    }

    /// All entries in order.
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// The head digest (commits to the whole history).
    pub fn head(&self) -> Option<[u8; DIGEST_LEN]> {
        self.entries.last().map(|e| e.digest)
    }

    /// Recomputes the chain; `true` iff no entry was altered, reordered
    /// or removed from the middle.
    pub fn verify(&self) -> bool {
        let mut prev = [0u8; DIGEST_LEN];
        for (i, entry) in self.entries.iter().enumerate() {
            if entry.index != i as u64 {
                return false;
            }
            let expect = Self::chain_digest(&prev, entry.index, &entry.event);
            if expect != entry.digest {
                return false;
            }
            prev = entry.digest;
        }
        true
    }

    /// Entries involving a given user id.
    pub fn for_user<'a>(&'a self, uid: &'a str) -> impl Iterator<Item = &'a AuditEntry> {
        self.entries.iter().filter(move |e| match &e.event {
            AuditEvent::UserAdded { uid: u }
            | AuditEvent::Granted { uid: u, .. }
            | AuditEvent::Read { uid: u, .. }
            | AuditEvent::Revoked { uid: u, .. } => u == uid,
            _ => false,
        })
    }

    /// Denied reads — the interesting rows for a security review.
    pub fn denials(&self) -> impl Iterator<Item = &AuditEntry> {
        self.entries.iter().filter(|e| {
            matches!(e.event, AuditEvent::Read { allowed: false, .. })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> AuditLog {
        let mut log = AuditLog::new();
        log.record(AuditEvent::AuthorityAdded { aid: "Med".into() });
        log.record(AuditEvent::UserAdded { uid: "alice".into() });
        log.record(AuditEvent::Granted {
            uid: "alice".into(),
            attributes: vec!["Doctor@Med".into()],
        });
        log.record(AuditEvent::Read {
            uid: "alice".into(),
            owner: "o".into(),
            record: "r".into(),
            component: "x".into(),
            allowed: true,
        });
        log.record(AuditEvent::Read {
            uid: "bob".into(),
            owner: "o".into(),
            record: "r".into(),
            component: "x".into(),
            allowed: false,
        });
        log
    }

    #[test]
    fn chain_verifies() {
        let log = sample_log();
        assert!(log.verify());
        assert_eq!(log.entries().len(), 5);
        assert!(log.head().is_some());
        assert!(AuditLog::new().verify());
        assert!(AuditLog::new().head().is_none());
    }

    #[test]
    fn tampering_detected() {
        let mut log = sample_log();
        // Flip the allowed bit of the denied read.
        if let AuditEvent::Read { allowed, .. } = &mut log.entries[4].event {
            *allowed = true;
        }
        assert!(!log.verify());
    }

    #[test]
    fn reorder_detected() {
        let mut log = sample_log();
        log.entries.swap(1, 2);
        assert!(!log.verify());
    }

    #[test]
    fn truncation_from_middle_detected() {
        let mut log = sample_log();
        log.entries.remove(2);
        assert!(!log.verify());
        // Truncating the tail is NOT detectable from the log alone (an
        // auditor must compare against a previously witnessed head).
        let mut log = sample_log();
        let old_head = log.head().unwrap();
        log.entries.pop();
        assert!(log.verify(), "tail truncation yields a valid shorter chain");
        assert_ne!(log.head().unwrap(), old_head, "but the head changed");
    }

    #[test]
    fn filters() {
        let log = sample_log();
        assert_eq!(log.for_user("alice").count(), 3);
        assert_eq!(log.for_user("bob").count(), 1);
        assert_eq!(log.denials().count(), 1);
    }

    #[test]
    fn display_is_informative() {
        let log = sample_log();
        let rendered: Vec<String> =
            log.entries().iter().map(|e| e.event.to_string()).collect();
        assert!(rendered[2].contains("Doctor@Med"));
        assert!(rendered[4].contains("DENIED"));
    }
}
