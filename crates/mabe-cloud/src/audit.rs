//! Tamper-evident audit trail for system operations.
//!
//! Cloud-storage deployments need an account of *who did what*: grants,
//! publications, reads (allowed and denied), revocations. The trail is
//! hash-chained (each entry commits to its predecessor via SHA-256), so
//! truncation or in-place edits are detectable — a cheap integrity layer
//! appropriate for the semi-trusted server model.

use std::fmt;

use mabe_crypto::sha256::{Sha256, DIGEST_LEN};

/// Magic header of a serialized audit log.
pub(crate) const AUDIT_MAGIC: &[u8; 8] = b"MAUD0001";

/// Why a serialized audit log was rejected by [`AuditLog::load`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditLoadError {
    /// The bytes do not parse (bad magic, truncation, unknown event
    /// tag, trailing garbage, or inconsistent header counters).
    Malformed(&'static str),
    /// Entry `index` fails the hash chain: its digest does not commit
    /// to its predecessor and its own fields — an in-place edit or a
    /// splice from another log.
    ChainBroken {
        /// 0-based position of the first failing entry.
        index: u64,
    },
    /// Entry `index` violates ordering: its position, sequence number,
    /// or logical timestamp is not strictly increasing — entries were
    /// reordered or renumbered.
    Reordered {
        /// 0-based position of the first failing entry.
        index: u64,
    },
}

impl fmt::Display for AuditLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditLoadError::Malformed(what) => write!(f, "malformed audit log: {what}"),
            AuditLoadError::ChainBroken { index } => {
                write!(f, "audit hash chain broken at entry {index}")
            }
            AuditLoadError::Reordered { index } => {
                write!(f, "audit entries reordered at entry {index}")
            }
        }
    }
}

impl std::error::Error for AuditLoadError {}

/// The kind of event recorded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditEvent {
    /// An authority was registered.
    AuthorityAdded {
        /// Authority name.
        aid: String,
    },
    /// An owner was registered.
    OwnerAdded {
        /// Owner name.
        owner: String,
    },
    /// A user was registered.
    UserAdded {
        /// User name.
        uid: String,
    },
    /// Attributes were granted.
    Granted {
        /// Receiving user.
        uid: String,
        /// Granted attributes (canonical form).
        attributes: Vec<String>,
    },
    /// A record was published.
    Published {
        /// Publishing owner.
        owner: String,
        /// Record name.
        record: String,
        /// Component labels.
        components: Vec<String>,
    },
    /// A read attempt.
    Read {
        /// Reading user.
        uid: String,
        /// Record owner.
        owner: String,
        /// Record name.
        record: String,
        /// Component label.
        component: String,
        /// Whether decryption succeeded.
        allowed: bool,
    },
    /// An attribute (or whole user) revocation.
    Revoked {
        /// Affected user.
        uid: String,
        /// Revoked attributes.
        attributes: Vec<String>,
        /// Authority that performed it.
        aid: String,
        /// New key version.
        new_version: u64,
    },
    /// The journaled **intent** of a revocation: the authority has
    /// re-keyed (phase 1), but update-key delivery and proxy
    /// re-encryption (phase 2) have not completed. A `RevocationBegun`
    /// without a matching `RevocationCompleted` marks an in-flight
    /// revocation that [`crate::CloudSystem::recover`] must roll
    /// forward.
    RevocationBegun {
        /// Affected user.
        uid: String,
        /// Authority that re-keyed.
        aid: String,
        /// Version before the re-key.
        from_version: u64,
        /// Version being moved to.
        to_version: u64,
    },
    /// Phase 2 finished: every update key was delivered (or queued for
    /// offline users) and every affected ciphertext re-encrypted.
    RevocationCompleted {
        /// The authority whose revocation converged.
        aid: String,
        /// The version the system converged to.
        version: u64,
    },
    /// A revocation that had crashed mid-flight was rolled forward to
    /// completion by [`crate::CloudSystem::recover`].
    RevocationRecovered {
        /// The authority whose revocation was recovered.
        aid: String,
        /// The version the system converged to.
        version: u64,
    },
    /// The **security-complete** point of a lazy revocation: the
    /// authority re-keyed, fresh reduced keys reached the revoked user,
    /// update keys reached every holder and owner — but server-side
    /// re-encryption was parked on the pending-upgrade queue instead of
    /// running inline. The version check already denies the revoked
    /// user, so a `RevocationDeferred` closes the matching
    /// [`AuditEvent::RevocationBegun`] intent for security purposes;
    /// ciphertext convergence is tracked separately by
    /// [`AuditEvent::RevocationConverged`].
    RevocationDeferred {
        /// The authority whose re-encryption was deferred.
        aid: String,
        /// The version the deferred upgrade will converge to.
        version: u64,
    },
    /// A deferred re-encryption batch drained: every component of the
    /// authority reached `version` (through the background drain,
    /// read-triggered upgrades, or both).
    RevocationConverged {
        /// The authority whose ciphertexts converged.
        aid: String,
        /// The version every affected component now carries.
        version: u64,
    },
}

impl fmt::Display for AuditEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditEvent::AuthorityAdded { aid } => write!(f, "authority+ {aid}"),
            AuditEvent::OwnerAdded { owner } => write!(f, "owner+ {owner}"),
            AuditEvent::UserAdded { uid } => write!(f, "user+ {uid}"),
            AuditEvent::Granted { uid, attributes } => {
                write!(f, "grant {uid} <- {}", attributes.join(","))
            }
            AuditEvent::Published {
                owner,
                record,
                components,
            } => {
                write!(f, "publish {owner}/{record} [{}]", components.join(","))
            }
            AuditEvent::Read {
                uid,
                owner,
                record,
                component,
                allowed,
            } => write!(
                f,
                "read {uid} {owner}/{record}/{component}: {}",
                if *allowed { "allowed" } else { "DENIED" }
            ),
            AuditEvent::Revoked {
                uid,
                attributes,
                aid,
                new_version,
            } => write!(
                f,
                "revoke {uid} -{} @{aid} (v{new_version})",
                attributes.join(",")
            ),
            AuditEvent::RevocationBegun {
                uid,
                aid,
                from_version,
                to_version,
            } => write!(
                f,
                "revocation-begun {uid} @{aid} (v{from_version}->v{to_version})"
            ),
            AuditEvent::RevocationCompleted { aid, version } => {
                write!(f, "revocation-completed @{aid} (v{version})")
            }
            AuditEvent::RevocationRecovered { aid, version } => {
                write!(f, "revocation-recovered @{aid} (v{version})")
            }
            AuditEvent::RevocationDeferred { aid, version } => {
                write!(f, "revocation-deferred @{aid} (v{version})")
            }
            AuditEvent::RevocationConverged { aid, version } => {
                write!(f, "revocation-converged @{aid} (v{version})")
            }
        }
    }
}

/// One chained entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditEntry {
    /// Position in the log (0-based).
    pub index: u64,
    /// Monotonic sequence number drawn from the log's own counter. It
    /// survives independent of position, so a verifier who witnessed an
    /// earlier `seq` can prove later re-numbering.
    pub seq: u64,
    /// Logical (Lamport) timestamp at record time: strictly increasing,
    /// and advanceable past external clocks via
    /// [`AuditLog::observe_clock`] to order entries across components.
    pub timestamp: u64,
    /// The event.
    pub event: AuditEvent,
    /// `SHA-256(prev_digest ‖ index ‖ seq ‖ timestamp ‖ display(event))`.
    pub digest: [u8; DIGEST_LEN],
}

/// The hash-chained trail.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
    next_seq: u64,
    clock: u64,
}

impl AuditLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    fn chain_digest(
        prev: &[u8; DIGEST_LEN],
        index: u64,
        seq: u64,
        timestamp: u64,
        event: &AuditEvent,
    ) -> [u8; DIGEST_LEN] {
        let mut h = Sha256::new();
        h.update(prev);
        h.update(&index.to_be_bytes());
        h.update(&seq.to_be_bytes());
        h.update(&timestamp.to_be_bytes());
        h.update(event.to_string().as_bytes());
        h.finalize()
    }

    /// Appends an event.
    pub fn record(&mut self, event: AuditEvent) {
        let index = self.entries.len() as u64;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.clock += 1;
        let timestamp = self.clock;
        let prev = self
            .entries
            .last()
            .map(|e| e.digest)
            .unwrap_or([0u8; DIGEST_LEN]);
        let digest = Self::chain_digest(&prev, index, seq, timestamp, &event);
        self.entries.push(AuditEntry {
            index,
            seq,
            timestamp,
            event,
            digest,
        });
    }

    /// Lamport-merges an external logical clock: subsequent entries will
    /// carry timestamps strictly greater than `external`.
    pub fn observe_clock(&mut self, external: u64) {
        self.clock = self.clock.max(external);
    }

    /// The current logical time (timestamp of the most recent entry).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// All entries in order.
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// The head digest (commits to the whole history).
    pub fn head(&self) -> Option<[u8; DIGEST_LEN]> {
        self.entries.last().map(|e| e.digest)
    }

    /// Recomputes the chain; `true` iff no entry was altered, reordered
    /// or removed from the middle, sequence numbers are strictly
    /// increasing, and logical timestamps are strictly increasing.
    pub fn verify(&self) -> bool {
        let mut prev = [0u8; DIGEST_LEN];
        let mut last_seq: Option<u64> = None;
        let mut last_ts: Option<u64> = None;
        for (i, entry) in self.entries.iter().enumerate() {
            if entry.index != i as u64 {
                return false;
            }
            if last_seq.is_some_and(|s| entry.seq <= s)
                || last_ts.is_some_and(|t| entry.timestamp <= t)
            {
                return false;
            }
            let expect =
                Self::chain_digest(&prev, entry.index, entry.seq, entry.timestamp, &entry.event);
            if expect != entry.digest {
                return false;
            }
            prev = entry.digest;
            last_seq = Some(entry.seq);
            last_ts = Some(entry.timestamp);
        }
        true
    }

    /// Entries involving a given user id.
    pub fn for_user<'a>(&'a self, uid: &'a str) -> impl Iterator<Item = &'a AuditEntry> {
        self.entries.iter().filter(move |e| match &e.event {
            AuditEvent::UserAdded { uid: u }
            | AuditEvent::Granted { uid: u, .. }
            | AuditEvent::Read { uid: u, .. }
            | AuditEvent::Revoked { uid: u, .. } => u == uid,
            _ => false,
        })
    }

    /// Denied reads — the interesting rows for a security review.
    pub fn denials(&self) -> impl Iterator<Item = &AuditEntry> {
        self.entries
            .iter()
            .filter(|e| matches!(e.event, AuditEvent::Read { allowed: false, .. }))
    }

    /// Serializes the log (header counters and every chained entry) for
    /// durable storage. [`Self::load`] re-verifies the chain, so stored
    /// bytes need no additional integrity envelope.
    pub fn save(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(AUDIT_MAGIC);
        out.extend_from_slice(&self.next_seq.to_be_bytes());
        out.extend_from_slice(&self.clock.to_be_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_be_bytes());
        for entry in &self.entries {
            out.extend_from_slice(&entry_bytes(entry));
        }
        out
    }

    /// The `(next_seq, clock)` header counters, as persisted alongside
    /// the entries by [`Self::save`]. The typed keyspace stores these in
    /// its `Meta` table and the entries as per-index rows.
    pub(crate) fn counters(&self) -> (u64, u64) {
        (self.next_seq, self.clock)
    }

    /// Deserializes and **re-verifies** a log produced by [`Self::save`]:
    /// every digest is recomputed against its predecessor and ordering is
    /// checked, so a tampered, reordered, or spliced log is rejected with
    /// a typed error instead of being trusted.
    ///
    /// # Errors
    ///
    /// [`AuditLoadError::Malformed`] for unparseable bytes or
    /// inconsistent header counters, [`AuditLoadError::ChainBroken`] for
    /// the first entry whose digest does not verify, and
    /// [`AuditLoadError::Reordered`] for the first entry out of order.
    pub fn load(bytes: &[u8]) -> Result<Self, AuditLoadError> {
        let mut r = wire::Reader::new(bytes);
        if r.bytes(8)? != AUDIT_MAGIC {
            return Err(AuditLoadError::Malformed("bad audit magic"));
        }
        let next_seq = r.u64()?;
        let clock = r.u64()?;
        let n = r.u32()? as usize;
        if n > bytes.len() {
            // Cheap bound: every entry costs well over one byte.
            return Err(AuditLoadError::Malformed("entry count exceeds input"));
        }
        let mut entries = Vec::with_capacity(n);
        let mut prev = [0u8; DIGEST_LEN];
        let mut last_seq: Option<u64> = None;
        let mut last_ts: Option<u64> = None;
        for i in 0..n as u64 {
            let index = r.u64()?;
            let seq = r.u64()?;
            let timestamp = r.u64()?;
            let event = wire::get_event(&mut r)?;
            let mut digest = [0u8; DIGEST_LEN];
            digest.copy_from_slice(r.bytes(DIGEST_LEN)?);
            if index != i
                || last_seq.is_some_and(|s| seq <= s)
                || last_ts.is_some_and(|t| timestamp <= t)
            {
                return Err(AuditLoadError::Reordered { index: i });
            }
            if Self::chain_digest(&prev, index, seq, timestamp, &event) != digest {
                return Err(AuditLoadError::ChainBroken { index: i });
            }
            prev = digest;
            last_seq = Some(seq);
            last_ts = Some(timestamp);
            entries.push(AuditEntry {
                index,
                seq,
                timestamp,
                event,
                digest,
            });
        }
        if !r.is_empty() {
            return Err(AuditLoadError::Malformed("trailing bytes"));
        }
        if last_seq.is_some_and(|s| next_seq <= s) {
            return Err(AuditLoadError::Malformed("sequence counter behind entries"));
        }
        if last_ts.is_some_and(|t| clock < t) {
            return Err(AuditLoadError::Malformed("clock behind entries"));
        }
        Ok(AuditLog {
            entries,
            next_seq,
            clock,
        })
    }

    /// `(aid, to_version)` pairs whose [`AuditEvent::RevocationBegun`]
    /// intent has no matching [`AuditEvent::RevocationCompleted`] **or**
    /// [`AuditEvent::RevocationDeferred`] — the revocations a crash left
    /// in flight. A deferred revocation is security-complete (keys
    /// moved, version bumped; only ciphertext upgrades remain queued),
    /// so it does not count as incomplete here. An empty answer is the
    /// audit log's view of "every revocation's security phase
    /// converged".
    pub fn incomplete_revocations(&self) -> Vec<(String, u64)> {
        let mut open: Vec<(String, u64)> = Vec::new();
        for entry in &self.entries {
            match &entry.event {
                AuditEvent::RevocationBegun {
                    aid, to_version, ..
                } => open.push((aid.clone(), *to_version)),
                AuditEvent::RevocationCompleted { aid, version }
                | AuditEvent::RevocationDeferred { aid, version } => {
                    open.retain(|(a, v)| !(a == aid && v == version));
                }
                _ => {}
            }
        }
        open
    }
}

/// One entry's serialized section, byte-for-byte the per-entry slice of
/// [`AuditLog::save`]'s output. The typed keyspace persists entries as
/// individual `Audit` rows holding exactly these bytes, so concatenating
/// the rows under a reconstructed header reproduces the legacy blob.
pub(crate) fn entry_bytes(entry: &AuditEntry) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&entry.index.to_be_bytes());
    out.extend_from_slice(&entry.seq.to_be_bytes());
    out.extend_from_slice(&entry.timestamp.to_be_bytes());
    wire::put_event(&mut out, &entry.event);
    out.extend_from_slice(&entry.digest);
    out
}

/// Minimal framing for audit persistence: big-endian integers,
/// u32-length-prefixed UTF-8 strings, u8-tagged events.
mod wire {
    use super::{AuditEvent, AuditLoadError};

    pub(super) struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        pub(super) fn new(buf: &'a [u8]) -> Self {
            Reader { buf, pos: 0 }
        }

        pub(super) fn bytes(&mut self, n: usize) -> Result<&'a [u8], AuditLoadError> {
            if self.buf.len() - self.pos < n {
                return Err(AuditLoadError::Malformed("truncated"));
            }
            let out = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(out)
        }

        pub(super) fn u8(&mut self) -> Result<u8, AuditLoadError> {
            Ok(self.bytes(1)?[0])
        }

        pub(super) fn u32(&mut self) -> Result<u32, AuditLoadError> {
            Ok(u32::from_be_bytes(self.bytes(4)?.try_into().unwrap()))
        }

        pub(super) fn u64(&mut self) -> Result<u64, AuditLoadError> {
            Ok(u64::from_be_bytes(self.bytes(8)?.try_into().unwrap()))
        }

        pub(super) fn is_empty(&self) -> bool {
            self.pos == self.buf.len()
        }

        fn string(&mut self) -> Result<String, AuditLoadError> {
            let len = self.u32()? as usize;
            if len > self.buf.len() - self.pos {
                return Err(AuditLoadError::Malformed("string length exceeds input"));
            }
            String::from_utf8(self.bytes(len)?.to_vec())
                .map_err(|_| AuditLoadError::Malformed("invalid utf-8"))
        }

        fn strings(&mut self) -> Result<Vec<String>, AuditLoadError> {
            let n = self.u32()? as usize;
            if n > self.buf.len() - self.pos {
                return Err(AuditLoadError::Malformed("list length exceeds input"));
            }
            (0..n).map(|_| self.string()).collect()
        }
    }

    fn put_string(out: &mut Vec<u8>, s: &str) {
        out.extend_from_slice(&(s.len() as u32).to_be_bytes());
        out.extend_from_slice(s.as_bytes());
    }

    fn put_strings(out: &mut Vec<u8>, items: &[String]) {
        out.extend_from_slice(&(items.len() as u32).to_be_bytes());
        for s in items {
            put_string(out, s);
        }
    }

    pub(super) fn put_event(out: &mut Vec<u8>, event: &AuditEvent) {
        match event {
            AuditEvent::AuthorityAdded { aid } => {
                out.push(1);
                put_string(out, aid);
            }
            AuditEvent::OwnerAdded { owner } => {
                out.push(2);
                put_string(out, owner);
            }
            AuditEvent::UserAdded { uid } => {
                out.push(3);
                put_string(out, uid);
            }
            AuditEvent::Granted { uid, attributes } => {
                out.push(4);
                put_string(out, uid);
                put_strings(out, attributes);
            }
            AuditEvent::Published {
                owner,
                record,
                components,
            } => {
                out.push(5);
                put_string(out, owner);
                put_string(out, record);
                put_strings(out, components);
            }
            AuditEvent::Read {
                uid,
                owner,
                record,
                component,
                allowed,
            } => {
                out.push(6);
                put_string(out, uid);
                put_string(out, owner);
                put_string(out, record);
                put_string(out, component);
                out.push(u8::from(*allowed));
            }
            AuditEvent::Revoked {
                uid,
                attributes,
                aid,
                new_version,
            } => {
                out.push(7);
                put_string(out, uid);
                put_strings(out, attributes);
                put_string(out, aid);
                out.extend_from_slice(&new_version.to_be_bytes());
            }
            AuditEvent::RevocationBegun {
                uid,
                aid,
                from_version,
                to_version,
            } => {
                out.push(8);
                put_string(out, uid);
                put_string(out, aid);
                out.extend_from_slice(&from_version.to_be_bytes());
                out.extend_from_slice(&to_version.to_be_bytes());
            }
            AuditEvent::RevocationCompleted { aid, version } => {
                out.push(9);
                put_string(out, aid);
                out.extend_from_slice(&version.to_be_bytes());
            }
            AuditEvent::RevocationRecovered { aid, version } => {
                out.push(10);
                put_string(out, aid);
                out.extend_from_slice(&version.to_be_bytes());
            }
            AuditEvent::RevocationDeferred { aid, version } => {
                out.push(11);
                put_string(out, aid);
                out.extend_from_slice(&version.to_be_bytes());
            }
            AuditEvent::RevocationConverged { aid, version } => {
                out.push(12);
                put_string(out, aid);
                out.extend_from_slice(&version.to_be_bytes());
            }
        }
    }

    pub(super) fn get_event(r: &mut Reader<'_>) -> Result<AuditEvent, AuditLoadError> {
        Ok(match r.u8()? {
            1 => AuditEvent::AuthorityAdded { aid: r.string()? },
            2 => AuditEvent::OwnerAdded { owner: r.string()? },
            3 => AuditEvent::UserAdded { uid: r.string()? },
            4 => AuditEvent::Granted {
                uid: r.string()?,
                attributes: r.strings()?,
            },
            5 => AuditEvent::Published {
                owner: r.string()?,
                record: r.string()?,
                components: r.strings()?,
            },
            6 => AuditEvent::Read {
                uid: r.string()?,
                owner: r.string()?,
                record: r.string()?,
                component: r.string()?,
                allowed: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(AuditLoadError::Malformed("bad boolean")),
                },
            },
            7 => AuditEvent::Revoked {
                uid: r.string()?,
                attributes: r.strings()?,
                aid: r.string()?,
                new_version: r.u64()?,
            },
            8 => AuditEvent::RevocationBegun {
                uid: r.string()?,
                aid: r.string()?,
                from_version: r.u64()?,
                to_version: r.u64()?,
            },
            9 => AuditEvent::RevocationCompleted {
                aid: r.string()?,
                version: r.u64()?,
            },
            10 => AuditEvent::RevocationRecovered {
                aid: r.string()?,
                version: r.u64()?,
            },
            11 => AuditEvent::RevocationDeferred {
                aid: r.string()?,
                version: r.u64()?,
            },
            12 => AuditEvent::RevocationConverged {
                aid: r.string()?,
                version: r.u64()?,
            },
            _ => return Err(AuditLoadError::Malformed("unknown event tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> AuditLog {
        let mut log = AuditLog::new();
        log.record(AuditEvent::AuthorityAdded { aid: "Med".into() });
        log.record(AuditEvent::UserAdded {
            uid: "alice".into(),
        });
        log.record(AuditEvent::Granted {
            uid: "alice".into(),
            attributes: vec!["Doctor@Med".into()],
        });
        log.record(AuditEvent::Read {
            uid: "alice".into(),
            owner: "o".into(),
            record: "r".into(),
            component: "x".into(),
            allowed: true,
        });
        log.record(AuditEvent::Read {
            uid: "bob".into(),
            owner: "o".into(),
            record: "r".into(),
            component: "x".into(),
            allowed: false,
        });
        log
    }

    #[test]
    fn chain_verifies() {
        let log = sample_log();
        assert!(log.verify());
        assert_eq!(log.entries().len(), 5);
        assert!(log.head().is_some());
        assert!(AuditLog::new().verify());
        assert!(AuditLog::new().head().is_none());
    }

    #[test]
    fn tampering_detected() {
        let mut log = sample_log();
        // Flip the allowed bit of the denied read.
        if let AuditEvent::Read { allowed, .. } = &mut log.entries[4].event {
            *allowed = true;
        }
        assert!(!log.verify());
    }

    #[test]
    fn reorder_detected() {
        let mut log = sample_log();
        log.entries.swap(1, 2);
        assert!(!log.verify());
    }

    #[test]
    fn truncation_from_middle_detected() {
        let mut log = sample_log();
        log.entries.remove(2);
        assert!(!log.verify());
        // Truncating the tail is NOT detectable from the log alone (an
        // auditor must compare against a previously witnessed head).
        let mut log = sample_log();
        let old_head = log.head().unwrap();
        log.entries.pop();
        assert!(log.verify(), "tail truncation yields a valid shorter chain");
        assert_ne!(log.head().unwrap(), old_head, "but the head changed");
    }

    #[test]
    fn seq_and_timestamp_are_strictly_monotonic() {
        let log = sample_log();
        for pair in log.entries().windows(2) {
            assert!(pair[1].seq > pair[0].seq);
            assert!(pair[1].timestamp > pair[0].timestamp);
        }
        assert_eq!(log.clock(), log.entries().last().unwrap().timestamp);
    }

    #[test]
    fn timestamp_edit_detected() {
        let mut log = sample_log();
        log.entries[3].timestamp += 100;
        assert!(!log.verify(), "timestamp is committed to by the digest");
    }

    #[test]
    fn seq_edit_detected() {
        let mut log = sample_log();
        log.entries[2].seq = 99;
        assert!(
            !log.verify(),
            "sequence number is committed to by the digest"
        );
    }

    #[test]
    fn observed_external_clock_orders_later_entries() {
        let mut log = sample_log();
        let before = log.clock();
        log.observe_clock(before + 1000);
        log.record(AuditEvent::UserAdded { uid: "late".into() });
        let last = log.entries().last().unwrap();
        assert!(last.timestamp > before + 1000);
        assert!(log.verify());
        // Observing a clock in the past must not rewind time.
        log.observe_clock(0);
        log.record(AuditEvent::UserAdded {
            uid: "later".into(),
        });
        assert!(log.verify());
    }

    #[test]
    fn filters() {
        let log = sample_log();
        assert_eq!(log.for_user("alice").count(), 3);
        assert_eq!(log.for_user("bob").count(), 1);
        assert_eq!(log.denials().count(), 1);
    }

    #[test]
    fn display_is_informative() {
        let log = sample_log();
        let rendered: Vec<String> = log.entries().iter().map(|e| e.event.to_string()).collect();
        assert!(rendered[2].contains("Doctor@Med"));
        assert!(rendered[4].contains("DENIED"));
    }

    /// A log exercising every event variant (so save/load covers all
    /// tags).
    fn full_log() -> AuditLog {
        let mut log = sample_log();
        log.record(AuditEvent::OwnerAdded { owner: "o".into() });
        log.record(AuditEvent::Published {
            owner: "o".into(),
            record: "r".into(),
            components: vec!["x".into(), "y".into()],
        });
        log.record(AuditEvent::Revoked {
            uid: "alice".into(),
            attributes: vec!["Doctor@Med".into()],
            aid: "Med".into(),
            new_version: 2,
        });
        log.record(AuditEvent::RevocationBegun {
            uid: "alice".into(),
            aid: "Med".into(),
            from_version: 1,
            to_version: 2,
        });
        log.record(AuditEvent::RevocationRecovered {
            aid: "Med".into(),
            version: 2,
        });
        log.record(AuditEvent::RevocationCompleted {
            aid: "Med".into(),
            version: 2,
        });
        log.record(AuditEvent::RevocationDeferred {
            aid: "Med".into(),
            version: 3,
        });
        log.record(AuditEvent::RevocationConverged {
            aid: "Med".into(),
            version: 3,
        });
        log
    }

    #[test]
    fn save_load_roundtrips_every_event_variant() {
        let log = full_log();
        let bytes = log.save();
        let restored = AuditLog::load(&bytes).unwrap();
        assert_eq!(restored.entries(), log.entries());
        assert_eq!(restored.clock(), log.clock());
        assert!(restored.verify());
        // The restored log continues the chain seamlessly.
        let mut restored = restored;
        restored.record(AuditEvent::UserAdded { uid: "next".into() });
        assert!(restored.verify());
        assert!(restored.entries().last().unwrap().seq > log.entries().last().unwrap().seq);
    }

    #[test]
    fn load_rejects_tampered_entry_with_chain_broken() {
        let log = full_log();
        let mut bytes = log.save();
        // Flip one payload byte somewhere past the header: either a
        // parse failure or a broken chain, never silent acceptance.
        // Find the byte position of entry 2's event by re-encoding.
        let mut tampered_hits = 0;
        for pos in 28..bytes.len() {
            bytes[pos] ^= 0x01;
            match AuditLog::load(&bytes) {
                Ok(loaded) => {
                    assert_eq!(
                        loaded.entries(),
                        log.entries(),
                        "undetected change at {pos}"
                    );
                }
                Err(AuditLoadError::ChainBroken { .. }) => tampered_hits += 1,
                Err(_) => {}
            }
            bytes[pos] ^= 0x01;
        }
        assert!(tampered_hits > 0, "no flip ever hit the chain check");
    }

    #[test]
    fn load_rejects_reordered_entries() {
        // Hand-build a log whose chain digests are all valid but whose
        // second sequence number goes backwards: an adversary re-minting
        // digests cannot also fix ordering without being caught.
        let mut log = AuditLog::new();
        let e0 = AuditEvent::UserAdded { uid: "a".into() };
        let d0 = AuditLog::chain_digest(&[0u8; DIGEST_LEN], 0, 5, 5, &e0);
        let e1 = AuditEvent::UserAdded { uid: "b".into() };
        let d1 = AuditLog::chain_digest(&d0, 1, 3, 6, &e1);
        log.entries.push(AuditEntry {
            index: 0,
            seq: 5,
            timestamp: 5,
            event: e0,
            digest: d0,
        });
        log.entries.push(AuditEntry {
            index: 1,
            seq: 3, // went backwards
            timestamp: 6,
            event: e1,
            digest: d1,
        });
        log.next_seq = 6;
        log.clock = 6;
        let bytes = log.save();
        assert_eq!(
            AuditLog::load(&bytes),
            Err(AuditLoadError::Reordered { index: 1 })
        );
    }

    #[test]
    fn load_rejects_malformed_headers_and_truncation() {
        let log = full_log();
        let bytes = log.save();
        assert_eq!(
            AuditLog::load(b"not an audit log"),
            Err(AuditLoadError::Malformed("bad audit magic"))
        );
        for cut in 0..bytes.len() {
            assert!(AuditLog::load(&bytes[..cut]).is_err(), "cut {cut} accepted");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(
            AuditLog::load(&extended),
            Err(AuditLoadError::Malformed("trailing bytes"))
        );
        // Header counters must not lag the entries they describe.
        let mut behind = bytes.clone();
        behind[8..16].copy_from_slice(&0u64.to_be_bytes());
        assert_eq!(
            AuditLog::load(&behind),
            Err(AuditLoadError::Malformed("sequence counter behind entries"))
        );
        let mut behind = bytes;
        behind[16..24].copy_from_slice(&0u64.to_be_bytes());
        assert_eq!(
            AuditLog::load(&behind),
            Err(AuditLoadError::Malformed("clock behind entries"))
        );
    }

    #[test]
    fn empty_log_roundtrips() {
        let log = AuditLog::new();
        let restored = AuditLog::load(&log.save()).unwrap();
        assert!(restored.entries().is_empty());
        assert!(restored.verify());
    }

    #[test]
    fn incomplete_revocations_track_begun_vs_completed() {
        let mut log = AuditLog::new();
        assert!(log.incomplete_revocations().is_empty());
        log.record(AuditEvent::RevocationBegun {
            uid: "alice".into(),
            aid: "Med".into(),
            from_version: 1,
            to_version: 2,
        });
        log.record(AuditEvent::RevocationBegun {
            uid: "bob".into(),
            aid: "Trial".into(),
            from_version: 1,
            to_version: 2,
        });
        assert_eq!(
            log.incomplete_revocations(),
            vec![("Med".to_string(), 2), ("Trial".to_string(), 2)]
        );
        log.record(AuditEvent::RevocationCompleted {
            aid: "Med".into(),
            version: 2,
        });
        assert_eq!(log.incomplete_revocations(), vec![("Trial".to_string(), 2)]);
        log.record(AuditEvent::RevocationRecovered {
            aid: "Trial".into(),
            version: 2,
        });
        log.record(AuditEvent::RevocationCompleted {
            aid: "Trial".into(),
            version: 2,
        });
        assert!(log.incomplete_revocations().is_empty());
        assert!(log.verify());
        // The new events render distinctly.
        let rendered: Vec<String> = log.entries().iter().map(|e| e.event.to_string()).collect();
        assert!(rendered[0].contains("revocation-begun alice @Med (v1->v2)"));
        assert!(rendered[2].contains("revocation-completed @Med"));
        assert!(rendered[3].contains("revocation-recovered @Trial"));
        assert!(rendered[4].contains("revocation-completed @Trial"));
    }

    #[test]
    fn deferred_revocation_is_security_complete() {
        let mut log = AuditLog::new();
        log.record(AuditEvent::RevocationBegun {
            uid: "alice".into(),
            aid: "Med".into(),
            from_version: 1,
            to_version: 2,
        });
        assert_eq!(log.incomplete_revocations(), vec![("Med".to_string(), 2)]);
        // Deferring closes the intent: keys moved and the version check
        // already denies alice — only ciphertext upgrades remain queued.
        log.record(AuditEvent::RevocationDeferred {
            aid: "Med".into(),
            version: 2,
        });
        assert!(log.incomplete_revocations().is_empty());
        log.record(AuditEvent::RevocationConverged {
            aid: "Med".into(),
            version: 2,
        });
        assert!(log.incomplete_revocations().is_empty());
        assert!(log.verify());
        let rendered: Vec<String> = log.entries().iter().map(|e| e.event.to_string()).collect();
        assert!(rendered[1].contains("revocation-deferred @Med (v2)"));
        assert!(rendered[2].contains("revocation-converged @Med (v2)"));
    }
}
