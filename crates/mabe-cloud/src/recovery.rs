//! Crash-safe revocation: the journaled two-phase state machine.
//!
//! The paper's revocation (§V-C) is a distributed exchange with three
//! legs after the authority's `ReKey`:
//!
//! 1. fresh (attribute-reduced) secret keys to the revoked user,
//! 2. update keys `UK_AID` to every non-revoked holder and every owner,
//! 3. owner-produced update information and server-side proxy
//!    re-encryption of every affected ciphertext.
//!
//! In-process, the seed implementation ran these as one infallible
//! sequence; under a mid-flight crash that leaves keys and ciphertexts
//! silently inconsistent (holders at v2 but ciphertexts at v1, or a
//! revoked user who can still decrypt a not-yet-re-encrypted record).
//!
//! This module makes the exchange *journaled and resumable*: when the
//! authority re-keys, the [`crate::CloudSystem`] records a
//! [`crate::AuditEvent::RevocationBegun`] intent and parks a
//! [`PendingRevocation`] carrying the full
//! [`mabe_core::RevocationEvent`]. The driver then walks the
//! [`RevocationStage`]s, checkpointing per-holder delivery and per-owner
//! updates so that a crash (injected via `mabe-faults` or real) can be
//! rolled **forward** by [`crate::CloudSystem::recover`] without
//! re-applying anything twice:
//!
//! * fresh-key and update-key delivery is guarded by explicit
//!   checkpoint sets (`delivered_holders`, `updated_owners`);
//! * key application tolerates "already at the target version", so an
//!   injected duplicate delivery is harmless;
//! * re-encryption derives its worklist from
//!   [`crate::CloudServer::affected_ciphertexts`], which only returns
//!   components still at the old version — replaying a half-finished
//!   phase 3 naturally skips what was already re-encrypted.
//!
//! Convergence is therefore idempotent: driving a pending revocation any
//! number of times, interleaved with crashes, ends in the same state as
//! one fault-free run.

use std::collections::BTreeSet;

use mabe_core::{OwnerId, RevocationEvent, Uid};

/// Where an in-flight revocation currently stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RevocationStage {
    /// Intent journaled; fresh keys and update keys not yet (fully)
    /// delivered.
    KeyDelivery,
    /// All user-side key material delivered (or queued for offline
    /// users); owner updates and server re-encryption still running.
    ReEncryption,
}

/// One journaled, resumable revocation.
#[derive(Clone, Debug)]
pub struct PendingRevocation {
    /// Monotone journal id (orders recovery; revocations at one
    /// authority must complete in id order because versions chain).
    pub id: u64,
    /// Everything the authority's `ReKey` produced.
    pub event: RevocationEvent,
    /// Current stage.
    pub stage: RevocationStage,
    /// Whether the revoked user's fresh (reduced) keys were delivered.
    pub fresh_keys_delivered: bool,
    /// Holders whose update keys were applied or queued.
    pub delivered_holders: BTreeSet<Uid>,
    /// Owners that applied their update key (phase 3 prerequisite).
    pub updated_owners: BTreeSet<OwnerId>,
}

impl PendingRevocation {
    /// Journals a fresh intent at the `KeyDelivery` stage.
    pub fn new(id: u64, event: RevocationEvent) -> Self {
        PendingRevocation {
            id,
            event,
            stage: RevocationStage::KeyDelivery,
            fresh_keys_delivered: false,
            delivered_holders: BTreeSet::new(),
            updated_owners: BTreeSet::new(),
        }
    }

    /// Human-readable progress summary (for logs and bench output).
    pub fn progress(&self) -> String {
        format!(
            "revocation #{} @{} v{}->v{} [{:?}] fresh:{} holders:{} owners:{}",
            self.id,
            self.event.aid,
            self.event.from_version,
            self.event.to_version,
            self.stage,
            self.fresh_keys_delivered,
            self.delivered_holders.len(),
            self.updated_owners.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mabe_policy::AuthorityId;
    use std::collections::{BTreeMap, BTreeSet};

    fn event() -> RevocationEvent {
        RevocationEvent {
            aid: AuthorityId::new("Med"),
            from_version: 1,
            to_version: 2,
            revoked_uid: Uid::new("alice"),
            revoked_attributes: BTreeSet::new(),
            update_keys: BTreeMap::new(),
            revoked_user_keys: BTreeMap::new(),
            new_public_keys: mabe_core::AuthorityPublicKeys {
                aid: AuthorityId::new("Med"),
                version: 2,
                owner_pk: mabe_math::Gt::generator(),
                attr_pks: BTreeMap::new(),
            },
        }
    }

    #[test]
    fn new_pending_starts_at_key_delivery() {
        let p = PendingRevocation::new(3, event());
        assert_eq!(p.stage, RevocationStage::KeyDelivery);
        assert!(!p.fresh_keys_delivered);
        assert!(p.delivered_holders.is_empty());
        assert!(p.updated_owners.is_empty());
        let s = p.progress();
        assert!(s.contains("#3"));
        assert!(s.contains("@Med"));
        assert!(s.contains("v1->v2"));
    }

    #[test]
    fn stages_are_ordered() {
        assert!(RevocationStage::KeyDelivery < RevocationStage::ReEncryption);
    }
}
