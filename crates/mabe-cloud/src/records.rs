//! Legacy journal record codec.
//!
//! Before the typed keyspace migration, every WAL record was one
//! hand-numbered tag byte followed by an ad-hoc payload. New logs are
//! written as `(table_id, op, key, value)` frame batches (see
//! [`crate::tables`]); this module keeps the old encode/decode so the
//! replay shim in [`crate::persist`] can still read pre-migration logs,
//! and so the backward-compatibility fixtures can synthesize them.
//!
//! Decoding distinguishes an *unknown tag* — a record written by a newer
//! (or foreign) writer — from a structurally corrupt payload:
//! [`RecordError::UnknownTag`] carries the tag byte and its offset
//! within the record so the operator can tell "future format" apart
//! from "bit rot" at a glance.

use std::fmt;

use mabe_core::Error;
use mabe_math::Fr;

// ---------------------------------------------------------------------
// Byte helpers (the mabe-core serial primitives are crate-private).
// ---------------------------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// `u16`-length-prefixed UTF-8, matching [`mabe_core::read_string`].
pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    assert!(bytes.len() <= u16::MAX as usize, "string too long for wire");
    out.extend_from_slice(&(bytes.len() as u16).to_be_bytes());
    out.extend_from_slice(bytes);
}

/// `u32`-length-prefixed opaque bytes.
pub(crate) fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

pub(crate) fn get_bytes(r: &mut mabe_core::Reader<'_>) -> Result<Vec<u8>, Error> {
    let n = r.u32()? as usize;
    Ok(r.bytes(n)?.to_vec())
}

#[cfg(test)]
pub(crate) fn put_fr(out: &mut Vec<u8>, v: &Fr) {
    out.extend_from_slice(&v.to_canonical_bytes());
}

pub(crate) fn get_fr(r: &mut mabe_core::Reader<'_>) -> Result<Fr, Error> {
    let bytes = r.bytes(24)?;
    Fr::from_canonical_bytes(bytes).ok_or(Error::Malformed("non-canonical field element"))
}

pub(crate) fn get_count(r: &mut mabe_core::Reader<'_>) -> Result<usize, Error> {
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(Error::Malformed("count exceeds input"));
    }
    Ok(n)
}

// ---------------------------------------------------------------------
// Decode errors
// ---------------------------------------------------------------------

/// Why a legacy journal record failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The record's tag byte names no known record kind. `offset` is the
    /// byte position of the tag within the record payload (always 0 for
    /// the legacy format, where the tag leads the record).
    UnknownTag {
        /// The unrecognized tag byte.
        tag: u8,
        /// Byte offset of the tag within the record.
        offset: usize,
    },
    /// The tag was recognized but the payload is malformed.
    Core(Error),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::UnknownTag { tag, offset } => {
                write!(
                    f,
                    "unknown journal record tag {tag:#04x} at offset {offset}"
                )
            }
            RecordError::Core(e) => write!(f, "malformed journal record: {e}"),
        }
    }
}

impl std::error::Error for RecordError {}

impl From<Error> for RecordError {
    fn from(e: Error) -> Self {
        RecordError::Core(e)
    }
}

// ---------------------------------------------------------------------
// WAL records
// ---------------------------------------------------------------------

/// One journaled logical operation (legacy format).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum WalRecord {
    /// `add_authority` result: the post-setup authority (all sampled
    /// version/secret keys and owner registrations included).
    AuthorityAdded { name: String, authority: Vec<u8> },
    /// `add_owner` result: the post-install owner.
    OwnerAdded { owner: Vec<u8> },
    /// `add_user` result: the CA secret `u` and the public key.
    UserAdded { u: Fr, pk: Vec<u8> },
    /// `grant` inputs, caller order preserved (the audit entry's
    /// rendering depends on it).
    Granted {
        uid: String,
        attributes: Vec<String>,
    },
    /// `publish` result: the sealed envelope plus the per-ciphertext
    /// encryption secrets the owner must retain for re-encryption.
    Published {
        owner: String,
        record: String,
        envelope: Vec<u8>,
        secrets: Vec<(u64, Fr)>,
    },
    /// A read that reached the audit log (allowed or denied).
    ReadAudited {
        uid: String,
        owner: String,
        record: String,
        component: String,
        allowed: bool,
    },
    /// Write-ahead revocation intent: the post-`ReKey` authority and the
    /// [`RevocationEvent`](mabe_core::RevocationEvent), journaled before
    /// any delivery.
    RevocationBegun { authority: Vec<u8>, event: Vec<u8> },
    /// A journaled revocation was driven to completion.
    RevocationDriven { id: u64, recovered: bool },
    /// A user went offline (update keys start queueing).
    UserOffline { uid: String },
    /// An offline user synced its queued update keys.
    UserSynced { uid: String },
    /// A journaled revocation finished its immediate (security) phase
    /// and parked its re-encryption on the lazy pending-upgrade queue.
    /// Logged *after* the defer succeeds: a crash in between replays
    /// the revocation as still in-flight and recovery drives it
    /// eagerly.
    RevocationDeferred { id: u64 },
    /// A lazy drain batch converged the named queued revocations.
    /// Logged after completion, like `RevocationDriven`.
    LazyDrained { ids: Vec<u64> },
}

impl WalRecord {
    /// Legacy-format writer, kept only so tests can author pre-typed
    /// journals and prove the replay shim still reads them.
    #[cfg(test)]
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::AuthorityAdded { name, authority } => {
                out.push(1);
                put_str(&mut out, name);
                put_bytes(&mut out, authority);
            }
            WalRecord::OwnerAdded { owner } => {
                out.push(2);
                put_bytes(&mut out, owner);
            }
            WalRecord::UserAdded { u, pk } => {
                out.push(3);
                put_fr(&mut out, u);
                put_bytes(&mut out, pk);
            }
            WalRecord::Granted { uid, attributes } => {
                out.push(4);
                put_str(&mut out, uid);
                put_u32(&mut out, attributes.len() as u32);
                for a in attributes {
                    put_str(&mut out, a);
                }
            }
            WalRecord::Published {
                owner,
                record,
                envelope,
                secrets,
            } => {
                out.push(5);
                put_str(&mut out, owner);
                put_str(&mut out, record);
                put_bytes(&mut out, envelope);
                put_u32(&mut out, secrets.len() as u32);
                for (id, s) in secrets {
                    put_u64(&mut out, *id);
                    put_fr(&mut out, s);
                }
            }
            WalRecord::ReadAudited {
                uid,
                owner,
                record,
                component,
                allowed,
            } => {
                out.push(6);
                put_str(&mut out, uid);
                put_str(&mut out, owner);
                put_str(&mut out, record);
                put_str(&mut out, component);
                out.push(u8::from(*allowed));
            }
            WalRecord::RevocationBegun { authority, event } => {
                out.push(7);
                put_bytes(&mut out, authority);
                put_bytes(&mut out, event);
            }
            WalRecord::RevocationDriven { id, recovered } => {
                out.push(8);
                put_u64(&mut out, *id);
                out.push(u8::from(*recovered));
            }
            WalRecord::UserOffline { uid } => {
                out.push(9);
                put_str(&mut out, uid);
            }
            WalRecord::UserSynced { uid } => {
                out.push(10);
                put_str(&mut out, uid);
            }
            WalRecord::RevocationDeferred { id } => {
                out.push(11);
                put_u64(&mut out, *id);
            }
            WalRecord::LazyDrained { ids } => {
                out.push(12);
                put_u32(&mut out, ids.len() as u32);
                for id in ids {
                    put_u64(&mut out, *id);
                }
            }
        }
        out
    }

    pub(crate) fn decode(bytes: &[u8]) -> Result<Self, RecordError> {
        let mut r = mabe_core::Reader::new(bytes);
        let rec = match r.u8()? {
            1 => WalRecord::AuthorityAdded {
                name: mabe_core::read_string(&mut r)?,
                authority: get_bytes(&mut r)?,
            },
            2 => WalRecord::OwnerAdded {
                owner: get_bytes(&mut r)?,
            },
            3 => WalRecord::UserAdded {
                u: get_fr(&mut r)?,
                pk: get_bytes(&mut r)?,
            },
            4 => {
                let uid = mabe_core::read_string(&mut r)?;
                let n = get_count(&mut r)?;
                let mut attributes = Vec::with_capacity(n);
                for _ in 0..n {
                    attributes.push(mabe_core::read_string(&mut r)?);
                }
                WalRecord::Granted { uid, attributes }
            }
            5 => {
                let owner = mabe_core::read_string(&mut r)?;
                let record = mabe_core::read_string(&mut r)?;
                let envelope = get_bytes(&mut r)?;
                let n = get_count(&mut r)?;
                let mut secrets = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = r.u64()?;
                    secrets.push((id, get_fr(&mut r)?));
                }
                WalRecord::Published {
                    owner,
                    record,
                    envelope,
                    secrets,
                }
            }
            6 => WalRecord::ReadAudited {
                uid: mabe_core::read_string(&mut r)?,
                owner: mabe_core::read_string(&mut r)?,
                record: mabe_core::read_string(&mut r)?,
                component: mabe_core::read_string(&mut r)?,
                allowed: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(Error::Malformed("bad boolean").into()),
                },
            },
            7 => WalRecord::RevocationBegun {
                authority: get_bytes(&mut r)?,
                event: get_bytes(&mut r)?,
            },
            8 => WalRecord::RevocationDriven {
                id: r.u64()?,
                recovered: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(Error::Malformed("bad boolean").into()),
                },
            },
            9 => WalRecord::UserOffline {
                uid: mabe_core::read_string(&mut r)?,
            },
            10 => WalRecord::UserSynced {
                uid: mabe_core::read_string(&mut r)?,
            },
            11 => WalRecord::RevocationDeferred { id: r.u64()? },
            12 => {
                let n = get_count(&mut r)?;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(r.u64()?);
                }
                WalRecord::LazyDrained { ids }
            }
            tag => return Err(RecordError::UnknownTag { tag, offset: 0 }),
        };
        if !r.is_exhausted() {
            return Err(Error::Malformed("trailing bytes after journal record").into());
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_tag_reports_tag_and_offset() {
        let err = WalRecord::decode(&[0xEE, 1, 2, 3]).unwrap_err();
        assert_eq!(
            err,
            RecordError::UnknownTag {
                tag: 0xEE,
                offset: 0
            }
        );
        let text = err.to_string();
        assert!(text.contains("0xee"), "display names the tag: {text}");
        assert!(
            text.contains("offset 0"),
            "display names the offset: {text}"
        );
    }

    #[test]
    fn truncated_payload_is_core_error() {
        // Tag 8 (RevocationDriven) with a short payload.
        assert!(matches!(
            WalRecord::decode(&[8, 0, 0]),
            Err(RecordError::Core(_))
        ));
    }

    #[test]
    fn roundtrip_survives_every_variant() {
        let records = vec![
            WalRecord::Granted {
                uid: "alice".into(),
                attributes: vec!["Doctor@MedOrg".into()],
            },
            WalRecord::ReadAudited {
                uid: "alice".into(),
                owner: "hospital".into(),
                record: "rec".into(),
                component: "chart".into(),
                allowed: true,
            },
            WalRecord::RevocationDriven {
                id: 7,
                recovered: false,
            },
            WalRecord::UserOffline { uid: "bob".into() },
            WalRecord::UserSynced { uid: "bob".into() },
            WalRecord::RevocationDeferred { id: 9 },
            WalRecord::LazyDrained { ids: vec![1, 2, 9] },
        ];
        for rec in records {
            assert_eq!(WalRecord::decode(&rec.encode()).unwrap(), rec);
        }
    }
}
