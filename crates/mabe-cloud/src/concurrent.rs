//! Concurrent-access harness: many reader threads against one shared
//! [`CloudServer`] while revocation-driven re-encryption runs.
//!
//! The paper's server is a shared service ("provides data access service
//! to users"); this module checks the property that matters for such a
//! deployment: under concurrent reads and re-encryptions a reader either
//! decrypts a **consistent** envelope (the correct plaintext) or fails
//! cleanly (stale keys vs re-encrypted ciphertext) — never a torn or
//! corrupted result.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::thread;

use mabe_core::{open_component, OwnerId, UserPublicKey, UserSecretKey};
use mabe_policy::AuthorityId;

use crate::server::CloudServer;

/// One simulated reader identity.
#[derive(Clone, Debug)]
pub struct ReaderSpec {
    /// The reader's public key.
    pub user_pk: UserPublicKey,
    /// The reader's secret keys, one per authority (fixed for the run).
    pub keys: BTreeMap<AuthorityId, UserSecretKey>,
    /// Record owner to read from.
    pub owner: OwnerId,
    /// Record name.
    pub record: String,
    /// Component label.
    pub label: String,
    /// Plaintext the reader expects on success.
    pub expected: Vec<u8>,
}

/// Aggregate result of a concurrent run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThroughputReport {
    /// Reads that decrypted to the expected plaintext.
    pub successes: u64,
    /// Reads that failed cleanly (stale keys / missing record).
    pub clean_failures: u64,
    /// Reads that produced a WRONG plaintext — must always be zero.
    pub corruptions: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl ThroughputReport {
    /// Total read attempts.
    pub fn total(&self) -> u64 {
        self.successes + self.clean_failures + self.corruptions
    }

    /// Successful reads per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.successes as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Runs `ops_per_reader` read+decrypt operations per reader, all readers
/// in parallel threads, optionally interleaving a `writer` closure on
/// the calling thread (e.g. performing re-encryptions).
///
/// Readers run with zero think-time: the harness measures the system,
/// not a sleep. Use [`run_concurrent_reads_with`] to model readers that
/// pause between requests.
///
/// # Panics
///
/// Panics if a reader thread panics.
pub fn run_concurrent_reads<F>(
    server: &Arc<CloudServer>,
    readers: &[ReaderSpec],
    ops_per_reader: u64,
    writer: F,
) -> ThroughputReport
where
    F: FnMut(),
{
    run_concurrent_reads_with(server, readers, ops_per_reader, Duration::ZERO, writer)
}

/// [`run_concurrent_reads`] with an explicit per-op reader `think`
/// pause. `Duration::ZERO` (the default entry point) means readers
/// hammer the server back-to-back; a non-zero value models clients that
/// idle between requests, which deliberately shrinks contention.
///
/// # Panics
///
/// Panics if a reader thread panics.
pub fn run_concurrent_reads_with<F>(
    server: &Arc<CloudServer>,
    readers: &[ReaderSpec],
    ops_per_reader: u64,
    think: Duration,
    mut writer: F,
) -> ThroughputReport
where
    F: FnMut(),
{
    let successes = AtomicU64::new(0);
    let clean_failures = AtomicU64::new(0);
    let corruptions = AtomicU64::new(0);
    // Reader threads join the caller's trace (if any) via follow, so a
    // bench root span owns the whole fan-out and the span profiler sees
    // one call tree instead of per-thread orphans.
    let parent = mabe_trace::current_ctx();
    let start = Instant::now();

    thread::scope(|scope| {
        for spec in readers {
            let server = Arc::clone(server);
            let successes = &successes;
            let clean_failures = &clean_failures;
            let corruptions = &corruptions;
            scope.spawn(move |_| {
                let _reader_span = match parent {
                    Some(ctx) => mabe_trace::Span::follow(ctx, "harness.reader"),
                    None => mabe_trace::Span::root("harness.reader"),
                };
                for _ in 0..ops_per_reader {
                    if !think.is_zero() {
                        std::thread::sleep(think);
                    }
                    let _op_span = mabe_trace::Span::child("harness.read");
                    let Some(envelope) = server.fetch(&spec.owner, &spec.record) else {
                        clean_failures.fetch_add(1, Ordering::Relaxed);
                        continue;
                    };
                    let Some(component) = envelope.component(&spec.label) else {
                        clean_failures.fetch_add(1, Ordering::Relaxed);
                        continue;
                    };
                    match open_component(component, &spec.user_pk, &spec.keys) {
                        Ok(data) if data == spec.expected => {
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {
                            corruptions.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            clean_failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        // The writer runs on this thread while readers hammer the server.
        let _writer_span = mabe_trace::Span::child("harness.writer");
        writer();
    })
    .expect("reader thread panicked");

    let report = ThroughputReport {
        successes: successes.into_inner(),
        clean_failures: clean_failures.into_inner(),
        corruptions: corruptions.into_inner(),
        elapsed: start.elapsed(),
    };
    // Mirror the run into the telemetry registry so concurrent-harness
    // outcomes show up next to everything else in the metrics exports.
    let registry = mabe_telemetry::global();
    registry
        .counter("mabe_concurrent_reads_total", &[("outcome", "success")])
        .add(report.successes);
    registry
        .counter(
            "mabe_concurrent_reads_total",
            &[("outcome", "clean_failure")],
        )
        .add(report.clean_failures);
    registry
        .counter("mabe_concurrent_reads_total", &[("outcome", "corruption")])
        .add(report.corruptions);
    registry
        .histogram("mabe_concurrent_run_latency_us", &[])
        .record(report.elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mabe_core::{seal_envelope, AttributeAuthority, CertificateAuthority, DataOwner};
    use mabe_policy::{parse, Attribute};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct World {
        rng: StdRng,
        ca: CertificateAuthority,
        aa: AttributeAuthority,
        owner: DataOwner,
        server: Arc<CloudServer>,
    }

    fn world() -> World {
        let mut rng = StdRng::seed_from_u64(424242);
        let mut ca = CertificateAuthority::new();
        let aid = ca.register_authority("Org").unwrap();
        let mut aa = AttributeAuthority::new(aid, &["A", "B"], &mut rng);
        let mut owner = DataOwner::new(OwnerId::new("owner"), &mut rng);
        aa.register_owner(owner.owner_secret_key()).unwrap();
        owner.learn_authority_keys(aa.public_keys());
        World {
            rng,
            ca,
            aa,
            owner,
            server: Arc::new(CloudServer::new()),
        }
    }

    fn reader(w: &mut World, name: &str, expected: &[u8]) -> ReaderSpec {
        let pk = w.ca.register_user(name, &mut w.rng).unwrap();
        let attr: Attribute = "A@Org".parse().unwrap();
        w.aa.grant(&pk, [attr]).unwrap();
        let keys = BTreeMap::from([(
            w.aa.aid().clone(),
            w.aa.keygen(&pk.uid, w.owner.id()).unwrap(),
        )]);
        ReaderSpec {
            user_pk: pk,
            keys,
            owner: w.owner.id().clone(),
            record: "rec".into(),
            label: "x".into(),
            expected: expected.to_vec(),
        }
    }

    #[test]
    fn parallel_readers_all_succeed() {
        let mut w = world();
        let policy = parse("A@Org").unwrap();
        let envelope = seal_envelope(
            &mut w.owner,
            &[("x", b"payload".as_slice(), &policy)],
            &mut w.rng,
        )
        .unwrap();
        w.server.store(w.owner.id().clone(), "rec", envelope);

        let readers: Vec<ReaderSpec> = (0..4)
            .map(|i| reader(&mut w, &format!("r{i}"), b"payload"))
            .collect();
        let report = run_concurrent_reads(&w.server, &readers, 10, || {});
        assert_eq!(report.successes, 40);
        assert_eq!(report.clean_failures, 0);
        assert_eq!(report.corruptions, 0);
        assert!(report.ops_per_sec() > 0.0);
        assert_eq!(report.total(), 40);
    }

    #[test]
    fn think_time_pause_preserves_results() {
        let mut w = world();
        let policy = parse("A@Org").unwrap();
        let envelope = seal_envelope(
            &mut w.owner,
            &[("x", b"payload".as_slice(), &policy)],
            &mut w.rng,
        )
        .unwrap();
        w.server.store(w.owner.id().clone(), "rec", envelope);

        let readers: Vec<ReaderSpec> = (0..2)
            .map(|i| reader(&mut w, &format!("r{i}"), b"payload"))
            .collect();
        let report =
            run_concurrent_reads_with(&w.server, &readers, 5, Duration::from_micros(200), || {});
        assert_eq!(report.successes, 10);
        assert_eq!(report.corruptions, 0);
        // Ten paced ops cannot finish faster than the pacing allows.
        assert!(report.elapsed >= Duration::from_micros(5 * 200));
    }

    #[test]
    fn readers_race_reencryption_without_corruption() {
        // Readers hold version-1 keys while the writer re-encrypts the
        // record to version 2 mid-run. Every read must be either a
        // correct decryption (pre-re-encryption fetch) or a clean
        // failure — never a wrong plaintext.
        let mut w = world();
        let policy = parse("A@Org").unwrap();
        let envelope = seal_envelope(
            &mut w.owner,
            &[("x", b"payload".as_slice(), &policy)],
            &mut w.rng,
        )
        .unwrap();
        let ct_id = envelope.components[0].key_ct.id;
        w.server.store(w.owner.id().clone(), "rec", envelope);

        let readers: Vec<ReaderSpec> = (0..4)
            .map(|i| reader(&mut w, &format!("r{i}"), b"payload"))
            .collect();

        // Prepare the revocation of a scapegoat user.
        let scapegoat = w.ca.register_user("scapegoat", &mut w.rng).unwrap();
        let attr: Attribute = "A@Org".parse().unwrap();
        w.aa.grant(&scapegoat, [attr.clone()]).unwrap();
        let event =
            w.aa.revoke_attribute(&scapegoat.uid, &attr, &mut w.rng)
                .unwrap();
        let uk = event.update_keys[w.owner.id()].clone();
        w.owner.apply_update_key(&uk).unwrap();
        let ui = w.owner.update_info_for(ct_id, w.aa.aid(), 1, 2).unwrap();

        let server = Arc::clone(&w.server);
        let owner_id = w.owner.id().clone();
        // No staged delay: the writer races the readers from the first
        // fetch, and the invariant must hold wherever the flip lands.
        let report = run_concurrent_reads(&w.server, &readers, 50, move || {
            server
                .reencrypt_component(&(owner_id.clone(), "rec".into()), "x", &uk, &ui)
                .unwrap();
        });
        assert_eq!(report.corruptions, 0, "no torn/corrupt reads ever");
        assert_eq!(report.total(), 200);
        // Both phases typically occur; at minimum the run completed.
        assert!(report.successes + report.clean_failures == 200);
    }

    #[test]
    fn report_arithmetic() {
        let report = ThroughputReport {
            successes: 10,
            clean_failures: 5,
            corruptions: 0,
            elapsed: Duration::from_secs(2),
        };
        assert_eq!(report.total(), 15);
        assert!((report.ops_per_sec() - 5.0).abs() < 1e-9);
    }
}
