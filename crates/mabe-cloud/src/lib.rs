//! # mabe-cloud
//!
//! Simulated multi-authority cloud-storage deployment for the MA-ABAC
//! reproduction of Yang & Jia (ICDCS 2012): the five entities of the
//! paper's Fig. 1 — certificate authority, attribute authorities, data
//! owners, users, and the semi-trusted cloud server — exchanging keys and
//! ciphertexts over a byte-accounted wire.
//!
//! * [`wire`] — message transport with the paper's size accounting; the
//!   source of the Table IV communication-cost numbers.
//! * [`server`] — the honest-but-curious server: stores envelopes, serves
//!   anyone, re-encrypts on revocation without ever decrypting.
//! * [`system`] — [`CloudSystem`], the orchestrating shell over three
//!   layered modules: the **directory** (identities and registries),
//!   the **control plane** (grant / revoke / key delivery / recovery,
//!   serialized per authority shard), and the **data plane** (publish /
//!   read / re-encrypt, all `&self`). Operations are retry-wrapped with
//!   named fault points for seeded chaos testing (`mabe-faults`).
//! * [`recovery`] — the journaled two-phase revocation state machine
//!   that [`CloudSystem::recover`] rolls forward after a crash.
//! * [`persist`] — [`DurableSystem`], the write-ahead-logged wrapper:
//!   every acknowledged mutation journals to a `mabe-store` WAL before
//!   returning, state checkpoints into snapshots, and
//!   [`DurableSystem::open`] replays whatever bytes survived a crash.
//!
//! This crate substitutes for the authors' physical testbed: entities are
//! in-process actors, and "network cost" is the serialized size of what
//! they exchange (documented in `DESIGN.md` §3).
//!
//! # Examples
//!
//! ```
//! use mabe_cloud::CloudSystem;
//!
//! let sys = CloudSystem::new(7);
//! sys.add_authority("MedOrg", &["Doctor"])?;
//! let owner = sys.add_owner("hospital")?;
//! let alice = sys.add_user("alice")?;
//! sys.grant(&alice, &["Doctor@MedOrg"])?;
//! sys.publish(&owner, "patient-1", &[("diagnosis", b"flu".as_slice(), "Doctor@MedOrg")])?;
//! assert_eq!(sys.read(&alice, &owner, "patient-1", "diagnosis")?, b"flu");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub(crate) mod cache;
pub mod concurrent;
pub(crate) mod control;
pub(crate) mod data;
pub(crate) mod directory;
pub(crate) mod lazy;
pub mod persist;
pub mod records;
pub mod recovery;
pub mod server;
pub mod system;
pub(crate) mod tables;
pub mod wire;

pub use audit::{AuditEntry, AuditEvent, AuditLoadError, AuditLog};
pub use cache::CacheStats;
pub use concurrent::{run_concurrent_reads, ReaderSpec, ThroughputReport};
pub use lazy::DEFAULT_LAZY_CAPACITY;
pub use persist::{
    DurableSystem, LazyDrainHandle, MaintenanceHandle, OpenError, OpenFailure, OpenReport,
    DEFAULT_DEGRADE_HEADROOM, DEGRADED_POINT, POISONED_POINT,
};
pub use records::RecordError;
pub use recovery::{PendingRevocation, RevocationStage};
pub use server::CloudServer;
pub use system::{fault_points, CloudError, CloudSystem, StorageReport};
pub use wire::{DeliveryReport, Disposition, Endpoint, PairClass, Transmission, Wire};
