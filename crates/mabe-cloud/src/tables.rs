//! The typed keyspace catalog: one [`mabe_store::Schema`] table per
//! kind of persistent cloud-plane state, the populate/hydrate bridge
//! between live state and checkpoint keyspaces, and the per-operation
//! frame emitters the durable wrapper journals.
//!
//! # Design
//!
//! The live [`crate::CloudSystem`] keeps its working structures exactly
//! as before (sharded authorities, directory maps, the server's record
//! map) — those are the lock-ordered, concurrency-tested structures.
//! Durability flows through tables instead of ad-hoc tag payloads:
//!
//! * **Journaling** — after an operation mutates live state (and before
//!   it is acknowledged), the matching `frames_*` emitter reads the
//!   *current* state of every row the operation could have changed and
//!   produces a `(table, op, key, value)` frame batch. Replay is then
//!   pure row application: no re-running of key generation, no RNG
//!   coupling, no order-sensitive side effects.
//! * **Checkpointing** — [`populate`] walks the whole system into a
//!   fresh [`Keyspace`]; the snapshot becomes schema-driven per-table
//!   sections instead of one hand-rolled byte blob.
//! * **Hydration** — [`hydrate`] rebuilds a [`crate::CloudSystem`] from
//!   a keyspace by synthesizing the legacy snapshot byte layout from
//!   the rows and running it through the battle-tested legacy decoder
//!   (duplicate detection, chain verification, and all). One decoder,
//!   two sources.
//!
//! Key encodings are order-preserving ([`mabe_store::key_str`] /
//! [`mabe_store::key_u64`]), so prefix range scans replace full-map
//! passes: re-encryption walks `Components` rows under an
//! `(authority, owner)` prefix, and grant lookup walks
//! `GrantsByAuthority` under an `(authority)` prefix.
//!
//! `Components` rows are *derived* state (version/ciphertext-id per
//! `(authority, owner, record, label)`): they are journaled and
//! checkpointed so the on-disk keyspace is self-describing, but
//! hydration rebuilds the server's live index from the authoritative
//! envelope bytes in `Records` and ignores them.

use mabe_core::{CiphertextId, DataEnvelope, OwnerId, Uid, UpdateKey, WireCodec};
use mabe_policy::AuthorityId;
use mabe_store::{key_str, Frame, Keyspace};

use crate::audit;
use crate::control::ShardState;
use crate::lazy::PendingUpgrade;
use crate::persist::OpenError;
use crate::records::{put_bytes, put_str, put_u32, put_u64};
use crate::recovery::{PendingRevocation, RevocationStage};
use crate::system::CloudSystem;

mabe_store::define_table!(
    /// Singleton rows keyed by name: `"ca"` (certificate-authority
    /// wire bytes), `"next_revocation"` (`u64` BE journal counter),
    /// `"audit"` (`next_seq ‖ clock`, both `u64` BE).
    Meta: 1, "meta", key(name: str)
);
mabe_store::define_table!(
    /// One attribute authority per row; value is the authority's full
    /// wire encoding (version keys, secrets, owner registrations).
    Authorities: 2, "authorities", key(aid: str)
);
mabe_store::define_table!(
    /// One data owner per row; value is the owner's wire encoding
    /// (including adopted per-ciphertext encryption secrets).
    Owners: 3, "owners", key(owner: str)
);
mabe_store::define_table!(
    /// One registered user per row; value is the public-key wire
    /// encoding.
    Users: 4, "users", key(uid: str)
);
mabe_store::define_table!(
    /// Per-user per-owner per-authority secret keys; value is the
    /// [`mabe_core::UserSecretKey`] wire encoding.
    UserKeys: 5, "user_keys", key(uid: str, owner: str, aid: str)
);
mabe_store::define_table!(
    /// Granted attributes, one row per `(user, attribute)`; the value
    /// is empty — presence is the grant.
    Grants: 6, "grants", key(uid: str, attr: str)
);
mabe_store::define_table!(
    /// Users currently offline (update keys queue instead of
    /// delivering); empty value.
    Offline: 7, "offline", key(uid: str)
);
mabe_store::define_table!(
    /// Queued update keys for an offline user: `u32` count then
    /// `(owner str, update-key bytes)` pairs in queue order.
    PendingUpdates: 8, "pending_updates", key(uid: str)
);
mabe_store::define_table!(
    /// Stored record envelopes; value is the
    /// [`mabe_core::DataEnvelope`] wire encoding.
    Records: 9, "records", key(owner: str, record: str)
);
mabe_store::define_table!(
    /// Derived ciphertext-component index: `version u64 ‖ ct_id u64`
    /// per `(authority, owner, record, label)`. The `(authority,
    /// owner)` prefix is the re-encryption worklist.
    Components: 10, "components", key(aid: str, owner: str, record: str, label: str)
);
mabe_store::define_table!(
    /// One audit entry per row (keyed by entry index); value is the
    /// entry's legacy save-format bytes.
    Audit: 11, "audit", key(index: u64)
);
mabe_store::define_table!(
    /// In-flight two-phase revocations keyed by journal id; value is
    /// event wire ‖ stage ‖ fresh flag ‖ delivered holders ‖ updated
    /// owners.
    PendingRevocations: 12, "pending_revocations", key(id: u64)
);
mabe_store::define_table!(
    /// The lazy pending-upgrade queue keyed by revocation journal id;
    /// value is `aid str ‖ from u64 ‖ to u64`.
    LazyQueue: 13, "lazy_queue", key(id: u64)
);
mabe_store::define_table!(
    /// The server-held update-key archive; value is the
    /// [`mabe_core::UpdateKey`] wire encoding.
    LazyArchive: 14, "lazy_archive", key(aid: str, owner: str, from: u64)
);
mabe_store::define_table!(
    /// Live-only inverted grant index: one row per `(authority, user,
    /// attribute)`, empty value. Never journaled or checkpointed — the
    /// directory rebuilds it from `Grants`; the `(authority)` prefix
    /// answers "who holds anything from this authority" without a full
    /// grants walk.
    GrantsByAuthority: 15, "grants_by_authority", key(aid: str, uid: str, attr: str)
);

/// Meta-table row names.
pub(crate) const META_CA: &str = "ca";
pub(crate) const META_NEXT_REVOCATION: &str = "next_revocation";
pub(crate) const META_AUDIT: &str = "audit";

/// Registers every *persistent* table (everything except the live-only
/// [`GrantsByAuthority`]) so empty tables still appear as checkpoint
/// sections.
pub(crate) fn register_all(ks: &Keyspace) {
    ks.register::<Meta>();
    ks.register::<Authorities>();
    ks.register::<Owners>();
    ks.register::<Users>();
    ks.register::<UserKeys>();
    ks.register::<Grants>();
    ks.register::<Offline>();
    ks.register::<PendingUpdates>();
    ks.register::<Records>();
    ks.register::<Components>();
    ks.register::<Audit>();
    ks.register::<PendingRevocations>();
    ks.register::<LazyQueue>();
    ks.register::<LazyArchive>();
}

// ---------------------------------------------------------------------
// Value codecs
// ---------------------------------------------------------------------

/// [`Components`] row value: the component's version at the row's
/// authority plus its ciphertext id.
pub(crate) fn component_value(version: u64, id: CiphertextId) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    put_u64(&mut out, version);
    put_u64(&mut out, id.0);
    out
}

/// Decodes a [`Components`] row value back to `(version, ciphertext
/// id)`; `None` if the value is not the expected 16 bytes.
pub(crate) fn decode_component_value(value: &[u8]) -> Option<(u64, CiphertextId)> {
    if value.len() != 16 {
        return None;
    }
    let version = u64::from_be_bytes(value[..8].try_into().expect("length checked"));
    let id = u64::from_be_bytes(value[8..].try_into().expect("length checked"));
    Some((version, CiphertextId(id)))
}

fn pending_updates_value(queue: &[(OwnerId, UpdateKey)]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, queue.len() as u32);
    for (owner, uk) in queue {
        put_str(&mut out, owner.as_str());
        put_bytes(&mut out, &uk.to_wire_bytes());
    }
    out
}

fn pending_revocation_value(p: &PendingRevocation) -> Vec<u8> {
    let mut out = Vec::new();
    put_bytes(&mut out, &p.event.to_wire_bytes());
    out.push(match p.stage {
        RevocationStage::KeyDelivery => 0,
        RevocationStage::ReEncryption => 1,
    });
    out.push(u8::from(p.fresh_keys_delivered));
    put_u32(&mut out, p.delivered_holders.len() as u32);
    for uid in &p.delivered_holders {
        put_str(&mut out, uid.as_str());
    }
    put_u32(&mut out, p.updated_owners.len() as u32);
    for owner in &p.updated_owners {
        put_str(&mut out, owner.as_str());
    }
    out
}

fn lazy_queue_value(p: &PendingUpgrade) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, p.aid.as_str());
    put_u64(&mut out, p.from_version);
    put_u64(&mut out, p.to_version);
    out
}

fn meta_u64_value(v: u64) -> Vec<u8> {
    v.to_be_bytes().to_vec()
}

fn meta_audit_value(next_seq: u64, clock: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    put_u64(&mut out, next_seq);
    put_u64(&mut out, clock);
    out
}

fn meta_frame(name: &str, value: Vec<u8>) -> Frame {
    Frame::put::<Meta>(&(name.to_owned(),), &value)
}

// ---------------------------------------------------------------------
// Section walks (shared by the per-op emitters and `populate`)
// ---------------------------------------------------------------------

fn ca_frame(sys: &CloudSystem) -> Frame {
    meta_frame(META_CA, sys.directory.ca.lock().to_wire_bytes())
}

fn authority_frame_from_state(st: &ShardState) -> Frame {
    Frame::put::<Authorities>(
        &(st.authority.aid().as_str().to_owned(),),
        &st.authority.to_wire_bytes(),
    )
}

fn all_authority_frames(sys: &CloudSystem, out: &mut Vec<Frame>) {
    let shards = sys.control.shards.read();
    for shard in shards.values() {
        out.push(authority_frame_from_state(&shard.state.lock()));
    }
}

fn all_owner_frames(sys: &CloudSystem, out: &mut Vec<Frame>) {
    let owners = sys.directory.owners.read();
    for (id, owner) in owners.iter() {
        out.push(Frame::put::<Owners>(
            &(id.as_str().to_owned(),),
            &owner.to_wire_bytes(),
        ));
    }
}

fn owner_frame(sys: &CloudSystem, owner_id: &OwnerId, out: &mut Vec<Frame>) {
    let owners = sys.directory.owners.read();
    if let Some(owner) = owners.get(owner_id) {
        out.push(Frame::put::<Owners>(
            &(owner_id.as_str().to_owned(),),
            &owner.to_wire_bytes(),
        ));
    }
}

/// Every key slot of one user.
fn user_key_frames(sys: &CloudSystem, uid: &Uid, out: &mut Vec<Frame>) {
    let users = sys.directory.users.read();
    if let Some(state) = users.users.get(uid) {
        for ((owner, aid), key) in &state.keys {
            out.push(Frame::put::<UserKeys>(
                &(
                    uid.as_str().to_owned(),
                    owner.as_str().to_owned(),
                    aid.as_str().to_owned(),
                ),
                &key.to_wire_bytes(),
            ));
        }
    }
}

/// Every user's key slots at one authority (the rows a revocation's
/// key delivery can touch).
fn user_key_frames_for_aid(sys: &CloudSystem, aid: &AuthorityId, out: &mut Vec<Frame>) {
    let users = sys.directory.users.read();
    for (uid, state) in &users.users {
        for ((owner, key_aid), key) in &state.keys {
            if key_aid == aid {
                out.push(Frame::put::<UserKeys>(
                    &(
                        uid.as_str().to_owned(),
                        owner.as_str().to_owned(),
                        key_aid.as_str().to_owned(),
                    ),
                    &key.to_wire_bytes(),
                ));
            }
        }
    }
}

/// Put-or-delete for one user's pending-update queue, from current
/// state.
fn pending_updates_frame(sys: &CloudSystem, uid: &Uid, out: &mut Vec<Frame>) {
    let users = sys.directory.users.read();
    match users.pending_updates.get(uid) {
        Some(queue) => out.push(Frame::put::<PendingUpdates>(
            &(uid.as_str().to_owned(),),
            &pending_updates_value(queue),
        )),
        None => out.push(Frame::delete::<PendingUpdates>(&(uid.as_str().to_owned(),))),
    }
}

fn all_pending_update_frames(sys: &CloudSystem, out: &mut Vec<Frame>) {
    let users = sys.directory.users.read();
    for (uid, queue) in &users.pending_updates {
        out.push(Frame::put::<PendingUpdates>(
            &(uid.as_str().to_owned(),),
            &pending_updates_value(queue),
        ));
    }
}

fn component_frames(owner: &OwnerId, record: &str, envelope: &DataEnvelope, out: &mut Vec<Frame>) {
    for c in &envelope.components {
        for (aid, v) in &c.key_ct.versions {
            out.push(Frame::put::<Components>(
                &(
                    aid.as_str().to_owned(),
                    owner.as_str().to_owned(),
                    record.to_owned(),
                    c.label.clone(),
                ),
                &component_value(*v, c.key_ct.id),
            ));
        }
    }
}

/// `Records` + `Components` rows for one stored record, read back from
/// the server (so post-store healing is captured).
fn record_frames(sys: &CloudSystem, owner: &OwnerId, record: &str, out: &mut Vec<Frame>) {
    let Some(envelope) = sys.data.server.fetch(owner, record) else {
        return;
    };
    out.push(Frame::put::<Records>(
        &(owner.as_str().to_owned(), record.to_owned()),
        &envelope.to_wire_bytes(),
    ));
    component_frames(owner, record, &envelope, out);
}

/// `Records` + `Components` rows for every record holding a component
/// sealed under `aid` — the rows a re-encryption pass can rewrite.
/// Walks the server's `(authority)` component-index prefix instead of
/// the full record map.
fn record_frames_for_authority(sys: &CloudSystem, aid: &AuthorityId, out: &mut Vec<Frame>) {
    for (owner, record) in sys.data.server.records_for_authority(aid) {
        record_frames(sys, &owner, &record, out);
    }
}

// ---------------------------------------------------------------------
// Per-operation emitters
// ---------------------------------------------------------------------
//
// Each emitter runs AFTER the live mutation and BEFORE the ack, and
// reads only current state; the batch it returns makes replay pure row
// application. Emitters that run under an authority shard lock take the
// locked `ShardState` instead of re-locking it.

pub(crate) fn frames_authority_added(sys: &CloudSystem, aid: &AuthorityId) -> Vec<Frame> {
    let mut out = vec![ca_frame(sys)];
    if let Some(shard) = sys.control.shard(aid) {
        out.push(authority_frame_from_state(&shard.state.lock()));
    }
    // Every existing owner learned the new authority's public keys.
    all_owner_frames(sys, &mut out);
    out
}

pub(crate) fn frames_owner_added(sys: &CloudSystem, owner_id: &OwnerId) -> Vec<Frame> {
    let mut out = Vec::new();
    // Every authority registered the new owner; granted users got key
    // slots for it.
    all_authority_frames(sys, &mut out);
    owner_frame(sys, owner_id, &mut out);
    let users = sys.directory.users.read();
    for (uid, state) in &users.users {
        for ((slot_owner, aid), key) in &state.keys {
            if slot_owner == owner_id {
                out.push(Frame::put::<UserKeys>(
                    &(
                        uid.as_str().to_owned(),
                        slot_owner.as_str().to_owned(),
                        aid.as_str().to_owned(),
                    ),
                    &key.to_wire_bytes(),
                ));
            }
        }
    }
    out
}

pub(crate) fn frames_user_added(sys: &CloudSystem, uid: &Uid) -> Vec<Frame> {
    let mut out = vec![ca_frame(sys)];
    let users = sys.directory.users.read();
    if let Some(state) = users.users.get(uid) {
        out.push(Frame::put::<Users>(
            &(uid.as_str().to_owned(),),
            &state.pk.to_wire_bytes(),
        ));
    }
    out
}

pub(crate) fn frames_granted(sys: &CloudSystem, uid: &Uid) -> Vec<Frame> {
    let mut out = Vec::new();
    // Issuing keys mutates authority state; refresh every shard (cheap
    // relative to keygen itself).
    all_authority_frames(sys, &mut out);
    {
        let users = sys.directory.users.read();
        if let Some(attrs) = users.grants.get(uid) {
            for attr in attrs {
                out.push(Frame::put::<Grants>(
                    &(uid.as_str().to_owned(), attr.to_string()),
                    &Vec::new(),
                ));
            }
        }
    }
    user_key_frames(sys, uid, &mut out);
    out
}

pub(crate) fn frames_published(sys: &CloudSystem, owner_id: &OwnerId, record: &str) -> Vec<Frame> {
    // The owner adopted fresh encryption secrets during sealing, so its
    // row must refresh with the record's.
    let mut out = Vec::new();
    owner_frame(sys, owner_id, &mut out);
    record_frames(sys, owner_id, record, &mut out);
    out
}

pub(crate) fn frames_offline(sys: &CloudSystem, uid: &Uid) -> Vec<Frame> {
    let mut out = Vec::new();
    if sys.directory.users.read().offline.contains(uid) {
        out.push(Frame::put::<Offline>(
            &(uid.as_str().to_owned(),),
            &Vec::new(),
        ));
    }
    out
}

pub(crate) fn frames_synced(sys: &CloudSystem, uid: &Uid) -> Vec<Frame> {
    let mut out = vec![Frame::delete::<Offline>(&(uid.as_str().to_owned(),))];
    pending_updates_frame(sys, uid, &mut out);
    user_key_frames(sys, uid, &mut out);
    out
}

/// Frames for a just-begun revocation. Runs under the authority's shard
/// lock (hence the borrowed `ShardState`) so the batch is journaled
/// write-ahead of any delivery. `queued_before` names every user that
/// had a pending-update queue before the begin purged stale entries —
/// their rows are re-emitted put-or-delete.
pub(crate) fn frames_revocation_begun(
    sys: &CloudSystem,
    st: &ShardState,
    pending: &PendingRevocation,
    queued_before: &[Uid],
) -> Vec<Frame> {
    let mut out = vec![authority_frame_from_state(st)];
    let uid = &pending.event.revoked_uid;
    for attr in &pending.event.revoked_attributes {
        out.push(Frame::delete::<Grants>(&(
            uid.as_str().to_owned(),
            attr.to_string(),
        )));
    }
    for queued in queued_before {
        pending_updates_frame(sys, queued, &mut out);
    }
    for (owner, uk) in &pending.event.update_keys {
        out.push(Frame::put::<LazyArchive>(
            &(
                pending.event.aid.as_str().to_owned(),
                owner.as_str().to_owned(),
                pending.event.from_version,
            ),
            &uk.to_wire_bytes(),
        ));
    }
    out.push(Frame::put::<PendingRevocations>(
        &(pending.id,),
        &pending_revocation_value(pending),
    ));
    out.push(meta_frame(
        META_NEXT_REVOCATION,
        meta_u64_value(
            sys.control
                .next_revocation
                .load(std::sync::atomic::Ordering::SeqCst),
        ),
    ));
    out
}

/// Frames after a revocation drove to completion (eagerly or via
/// recovery): the in-flight entry is gone, keys were delivered or
/// queued, owners advanced, and affected ciphertexts re-encrypted.
pub(crate) fn frames_revocation_driven(
    sys: &CloudSystem,
    id: u64,
    aid: &AuthorityId,
) -> Vec<Frame> {
    let mut out = vec![Frame::delete::<PendingRevocations>(&(id,))];
    user_key_frames_for_aid(sys, aid, &mut out);
    all_pending_update_frames(sys, &mut out);
    all_owner_frames(sys, &mut out);
    record_frames_for_authority(sys, aid, &mut out);
    out
}

/// Frames after a revocation's immediate phase completed with its
/// re-encryption deferred onto the lazy queue.
pub(crate) fn frames_revocation_deferred(
    sys: &CloudSystem,
    id: u64,
    aid: &AuthorityId,
) -> Vec<Frame> {
    let mut out = vec![Frame::delete::<PendingRevocations>(&(id,))];
    user_key_frames_for_aid(sys, aid, &mut out);
    all_pending_update_frames(sys, &mut out);
    all_owner_frames(sys, &mut out);
    if let Some(p) = sys.lazy.queue.lock().get(&id) {
        out.push(Frame::put::<LazyQueue>(&(id,), &lazy_queue_value(p)));
    }
    out
}

/// Frames after a lazy drain batch converged `ids` at `aid`.
pub(crate) fn frames_lazy_drained(sys: &CloudSystem, ids: &[u64], aid: &AuthorityId) -> Vec<Frame> {
    let mut out: Vec<Frame> = ids
        .iter()
        .map(|id| Frame::delete::<LazyQueue>(&(*id,)))
        .collect();
    all_owner_frames(sys, &mut out);
    record_frames_for_authority(sys, aid, &mut out);
    out
}

/// Appends puts for every audit entry recorded since `watermark` (plus
/// the refreshed counter row), advancing the watermark. A no-op when
/// nothing new was recorded, so read-heavy batches stay empty.
pub(crate) fn emit_audit(sys: &CloudSystem, watermark: &mut usize, out: &mut Vec<Frame>) {
    let audit = sys.audit.lock();
    let entries = audit.entries();
    if entries.len() <= *watermark {
        return;
    }
    for entry in &entries[*watermark..] {
        out.push(Frame::put::<Audit>(
            &(entry.index,),
            &audit::entry_bytes(entry),
        ));
    }
    let (next_seq, clock) = audit.counters();
    out.push(meta_frame(META_AUDIT, meta_audit_value(next_seq, clock)));
    *watermark = entries.len();
}

// ---------------------------------------------------------------------
// Checkpoint populate
// ---------------------------------------------------------------------

/// Builds a checkpoint keyspace from the full live state: every
/// persistent table registered (so empty tables checkpoint as empty
/// sections) and every row emitted from the same walks the per-op
/// emitters use.
pub(crate) fn populate(sys: &CloudSystem) -> Keyspace {
    let ks = Keyspace::new();
    register_all(&ks);
    let mut frames = vec![ca_frame(sys)];
    all_authority_frames(sys, &mut frames);
    all_owner_frames(sys, &mut frames);
    {
        let users = sys.directory.users.read();
        for (uid, state) in &users.users {
            frames.push(Frame::put::<Users>(
                &(uid.as_str().to_owned(),),
                &state.pk.to_wire_bytes(),
            ));
            for ((owner, aid), key) in &state.keys {
                frames.push(Frame::put::<UserKeys>(
                    &(
                        uid.as_str().to_owned(),
                        owner.as_str().to_owned(),
                        aid.as_str().to_owned(),
                    ),
                    &key.to_wire_bytes(),
                ));
            }
        }
        for (uid, attrs) in &users.grants {
            for attr in attrs {
                frames.push(Frame::put::<Grants>(
                    &(uid.as_str().to_owned(), attr.to_string()),
                    &Vec::new(),
                ));
            }
        }
        for uid in &users.offline {
            frames.push(Frame::put::<Offline>(
                &(uid.as_str().to_owned(),),
                &Vec::new(),
            ));
        }
        for (uid, queue) in &users.pending_updates {
            frames.push(Frame::put::<PendingUpdates>(
                &(uid.as_str().to_owned(),),
                &pending_updates_value(queue),
            ));
        }
    }
    for ((owner, record), envelope) in sys.data.server.export_records() {
        frames.push(Frame::put::<Records>(
            &(owner.as_str().to_owned(), record.clone()),
            &envelope.to_wire_bytes(),
        ));
        component_frames(&owner, &record, &envelope, &mut frames);
    }
    {
        let audit = sys.audit.lock();
        for entry in audit.entries() {
            frames.push(Frame::put::<Audit>(
                &(entry.index,),
                &audit::entry_bytes(entry),
            ));
        }
        let (next_seq, clock) = audit.counters();
        frames.push(meta_frame(META_AUDIT, meta_audit_value(next_seq, clock)));
    }
    {
        let shards = sys.control.shards.read();
        for shard in shards.values() {
            let st = shard.state.lock();
            for pending in st.in_flight.values() {
                frames.push(Frame::put::<PendingRevocations>(
                    &(pending.id,),
                    &pending_revocation_value(pending),
                ));
            }
        }
    }
    frames.push(meta_frame(
        META_NEXT_REVOCATION,
        meta_u64_value(
            sys.control
                .next_revocation
                .load(std::sync::atomic::Ordering::SeqCst),
        ),
    ));
    {
        let queue = sys.lazy.queue.lock();
        for (id, p) in queue.iter() {
            frames.push(Frame::put::<LazyQueue>(&(*id,), &lazy_queue_value(p)));
        }
    }
    {
        let archive = sys.lazy.archive.read();
        for ((aid, owner, from), uk) in archive.iter() {
            frames.push(Frame::put::<LazyArchive>(
                &(aid.as_str().to_owned(), owner.as_str().to_owned(), *from),
                &uk.to_wire_bytes(),
            ));
        }
    }
    ks.apply(&frames);
    ks
}

// ---------------------------------------------------------------------
// Hydration
// ---------------------------------------------------------------------

fn ks_err(e: mabe_store::SchemaError) -> OpenError {
    OpenError::Keyspace(e)
}

fn str_prefix(s: &str) -> Vec<u8> {
    let mut out = Vec::new();
    key_str(&mut out, s);
    out
}

/// Rebuilds a [`CloudSystem`] from keyspace rows by synthesizing the
/// legacy snapshot byte layout and running the legacy decoder over it —
/// one decode path (with all its duplicate/integrity checks) for both
/// typed and pre-migration snapshots. An entirely empty keyspace
/// hydrates to a fresh system.
///
/// # Errors
///
/// [`OpenError::Keyspace`] for undecodable rows,
/// [`OpenError::Snapshot`] / [`OpenError::Audit`] from the legacy
/// decoder for semantically broken state.
pub(crate) fn hydrate(ks: &Keyspace, seed: u64) -> Result<CloudSystem, OpenError> {
    if ks.total_rows() == 0 {
        return Ok(CloudSystem::new(seed));
    }
    let mut out = Vec::new();
    out.extend_from_slice(crate::persist::SNAPSHOT_MAGIC);
    let ca = ks
        .get::<Meta>(&(META_CA.to_owned(),))
        .map_err(ks_err)?
        .ok_or(OpenError::Snapshot(mabe_core::Error::Malformed(
            "keyspace missing certificate-authority row",
        )))?;
    put_bytes(&mut out, &ca);

    let authorities = ks.range::<Authorities>(&[]).map_err(ks_err)?;
    put_u32(&mut out, authorities.len() as u32);
    for (_, wire) in &authorities {
        put_bytes(&mut out, wire);
    }

    let owners = ks.range::<Owners>(&[]).map_err(ks_err)?;
    put_u32(&mut out, owners.len() as u32);
    for (_, wire) in &owners {
        put_bytes(&mut out, wire);
    }

    let users = ks.range::<Users>(&[]).map_err(ks_err)?;
    put_u32(&mut out, users.len() as u32);
    for ((uid,), pk) in &users {
        put_str(&mut out, uid);
        put_bytes(&mut out, pk);
        let keys = ks.range::<UserKeys>(&str_prefix(uid)).map_err(ks_err)?;
        put_u32(&mut out, keys.len() as u32);
        for ((_, owner, aid), key) in &keys {
            put_str(&mut out, owner);
            put_str(&mut out, aid);
            put_bytes(&mut out, key);
        }
    }

    // The live invariant gives every registered user a grant set (empty
    // or not), so synthesize one section entry per user.
    put_u32(&mut out, users.len() as u32);
    for ((uid,), _) in &users {
        put_str(&mut out, uid);
        let attrs = ks.range::<Grants>(&str_prefix(uid)).map_err(ks_err)?;
        put_u32(&mut out, attrs.len() as u32);
        for ((_, attr), _) in &attrs {
            put_str(&mut out, attr);
        }
    }

    let offline = ks.range::<Offline>(&[]).map_err(ks_err)?;
    put_u32(&mut out, offline.len() as u32);
    for ((uid,), _) in &offline {
        put_str(&mut out, uid);
    }

    let pending_updates = ks.range::<PendingUpdates>(&[]).map_err(ks_err)?;
    put_u32(&mut out, pending_updates.len() as u32);
    for ((uid,), value) in &pending_updates {
        put_str(&mut out, uid);
        out.extend_from_slice(value);
    }

    let records = ks.range::<Records>(&[]).map_err(ks_err)?;
    let mut server_blob = Vec::new();
    put_u32(&mut server_blob, records.len() as u32);
    for ((owner, record), envelope) in &records {
        put_str(&mut server_blob, owner);
        put_str(&mut server_blob, record);
        put_bytes(&mut server_blob, envelope);
    }
    put_bytes(&mut out, &server_blob);

    let audit_rows = ks.range::<Audit>(&[]).map_err(ks_err)?;
    let (next_seq, clock) = match ks.get::<Meta>(&(META_AUDIT.to_owned(),)).map_err(ks_err)? {
        Some(raw) if raw.len() == 16 => (
            u64::from_be_bytes(raw[..8].try_into().expect("length checked")),
            u64::from_be_bytes(raw[8..].try_into().expect("length checked")),
        ),
        Some(_) => {
            return Err(OpenError::Snapshot(mabe_core::Error::Malformed(
                "malformed audit counter row",
            )))
        }
        None => (0, 0),
    };
    let mut audit_blob = Vec::new();
    audit_blob.extend_from_slice(audit::AUDIT_MAGIC);
    put_u64(&mut audit_blob, next_seq);
    put_u64(&mut audit_blob, clock);
    put_u32(&mut audit_blob, audit_rows.len() as u32);
    for (_, entry) in &audit_rows {
        audit_blob.extend_from_slice(entry);
    }
    put_bytes(&mut out, &audit_blob);

    let pendings = ks.range::<PendingRevocations>(&[]).map_err(ks_err)?;
    put_u32(&mut out, pendings.len() as u32);
    for ((id,), value) in &pendings {
        put_u64(&mut out, *id);
        out.extend_from_slice(value);
    }

    let queue = ks.range::<LazyQueue>(&[]).map_err(ks_err)?;
    // The counter must outrun every id still in flight or queued, even
    // if the Meta row lagged (it is journaled with the begin batch, so
    // in practice it never does).
    let stored_next = match ks
        .get::<Meta>(&(META_NEXT_REVOCATION.to_owned(),))
        .map_err(ks_err)?
    {
        Some(raw) if raw.len() == 8 => u64::from_be_bytes(raw[..].try_into().expect("len")),
        Some(_) => {
            return Err(OpenError::Snapshot(mabe_core::Error::Malformed(
                "malformed revocation counter row",
            )))
        }
        None => 0,
    };
    let next_revocation = stored_next
        .max(pendings.iter().map(|((id,), _)| id + 1).max().unwrap_or(0))
        .max(queue.iter().map(|((id,), _)| id + 1).max().unwrap_or(0));
    put_u64(&mut out, next_revocation);

    put_u32(&mut out, queue.len() as u32);
    for ((id,), value) in &queue {
        put_u64(&mut out, *id);
        out.extend_from_slice(value);
    }

    let archive = ks.range::<LazyArchive>(&[]).map_err(ks_err)?;
    put_u32(&mut out, archive.len() as u32);
    for ((aid, owner, from), uk) in &archive {
        put_str(&mut out, aid);
        put_str(&mut out, owner);
        put_u64(&mut out, *from);
        put_bytes(&mut out, uk);
    }

    crate::persist::decode_system(&out, seed)
}
