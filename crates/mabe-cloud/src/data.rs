//! Data plane: publish, read, outsourced read, and proxy
//! re-encryption.
//!
//! Every data-plane entry point takes `&self`: the ciphertext store is
//! the already-concurrent [`CloudServer`] behind an `Arc`, and reader
//! state (user keys) is cloned out of the directory under a short read
//! lock. Reads therefore proceed while a revocation holds an authority
//! shard — they serve the last consistent version, exactly the
//! graceful degradation the paper's semi-trusted-server model wants.
//!
//! Re-encryption after a revocation fans out across the affected
//! ciphertext components on a scoped worker pool
//! ([`CloudSystem::set_reencrypt_workers`]); each worker joins the
//! revocation's causal tree via [`mabe_trace::Span::follow`], so the
//! forensics invariant (one tree, no orphan spans) survives the
//! parallelism.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use mabe_core::{
    open_component_with_kem, seal_envelope, CiphertextId, Error, OwnerId, Uid, UpdateKey,
    UserSecretKey,
};
use mabe_policy::{parse, AuthorityId, Policy};

use crate::audit::AuditEvent;
use crate::cache::ContentCacheKey;
use crate::recovery::PendingRevocation;
use crate::server::{CloudServer, RecordKey};
use crate::system::{fault_points, CloudError, CloudSystem};
use crate::wire::Endpoint;

/// How many times a reader whose key view lags a concurrent
/// revocation's key delivery will wait out the immediate phase and
/// re-clone before giving up. Each pass absorbs one version bump that
/// landed mid-read, so this only binds under a revocation storm denser
/// than the reader's own retry loop — a revoked user burns the budget
/// and is then denied deterministically.
const MAX_READ_BARRIERS: usize = 8;

/// The data plane: the shared ciphertext store plus the re-encryption
/// fan-out width.
#[derive(Debug)]
pub(crate) struct DataPlane {
    pub(crate) server: Arc<CloudServer>,
    /// Worker count for the re-encryption pool; 1 = sequential (the
    /// deterministic default every chaos/crash-sweep schedule assumes).
    pub(crate) reencrypt_workers: AtomicUsize,
}

impl DataPlane {
    pub(crate) fn new() -> Self {
        DataPlane {
            server: Arc::new(CloudServer::new()),
            reencrypt_workers: AtomicUsize::new(1),
        }
    }
}

impl CloudSystem {
    /// Publishes a record: each `(label, data, policy)` component is
    /// sealed (fresh content key, CP-ABE-wrapped) and uploaded.
    ///
    /// # Errors
    ///
    /// Fails on unknown owner, bad policy, or encryption errors.
    pub fn publish(
        &self,
        owner_id: &OwnerId,
        record: &str,
        components: &[(&str, &[u8], &str)],
    ) -> Result<(), CloudError> {
        let _span = mabe_telemetry::Span::with_labels("mabe_system_op", &[("op", "publish")]);
        let _trace = mabe_trace::Span::child("cloud.publish").detail(record.to_owned());
        mabe_trace::op_attr("uid", owner_id.to_string());
        if !self.directory.owners.read().contains_key(owner_id) {
            return Err(CloudError::Core(Error::UnknownOwner(owner_id.clone())));
        }
        let policies: Vec<Policy> = components
            .iter()
            .map(|(_, _, p)| parse(p))
            .collect::<Result<_, _>>()?;
        let specs: Vec<(&str, &[u8], &Policy)> = components
            .iter()
            .zip(policies.iter())
            .map(|((label, data, _), policy)| (*label, *data, policy))
            .collect();
        let envelope = {
            let mut owners = self.directory.owners.write();
            let owner = owners.get_mut(owner_id).expect("checked above");
            seal_envelope(owner, &specs, &mut *self.rng.lock())?
        };
        // The upload consults PUBLISH_STORE: transient storage errors and
        // drops are retried; a crash aborts *before* the store, so a
        // failed publish never leaves a half-written record.
        self.transmit(
            fault_points::PUBLISH_STORE,
            Endpoint::Owner(owner_id.clone()),
            Endpoint::Server,
            &format!("record {record}"),
            envelope.stored_size(),
        )?;
        self.data.server.store(owner_id.clone(), record, envelope);
        // A publish whose seal raced a revocation may have landed at the
        // pre-bump version *after* the eager worklist stopped looking.
        // Heal inline from the update-key archive, best-effort: anything
        // this misses is still caught by read-triggered upgrade or the
        // lazy drain, and a fault mid-heal must not fail the (already
        // stored and audited-as-stored) publish.
        self.heal_stale_components(owner_id, record);
        self.audit.lock().record(AuditEvent::Published {
            owner: owner_id.to_string(),
            record: record.to_owned(),
            components: components.iter().map(|(l, _, _)| (*l).to_owned()).collect(),
        });
        Ok(())
    }

    /// A user downloads one component of a record and decrypts it.
    ///
    /// Takes `&self`: concurrent readers share the server and clone
    /// their key view out of the directory, so reads race neither each
    /// other nor the control plane.
    ///
    /// # Errors
    ///
    /// Unknown record/component, or any decryption error (unsatisfied
    /// policy, missing authority key, stale versions).
    pub fn read(
        &self,
        uid: &Uid,
        owner_id: &OwnerId,
        record: &str,
        label: &str,
    ) -> Result<Vec<u8>, CloudError> {
        let _span = mabe_telemetry::Span::with_labels("mabe_system_op", &[("op", "read")]);
        let _trace = mabe_trace::Span::child("cloud.read").detail(format!("{record}/{label}"));
        mabe_trace::op_attr("uid", uid.to_string());
        if !self.directory.users.read().users.contains_key(uid) {
            return Err(CloudError::Core(Error::UnknownUser(uid.clone())));
        }
        let envelope = self
            .data
            .server
            .fetch(owner_id, record)
            .ok_or_else(|| CloudError::UnknownRecord(record.to_owned()))?;
        let component = envelope
            .component(label)
            .ok_or_else(|| CloudError::UnknownComponent(label.to_owned()))?;
        if let Some(v) = component.key_ct.versions.values().max() {
            mabe_trace::op_attr("key_version_observed", v.to_string());
        }
        // Reads are server-side only: they keep working while authorities
        // are down (graceful degradation at the last consistent version),
        // and transient download faults are retried at READ_FETCH.
        self.transmit(
            fault_points::READ_FETCH,
            Endpoint::Server,
            Endpoint::User(uid.clone()),
            &format!("component {record}/{label}"),
            component.stored_size(),
        )?;
        let mut retried = false;
        let mut barriers = 0;
        let result = loop {
            let mut envelope = self
                .data
                .server
                .fetch(owner_id, record)
                .ok_or_else(|| CloudError::UnknownRecord(record.to_owned()))?;
            let component = envelope
                .component(label)
                .ok_or_else(|| CloudError::UnknownComponent(label.to_owned()))?;
            // Read-triggered upgrade: a component the archive can still
            // advance is never served stale — hot objects converge ahead
            // of the lazy drain, and an adversary holding pre-revocation
            // keys never finds a matching pre-revocation ciphertext.
            if self.upgrade_before_serve(owner_id, record, label, component)? {
                envelope = self
                    .data
                    .server
                    .fetch(owner_id, record)
                    .ok_or_else(|| CloudError::UnknownRecord(record.to_owned()))?;
            }
            let component = envelope
                .component(label)
                .ok_or_else(|| CloudError::UnknownComponent(label.to_owned()))?;
            if let Some(v) = component.key_ct.versions.values().max() {
                // Last iteration wins: the version actually served.
                mabe_trace::op_attr("key_version_served", v.to_string());
            }
            let (pk, keys) = {
                let users = self.directory.users.read();
                let state = users.users.get(uid).expect("checked above");
                let keys: BTreeMap<AuthorityId, UserSecretKey> = state
                    .keys
                    .iter()
                    .filter(|((o, _), _)| o == owner_id)
                    .map(|((_, aid), key)| (aid.clone(), key.clone()))
                    .collect();
                (state.pk.clone(), keys)
            };
            // Hot-key cache: the recovered KEM element per (reader,
            // component, exact version vector). A hit skips the CP-ABE
            // pairing work entirely; any re-encryption changes the
            // version vector and thus the key, so stale hits are
            // structurally impossible, and the generation guard keeps a
            // decryption racing a revocation's bump from repopulating
            // the cache afterwards.
            let cache_key = ContentCacheKey {
                uid: uid.to_string(),
                owner: owner_id.to_string(),
                record: record.to_owned(),
                label: label.to_owned(),
                versions: component
                    .key_ct
                    .versions
                    .iter()
                    .map(|(a, v)| (a.to_string(), *v))
                    .collect(),
            };
            let opened = match self.cache.get_content(&cache_key) {
                Some(kem) => open_component_with_kem(component, &kem),
                None => {
                    let snapshot = self
                        .cache
                        .generation_snapshot(component.key_ct.versions.keys());
                    match mabe_core::decrypt(&component.key_ct, &pk, &keys) {
                        Ok(kem) => {
                            let out = open_component_with_kem(component, &kem);
                            if out.is_ok() {
                                self.cache.insert_content_if(&snapshot, cache_key, kem);
                            }
                            out
                        }
                        Err(e) => Err(e),
                    }
                }
            };
            match opened {
                // The key view lags the component: a concurrent
                // revocation advanced the ciphertext (possibly via our
                // own upgrade-before-serve) while its key delivery was
                // still in flight. Wait out the immediate phase and
                // re-clone — a live holder's key catches up; a revoked
                // user's never does and falls through to denial.
                Err(Error::VersionMismatch {
                    authority,
                    expected,
                    found,
                }) if found < expected && barriers < MAX_READ_BARRIERS => {
                    barriers += 1;
                    self.key_delivery_barrier(&authority);
                    continue;
                }
                // The inverse benign race — keys cloned just after a
                // bump whose component upgrade this read ran ahead of.
                // One retry re-fetches both sides; the refreshed
                // upgrade-before-serve pass closes the gap.
                Err(Error::VersionMismatch { .. }) if !retried => {
                    retried = true;
                    continue;
                }
                result => break result,
            }
        };
        self.audit.lock().record(AuditEvent::Read {
            uid: uid.to_string(),
            owner: owner_id.to_string(),
            record: record.to_owned(),
            component: label.to_owned(),
            allowed: result.is_ok(),
        });
        Ok(result?)
    }

    /// Like [`Self::read`], but decryption is outsourced: the user sends
    /// a blinded transform key, the **server** runs all pairings and
    /// returns a token, and the user finishes with one `G_T`
    /// exponentiation (the DAC-MACS-style extension in
    /// `mabe_core::outsource`). The server learns nothing: the token
    /// carries the user's `1/z` blinding.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::read`].
    pub fn read_outsourced(
        &self,
        uid: &Uid,
        owner_id: &OwnerId,
        record: &str,
        label: &str,
    ) -> Result<Vec<u8>, CloudError> {
        let _span =
            mabe_telemetry::Span::with_labels("mabe_system_op", &[("op", "read_outsourced")]);
        let _trace =
            mabe_trace::Span::child("cloud.read_outsourced").detail(format!("{record}/{label}"));
        mabe_trace::op_attr("uid", uid.to_string());
        if !self.directory.users.read().users.contains_key(uid) {
            return Err(CloudError::Core(Error::UnknownUser(uid.clone())));
        }
        let mut retried = false;
        let mut barriers = 0;
        let result = loop {
            let (pk, keys) = {
                let users = self.directory.users.read();
                let state = users.users.get(uid).expect("checked above");
                let keys: BTreeMap<AuthorityId, UserSecretKey> = state
                    .keys
                    .iter()
                    .filter(|((o, _), _)| o == owner_id)
                    .map(|((_, aid), key)| (aid.clone(), key.clone()))
                    .collect();
                (state.pk.clone(), keys)
            };
            let mut envelope = self
                .data
                .server
                .fetch(owner_id, record)
                .ok_or_else(|| CloudError::UnknownRecord(record.to_owned()))?;
            let component = envelope
                .component(label)
                .ok_or_else(|| CloudError::UnknownComponent(label.to_owned()))?;
            if !retried && barriers == 0 {
                if let Some(v) = component.key_ct.versions.values().max() {
                    mabe_trace::op_attr("key_version_observed", v.to_string());
                }
            }
            // Same read-triggered upgrade as [`Self::read`]: stale
            // components are advanced in place before the server runs
            // its transform.
            if self.upgrade_before_serve(owner_id, record, label, component)? {
                envelope = self
                    .data
                    .server
                    .fetch(owner_id, record)
                    .ok_or_else(|| CloudError::UnknownRecord(record.to_owned()))?;
            }
            let component = envelope
                .component(label)
                .ok_or_else(|| CloudError::UnknownComponent(label.to_owned()))?;
            if let Some(v) = component.key_ct.versions.values().max() {
                // Last iteration wins: the version actually served.
                mabe_trace::op_attr("key_version_served", v.to_string());
            }
            let (tk, rk) = mabe_core::make_transform_key(&pk, &keys, &mut *self.rng.lock())?;
            // The blinded key travels to the server (same element count as
            // the underlying secret keys plus the blinded PK).
            let tk_bytes: usize =
                keys.values().map(UserSecretKey::wire_size).sum::<usize>() + mabe_core::G_BYTES;
            self.wire.send(
                Endpoint::User(uid.clone()),
                Endpoint::Server,
                "transform key",
                tk_bytes,
            );
            let token = match mabe_core::server_transform(&component.key_ct, &tk) {
                // Same two races as [`Self::read`]: lagging key view
                // (wait out the in-flight delivery, bounded) or a key
                // bump this read ran ahead of (one refetch).
                Err(Error::VersionMismatch {
                    authority,
                    expected,
                    found,
                }) if found < expected && barriers < MAX_READ_BARRIERS => {
                    barriers += 1;
                    self.key_delivery_barrier(&authority);
                    continue;
                }
                Err(Error::VersionMismatch { .. }) if !retried => {
                    retried = true;
                    continue;
                }
                token => token?,
            };
            // Only the 128-byte token comes back — not the ciphertext.
            self.wire.send(
                Endpoint::Server,
                Endpoint::User(uid.clone()),
                format!("transform token {record}/{label}"),
                mabe_core::GT_BYTES + component.sealed.len() + component.nonce.len(),
            );
            let kem = mabe_core::client_recover(&component.key_ct, &token, &rk);
            break mabe_core::open_component_with_kem(component, &kem);
        };
        self.audit.lock().record(AuditEvent::Read {
            uid: uid.to_string(),
            owner: owner_id.to_string(),
            record: record.to_owned(),
            component: label.to_owned(),
            allowed: result.is_ok(),
        });
        Ok(result?)
    }

    /// Waits out any in-flight revocation at `aid`. The immediate phase
    /// (version bump, key delivery) runs entirely under the authority's
    /// shard lock, so acquiring and dropping it is a happens-after
    /// barrier: once it returns, the directory holds every key this
    /// reader was owed by the revocation that outran its key clone.
    /// Only the mismatch-retry path pays this — the hot read path still
    /// takes no shard lock.
    pub(crate) fn key_delivery_barrier(&self, aid: &AuthorityId) {
        if let Some(shard) = self.control.shard(aid) {
            drop(shard.state.lock());
        }
    }

    /// Sets the worker count for the re-encryption pool. `1` (the
    /// default) keeps phase 2 strictly sequential — byte-for-byte the
    /// behavior every seeded chaos schedule replays — while `n > 1`
    /// fans the affected components out over `n` scoped workers.
    pub fn set_reencrypt_workers(&self, workers: usize) {
        self.data
            .reencrypt_workers
            .store(workers.max(1), Ordering::Relaxed);
    }

    /// The configured re-encryption fan-out width.
    pub fn reencrypt_workers(&self) -> usize {
        self.data.reencrypt_workers.load(Ordering::Relaxed)
    }

    /// Owners apply their update keys (checkpointed per owner in the
    /// pending entry). Runs in the *immediate* phase of both eager and
    /// lazy revocation: [`mabe_core::DataOwner::update_info_for`] needs
    /// attribute-key history at both ends of a version span, so owner
    /// histories must advance before any deferred or read-triggered
    /// upgrade can produce update info.
    pub(crate) fn update_owners(&self, pending: &mut PendingRevocation) -> Result<(), CloudError> {
        let aid = pending.event.aid.clone();
        let owner_ids: Vec<OwnerId> = self.directory.owners.read().keys().cloned().collect();
        for owner_id in owner_ids {
            let Some(uk) = pending.event.update_keys.get(&owner_id).cloned() else {
                continue;
            };
            if pending.updated_owners.contains(&owner_id) {
                continue;
            }
            self.transmit(
                fault_points::REVOKE_OWNER_UPDATE,
                Endpoint::Authority(aid.clone()),
                Endpoint::Owner(owner_id.clone()),
                "update key",
                uk.wire_size(),
            )?;
            {
                let mut owners = self.directory.owners.write();
                let owner = owners.get_mut(&owner_id).expect("owner exists");
                match owner.apply_update_key(&uk) {
                    Ok(()) => {}
                    Err(Error::VersionMismatch { found, .. }) if found >= uk.to_version => {}
                    Err(e) => return Err(e.into()),
                }
            }
            pending.updated_owners.insert(owner_id.clone());
        }
        Ok(())
    }

    /// Phase 2 (eager): the server re-encrypts every affected
    /// ciphertext. The worklist comes from
    /// [`CloudServer::affected_ciphertexts`], which only returns
    /// components still at the old version — replaying a half-finished
    /// phase naturally skips what is already done (and is what makes a
    /// parallel run idempotent too: workers that already advanced a
    /// component before a failure simply shrink the next worklist).
    ///
    /// The worklist is re-taken until a pass finds nothing: a publish
    /// racing this revocation may seal at the pre-bump version and
    /// store *after* the first snapshot, and a single-shot worklist
    /// would strand it stale forever.
    pub(crate) fn reencrypt_phase(
        &self,
        pending: &mut PendingRevocation,
    ) -> Result<(), CloudError> {
        let _trace = mabe_trace::Span::child("cloud.reencrypt_phase")
            .detail(format!("@{}", pending.event.aid));
        let aid = pending.event.aid.clone();
        let from = pending.event.from_version;
        let to = pending.event.to_version;
        let owner_ids: Vec<OwnerId> = self.directory.owners.read().keys().cloned().collect();
        for owner_id in owner_ids {
            let Some(uk) = pending.event.update_keys.get(&owner_id).cloned() else {
                continue;
            };
            loop {
                let affected = self.data.server.affected_ciphertexts(&owner_id, &aid, from);
                if affected.is_empty() {
                    break;
                }
                let workers = self
                    .data
                    .reencrypt_workers
                    .load(Ordering::Relaxed)
                    .clamp(1, affected.len());
                if workers <= 1 {
                    for item in &affected {
                        self.reencrypt_one(&aid, from, to, &owner_id, &uk, item)?;
                    }
                } else {
                    self.reencrypt_parallel(&aid, from, to, &owner_id, &uk, &affected, workers)?;
                }
            }
        }
        Ok(())
    }

    /// Re-encrypts one affected component: fault point, per-ciphertext
    /// update info from the owner, byte-accounted upload, server-side
    /// component update. Safe to call from worker threads — every
    /// touched structure is interior-mutable or read-locked.
    fn reencrypt_one(
        &self,
        aid: &AuthorityId,
        from: u64,
        to: u64,
        owner_id: &OwnerId,
        uk: &UpdateKey,
        item: &(RecordKey, String, CiphertextId),
    ) -> Result<(), CloudError> {
        let (record_key, label, ct_id) = item;
        let _trace = mabe_trace::Span::child("cloud.reencrypt")
            .detail(format!("{}/{}/{label}", record_key.0, record_key.1));
        self.local_op(fault_points::REVOKE_REENCRYPT, None)?;
        let ui = {
            let owners = self.directory.owners.read();
            let owner = owners.get(owner_id).expect("owner exists");
            owner.update_info_for(*ct_id, aid, from, to)?
        };
        self.wire.send(
            Endpoint::Owner(owner_id.clone()),
            Endpoint::Server,
            "update key + update info",
            uk.wire_size() + ui.wire_size(),
        );
        match self
            .data
            .server
            .reencrypt_component(record_key, label, uk, &ui)
        {
            Ok(()) => Ok(()),
            // A concurrent read-triggered upgrade got here first and
            // advanced the component past this revocation's target.
            Err(Error::VersionMismatch { found, .. }) if found >= to => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// If the archive can advance any of a component's per-authority
    /// versions, the component must not be served as-is. How it becomes
    /// current depends on the revocation mode:
    ///
    /// - **eager** (consistency-first): a stale-but-advanceable
    ///   component normally means an inline re-encryption pass is
    ///   mid-flight under the authority's shard lock. The reader waits
    ///   it out behind [`Self::key_delivery_barrier`] — when the lock
    ///   drops the worklist has already advanced this component — so
    ///   reads observe whole revocations, never a half-applied one.
    /// - **lazy** (availability-first): the reader upgrades the
    ///   component in place via the archived update-key chain (at the
    ///   [`fault_points::READ_UPGRADE`] point) — hot objects converge
    ///   ahead of the drain, and an adversary holding pre-revocation
    ///   keys never finds a matching pre-revocation ciphertext.
    ///
    /// A component still stale after the eager barrier (a crashed
    /// revocation left it behind, or a fresh bump landed between the
    /// barrier and the re-fetch) falls through to the same in-place
    /// upgrade, so eager mode keeps the read-triggered heal.
    ///
    /// Returns `true` if the stored component changed so the caller
    /// re-fetches. Read-triggered upgrades are deliberately unjournaled
    /// and unaudited: they are a pure server-side cache warm — the
    /// durable queue still owns convergence, and audit streams must not
    /// depend on which replica's reads ran first.
    fn upgrade_before_serve(
        &self,
        owner_id: &OwnerId,
        record: &str,
        label: &str,
        component: &mabe_core::SealedComponent,
    ) -> Result<bool, CloudError> {
        let mut stale = self.stale_versions(owner_id, &component.key_ct.versions);
        if stale.is_empty() {
            return Ok(false);
        }
        let _trace =
            mabe_trace::Span::child("cloud.read_upgrade").detail(format!("{record}/{label}"));
        let mut ct_id = component.key_ct.id;
        if !self.lazy_revocation_enabled() {
            for (aid, _) in &stale {
                self.key_delivery_barrier(aid);
            }
            let envelope = self
                .data
                .server
                .fetch(owner_id, record)
                .ok_or_else(|| CloudError::UnknownRecord(record.to_owned()))?;
            let component = envelope
                .component(label)
                .ok_or_else(|| CloudError::UnknownComponent(label.to_owned()))?;
            stale = self.stale_versions(owner_id, &component.key_ct.versions);
            if stale.is_empty() {
                return Ok(true);
            }
            ct_id = component.key_ct.id;
        }
        self.local_op(fault_points::READ_UPGRADE, None)?;
        let record_key = (owner_id.clone(), record.to_owned());
        let telemetry = mabe_telemetry::global();
        for (aid, v) in &stale {
            self.upgrade_one(aid, owner_id, *v, &record_key, label, ct_id)?;
            // The wide event for the enclosing read carries the (last)
            // authority whose stale component this read healed.
            mabe_trace::op_attr("authority", aid.to_string());
            telemetry
                .counter(
                    "mabe_read_upgrades_total",
                    &[("authority", &aid.to_string())],
                )
                .inc();
        }
        // The unlabeled total keeps its original meaning (upgrade
        // passes, not per-authority component upgrades) so existing
        // baselines and dashboards stay comparable.
        telemetry.counter("mabe_read_upgrades_total", &[]).inc();
        Ok(true)
    }

    /// Post-store half of the publish/revoke race fix: upgrades any
    /// just-stored component the archive can already advance.
    /// Best-effort by design — no fault point, no audit, errors
    /// swallowed — because the publish has already succeeded and the
    /// drain / read-upgrade paths will converge whatever this misses.
    fn heal_stale_components(&self, owner_id: &OwnerId, record: &str) {
        if self.lazy.archive.read().is_empty() {
            return;
        }
        let Some(envelope) = self.data.server.fetch(owner_id, record) else {
            return;
        };
        let record_key = (owner_id.clone(), record.to_owned());
        for component in &envelope.components {
            for (aid, v) in self.stale_versions(owner_id, &component.key_ct.versions) {
                let _ = self.upgrade_one(
                    &aid,
                    owner_id,
                    v,
                    &record_key,
                    &component.label,
                    component.key_ct.id,
                );
            }
        }
    }

    /// Fans the affected-component worklist out over `workers` scoped
    /// threads. Each worker opens a span with [`mabe_trace::Span::follow`]
    /// on the caller's context, so its `cloud.reencrypt` children land
    /// in the revocation's causal tree instead of orphaned roots. On
    /// failure the lowest-index error is returned; other workers stop
    /// at their next pull, and whatever they already re-encrypted stays
    /// done (idempotent worklist).
    #[allow(clippy::too_many_arguments)]
    fn reencrypt_parallel(
        &self,
        aid: &AuthorityId,
        from: u64,
        to: u64,
        owner_id: &OwnerId,
        uk: &UpdateKey,
        affected: &[(RecordKey, String, CiphertextId)],
        workers: usize,
    ) -> Result<(), CloudError> {
        let parent = mabe_trace::current_ctx();
        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let failures: Mutex<Vec<(usize, CloudError)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..workers {
                let next = &next;
                let stop = &stop;
                let failures = &failures;
                scope.spawn(move || {
                    let _span = parent.map(|ctx| {
                        mabe_trace::Span::follow(ctx, "cloud.reencrypt.worker")
                            .detail(format!("worker {w}"))
                    });
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= affected.len() {
                            break;
                        }
                        if let Err(e) =
                            self.reencrypt_one(aid, from, to, owner_id, uk, &affected[i])
                        {
                            failures.lock().push((i, e));
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                });
            }
        });
        let mut collected = std::mem::take(&mut *failures.lock());
        collected.sort_by_key(|(i, _)| *i);
        match collected.into_iter().next() {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    }
}
