//! Data plane: publish, read, outsourced read, and proxy
//! re-encryption.
//!
//! Every data-plane entry point takes `&self`: the ciphertext store is
//! the already-concurrent [`CloudServer`] behind an `Arc`, and reader
//! state (user keys) is cloned out of the directory under a short read
//! lock. Reads therefore proceed while a revocation holds an authority
//! shard — they serve the last consistent version, exactly the
//! graceful degradation the paper's semi-trusted-server model wants.
//!
//! Re-encryption after a revocation fans out across the affected
//! ciphertext components on a scoped worker pool
//! ([`CloudSystem::set_reencrypt_workers`]); each worker joins the
//! revocation's causal tree via [`mabe_trace::Span::follow`], so the
//! forensics invariant (one tree, no orphan spans) survives the
//! parallelism.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use mabe_core::{
    open_component, seal_envelope, CiphertextId, Error, OwnerId, Uid, UpdateKey, UserSecretKey,
};
use mabe_policy::{parse, AuthorityId, Policy};

use crate::audit::AuditEvent;
use crate::recovery::PendingRevocation;
use crate::server::{CloudServer, RecordKey};
use crate::system::{fault_points, CloudError, CloudSystem};
use crate::wire::Endpoint;

/// The data plane: the shared ciphertext store plus the re-encryption
/// fan-out width.
#[derive(Debug)]
pub(crate) struct DataPlane {
    pub(crate) server: Arc<CloudServer>,
    /// Worker count for the re-encryption pool; 1 = sequential (the
    /// deterministic default every chaos/crash-sweep schedule assumes).
    pub(crate) reencrypt_workers: AtomicUsize,
}

impl DataPlane {
    pub(crate) fn new() -> Self {
        DataPlane {
            server: Arc::new(CloudServer::new()),
            reencrypt_workers: AtomicUsize::new(1),
        }
    }
}

impl CloudSystem {
    /// Publishes a record: each `(label, data, policy)` component is
    /// sealed (fresh content key, CP-ABE-wrapped) and uploaded.
    ///
    /// # Errors
    ///
    /// Fails on unknown owner, bad policy, or encryption errors.
    pub fn publish(
        &self,
        owner_id: &OwnerId,
        record: &str,
        components: &[(&str, &[u8], &str)],
    ) -> Result<(), CloudError> {
        let _span = mabe_telemetry::Span::with_labels("mabe_system_op", &[("op", "publish")]);
        let _trace = mabe_trace::Span::child("cloud.publish").detail(record.to_owned());
        if !self.directory.owners.read().contains_key(owner_id) {
            return Err(CloudError::Core(Error::UnknownOwner(owner_id.clone())));
        }
        let policies: Vec<Policy> = components
            .iter()
            .map(|(_, _, p)| parse(p))
            .collect::<Result<_, _>>()?;
        let specs: Vec<(&str, &[u8], &Policy)> = components
            .iter()
            .zip(policies.iter())
            .map(|((label, data, _), policy)| (*label, *data, policy))
            .collect();
        let envelope = {
            let mut owners = self.directory.owners.write();
            let owner = owners.get_mut(owner_id).expect("checked above");
            seal_envelope(owner, &specs, &mut *self.rng.lock())?
        };
        // The upload consults PUBLISH_STORE: transient storage errors and
        // drops are retried; a crash aborts *before* the store, so a
        // failed publish never leaves a half-written record.
        self.transmit(
            fault_points::PUBLISH_STORE,
            Endpoint::Owner(owner_id.clone()),
            Endpoint::Server,
            &format!("record {record}"),
            envelope.stored_size(),
        )?;
        self.data.server.store(owner_id.clone(), record, envelope);
        self.audit.lock().record(AuditEvent::Published {
            owner: owner_id.to_string(),
            record: record.to_owned(),
            components: components.iter().map(|(l, _, _)| (*l).to_owned()).collect(),
        });
        Ok(())
    }

    /// A user downloads one component of a record and decrypts it.
    ///
    /// Takes `&self`: concurrent readers share the server and clone
    /// their key view out of the directory, so reads race neither each
    /// other nor the control plane.
    ///
    /// # Errors
    ///
    /// Unknown record/component, or any decryption error (unsatisfied
    /// policy, missing authority key, stale versions).
    pub fn read(
        &self,
        uid: &Uid,
        owner_id: &OwnerId,
        record: &str,
        label: &str,
    ) -> Result<Vec<u8>, CloudError> {
        let _span = mabe_telemetry::Span::with_labels("mabe_system_op", &[("op", "read")]);
        let _trace = mabe_trace::Span::child("cloud.read").detail(format!("{record}/{label}"));
        if !self.directory.users.read().users.contains_key(uid) {
            return Err(CloudError::Core(Error::UnknownUser(uid.clone())));
        }
        let envelope = self
            .data
            .server
            .fetch(owner_id, record)
            .ok_or_else(|| CloudError::UnknownRecord(record.to_owned()))?;
        let component = envelope
            .component(label)
            .ok_or_else(|| CloudError::UnknownComponent(label.to_owned()))?;
        // Reads are server-side only: they keep working while authorities
        // are down (graceful degradation at the last consistent version),
        // and transient download faults are retried at READ_FETCH.
        self.transmit(
            fault_points::READ_FETCH,
            Endpoint::Server,
            Endpoint::User(uid.clone()),
            &format!("component {record}/{label}"),
            component.stored_size(),
        )?;
        let (pk, keys) = {
            let users = self.directory.users.read();
            let state = users.users.get(uid).expect("checked above");
            let keys: BTreeMap<AuthorityId, UserSecretKey> = state
                .keys
                .iter()
                .filter(|((o, _), _)| o == owner_id)
                .map(|((_, aid), key)| (aid.clone(), key.clone()))
                .collect();
            (state.pk.clone(), keys)
        };
        let result = open_component(component, &pk, &keys);
        self.audit.lock().record(AuditEvent::Read {
            uid: uid.to_string(),
            owner: owner_id.to_string(),
            record: record.to_owned(),
            component: label.to_owned(),
            allowed: result.is_ok(),
        });
        Ok(result?)
    }

    /// Like [`Self::read`], but decryption is outsourced: the user sends
    /// a blinded transform key, the **server** runs all pairings and
    /// returns a token, and the user finishes with one `G_T`
    /// exponentiation (the DAC-MACS-style extension in
    /// `mabe_core::outsource`). The server learns nothing: the token
    /// carries the user's `1/z` blinding.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::read`].
    pub fn read_outsourced(
        &self,
        uid: &Uid,
        owner_id: &OwnerId,
        record: &str,
        label: &str,
    ) -> Result<Vec<u8>, CloudError> {
        let _span =
            mabe_telemetry::Span::with_labels("mabe_system_op", &[("op", "read_outsourced")]);
        let _trace =
            mabe_trace::Span::child("cloud.read_outsourced").detail(format!("{record}/{label}"));
        let (pk, keys) = {
            let users = self.directory.users.read();
            let state = users
                .users
                .get(uid)
                .ok_or_else(|| CloudError::Core(Error::UnknownUser(uid.clone())))?;
            let keys: BTreeMap<AuthorityId, UserSecretKey> = state
                .keys
                .iter()
                .filter(|((o, _), _)| o == owner_id)
                .map(|((_, aid), key)| (aid.clone(), key.clone()))
                .collect();
            (state.pk.clone(), keys)
        };
        let envelope = self
            .data
            .server
            .fetch(owner_id, record)
            .ok_or_else(|| CloudError::UnknownRecord(record.to_owned()))?;
        let component = envelope
            .component(label)
            .ok_or_else(|| CloudError::UnknownComponent(label.to_owned()))?;
        let (tk, rk) = mabe_core::make_transform_key(&pk, &keys, &mut *self.rng.lock())?;
        // The blinded key travels to the server (same element count as
        // the underlying secret keys plus the blinded PK).
        let tk_bytes: usize =
            keys.values().map(UserSecretKey::wire_size).sum::<usize>() + mabe_core::G_BYTES;
        self.wire.send(
            Endpoint::User(uid.clone()),
            Endpoint::Server,
            "transform key",
            tk_bytes,
        );
        let token = mabe_core::server_transform(&component.key_ct, &tk)?;
        // Only the 128-byte token comes back — not the ciphertext.
        self.wire.send(
            Endpoint::Server,
            Endpoint::User(uid.clone()),
            format!("transform token {record}/{label}"),
            mabe_core::GT_BYTES + component.sealed.len() + component.nonce.len(),
        );
        let kem = mabe_core::client_recover(&component.key_ct, &token, &rk);
        let result = mabe_core::open_component_with_kem(component, &kem);
        self.audit.lock().record(AuditEvent::Read {
            uid: uid.to_string(),
            owner: owner_id.to_string(),
            record: record.to_owned(),
            component: label.to_owned(),
            allowed: result.is_ok(),
        });
        Ok(result?)
    }

    /// Sets the worker count for the re-encryption pool. `1` (the
    /// default) keeps phase 2 strictly sequential — byte-for-byte the
    /// behavior every seeded chaos schedule replays — while `n > 1`
    /// fans the affected components out over `n` scoped workers.
    pub fn set_reencrypt_workers(&self, workers: usize) {
        self.data
            .reencrypt_workers
            .store(workers.max(1), Ordering::Relaxed);
    }

    /// The configured re-encryption fan-out width.
    pub fn reencrypt_workers(&self) -> usize {
        self.data.reencrypt_workers.load(Ordering::Relaxed)
    }

    /// Phase 2: owners apply their update keys (checkpointed), then the
    /// server re-encrypts every affected ciphertext. The worklist comes
    /// from [`CloudServer::affected_ciphertexts`], which only returns
    /// components still at the old version — replaying a half-finished
    /// phase naturally skips what is already done (and is what makes a
    /// parallel run idempotent too: workers that already advanced a
    /// component before a failure simply shrink the next worklist).
    pub(crate) fn reencrypt_phase(
        &self,
        pending: &mut PendingRevocation,
    ) -> Result<(), CloudError> {
        let _trace = mabe_trace::Span::child("cloud.reencrypt_phase")
            .detail(format!("@{}", pending.event.aid));
        let aid = pending.event.aid.clone();
        let from = pending.event.from_version;
        let to = pending.event.to_version;
        let owner_ids: Vec<OwnerId> = self.directory.owners.read().keys().cloned().collect();
        for owner_id in owner_ids {
            let Some(uk) = pending.event.update_keys.get(&owner_id).cloned() else {
                continue;
            };
            if !pending.updated_owners.contains(&owner_id) {
                self.transmit(
                    fault_points::REVOKE_OWNER_UPDATE,
                    Endpoint::Authority(aid.clone()),
                    Endpoint::Owner(owner_id.clone()),
                    "update key",
                    uk.wire_size(),
                )?;
                {
                    let mut owners = self.directory.owners.write();
                    let owner = owners.get_mut(&owner_id).expect("owner exists");
                    match owner.apply_update_key(&uk) {
                        Ok(()) => {}
                        Err(Error::VersionMismatch { found, .. }) if found >= uk.to_version => {}
                        Err(e) => return Err(e.into()),
                    }
                }
                pending.updated_owners.insert(owner_id.clone());
            }
            let affected = self.data.server.affected_ciphertexts(&owner_id, &aid, from);
            let workers = self
                .data
                .reencrypt_workers
                .load(Ordering::Relaxed)
                .clamp(1, affected.len().max(1));
            if workers <= 1 {
                for item in &affected {
                    self.reencrypt_one(&aid, from, to, &owner_id, &uk, item)?;
                }
            } else {
                self.reencrypt_parallel(&aid, from, to, &owner_id, &uk, &affected, workers)?;
            }
        }
        Ok(())
    }

    /// Re-encrypts one affected component: fault point, per-ciphertext
    /// update info from the owner, byte-accounted upload, server-side
    /// component update. Safe to call from worker threads — every
    /// touched structure is interior-mutable or read-locked.
    fn reencrypt_one(
        &self,
        aid: &AuthorityId,
        from: u64,
        to: u64,
        owner_id: &OwnerId,
        uk: &UpdateKey,
        item: &(RecordKey, String, CiphertextId),
    ) -> Result<(), CloudError> {
        let (record_key, label, ct_id) = item;
        let _trace = mabe_trace::Span::child("cloud.reencrypt")
            .detail(format!("{}/{}/{label}", record_key.0, record_key.1));
        self.local_op(fault_points::REVOKE_REENCRYPT, None)?;
        let ui = {
            let owners = self.directory.owners.read();
            let owner = owners.get(owner_id).expect("owner exists");
            owner.update_info_for(*ct_id, aid, from, to)?
        };
        self.wire.send(
            Endpoint::Owner(owner_id.clone()),
            Endpoint::Server,
            "update key + update info",
            uk.wire_size() + ui.wire_size(),
        );
        self.data
            .server
            .reencrypt_component(record_key, label, uk, &ui)?;
        Ok(())
    }

    /// Fans the affected-component worklist out over `workers` scoped
    /// threads. Each worker opens a span with [`mabe_trace::Span::follow`]
    /// on the caller's context, so its `cloud.reencrypt` children land
    /// in the revocation's causal tree instead of orphaned roots. On
    /// failure the lowest-index error is returned; other workers stop
    /// at their next pull, and whatever they already re-encrypted stays
    /// done (idempotent worklist).
    #[allow(clippy::too_many_arguments)]
    fn reencrypt_parallel(
        &self,
        aid: &AuthorityId,
        from: u64,
        to: u64,
        owner_id: &OwnerId,
        uk: &UpdateKey,
        affected: &[(RecordKey, String, CiphertextId)],
        workers: usize,
    ) -> Result<(), CloudError> {
        let parent = mabe_trace::current_ctx();
        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let failures: Mutex<Vec<(usize, CloudError)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..workers {
                let next = &next;
                let stop = &stop;
                let failures = &failures;
                scope.spawn(move || {
                    let _span = parent.map(|ctx| {
                        mabe_trace::Span::follow(ctx, "cloud.reencrypt.worker")
                            .detail(format!("worker {w}"))
                    });
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= affected.len() {
                            break;
                        }
                        if let Err(e) =
                            self.reencrypt_one(aid, from, to, owner_id, uk, &affected[i])
                        {
                            failures.lock().push((i, e));
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                });
            }
        });
        let mut collected = std::mem::take(&mut *failures.lock());
        collected.sort_by_key(|(i, _)| *i);
        match collected.into_iter().next() {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    }
}
