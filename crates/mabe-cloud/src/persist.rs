//! Durable persistence for the deployment: a typed keyspace journal
//! with per-table snapshots over [`mabe_store`].
//!
//! [`DurableSystem`] wraps a [`CloudSystem`] so that every acknowledged
//! state mutation is journaled to an append-only, checksummed write-ahead
//! log **before** the call returns (`acked ⇒ durable`), and the full
//! system state is periodically checkpointed into a generation-numbered
//! per-table snapshot. [`DurableSystem::open`] rebuilds the system from
//! whatever bytes survived a crash: it loads the committed snapshot,
//! replays the WAL tail, re-verifies the audit hash chain, and rolls
//! every journaled in-flight revocation forward — the paper's
//! requirement that committed version keys and update keys are never
//! forgotten (§V).
//!
//! # Journal format
//!
//! Each WAL record is one logical operation's **frame batch**: the
//! `(table, op, key, value)` rows of the typed keyspace
//! ([`crate::tables`]) the operation changed, read back from the live
//! state *after* the mutation applied. Replay is pure row application —
//! fold the batches over the per-table snapshot and hydrate a
//! [`CloudSystem`] from the resulting keyspace. No per-record
//! reinterpretation, no RNG coupling: sampled secrets travel inside the
//! journaled rows. Every batch also carries the
//! [`AuditLog`](crate::AuditLog) entries recorded since the previous
//! batch (an audit watermark under the op lock), so the replayed hash
//! chain is byte-identical — [`DurableSystem::open`] rejects the store
//! if it does not verify.
//!
//! Stores written by earlier releases still open: the replay shim
//! classifies each record by format, re-executes legacy
//! [`crate::records::WalRecord`] payloads with faults disarmed, and
//! converts to the typed keyspace at the format boundary (the first
//! typed batch). The next checkpoint rewrites the store fully typed.
//!
//! Revocation journals its begin batch *after* the begin parks the
//! in-flight [`PendingRevocation`] but **before** any delivery starts,
//! so a crash at any later point replays into an in-flight revocation
//! that recovery drives to completion.
//!
//! # Concurrency and group commit
//!
//! Every mutating operation takes `&self`: appliers serialize on one
//! *op lock* that covers the in-memory mutation **and** the staging of
//! the frame batch, so WAL order always equals apply order equals
//! audit order. The expensive part — the disk sync — happens *outside*
//! that lock through the typed store's group commit: concurrent
//! committers batch their staged records under a single sync, so N
//! parallel journaled ops cost one disk flush instead of N. The one
//! exception is the write-ahead revocation-begin batch, which must be
//! durable *before* delivery starts, and therefore commits while the
//! op lock is held.
//!
//! RNG streams, wire accounting and authority up/down flags are
//! runtime-only: each incarnation gets a fresh seed, and crypto secrets
//! travel inside the journaled objects, never through the new RNG.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use mabe_core::{
    AttributeAuthority, CiphertextId, DataEnvelope, DataOwner, Error, OwnerId, RevocationEvent,
    Uid, UpdateKey, UserPublicKey, UserSecretKey, WireCodec,
};
use mabe_faults::FaultInjector;
use mabe_policy::{Attribute, AuthorityId};
use mabe_store::{
    Frame, Keyspace, RecoveryReport, ReplayRecord, ReplaySnapshot, SchemaError, ScrubReport,
    Storage, StoreError, StoreRef, TypedOpen, TypedOpenError, TypedStore, DEFAULT_SEGMENT_BUDGET,
};

use crate::audit::{AuditEvent, AuditLoadError, AuditLog};
use crate::control::{AuthorityShard, ShardState};
use crate::directory::UserState;
use crate::records::{get_bytes, get_count, put_bytes, put_str, put_u32, put_u64, WalRecord};
use crate::recovery::{PendingRevocation, RevocationStage};
use crate::server::CloudServer;
use crate::system::{fault_points, CloudError, CloudSystem};
use crate::tables;

/// Magic prefix of a legacy (monolithic) system snapshot payload.
pub(crate) const SNAPSHOT_MAGIC: &[u8; 8] = b"MSYS0001";

/// Fault-point name reported once a durable system has poisoned itself
/// after a journal-write failure.
pub const POISONED_POINT: &str = "store.poisoned";

/// Fault-point name reported by the disk-full pre-flight gate while the
/// system is degraded to read-only.
pub const DEGRADED_POINT: &str = "store.degraded";

/// Default free-space floor (bytes) below which mutations degrade to
/// read-only instead of risking a mid-journal ENOSPC.
pub const DEFAULT_DEGRADE_HEADROOM: usize = 4096;

// ---------------------------------------------------------------------
// System snapshots
// ---------------------------------------------------------------------

/// Serializes the full persistent state of a [`CloudSystem`] into a
/// legacy (monolithic `MSYS0001`) snapshot payload. Live checkpoints
/// write per-table keyspace snapshots instead ([`tables::populate`]);
/// this encoder remains as the old-format reference and fixture
/// generator. The byte format is independent of the in-memory
/// sharding: authorities encode in AID order, and in-flight
/// revocations merge across shards in global journal-id order.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn encode_system(sys: &CloudSystem) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SNAPSHOT_MAGIC);
    put_bytes(&mut out, &sys.directory.ca.lock().to_wire_bytes());
    {
        let shards = sys.control.shards.read();
        put_u32(&mut out, shards.len() as u32);
        for shard in shards.values() {
            put_bytes(&mut out, &shard.state.lock().authority.to_wire_bytes());
        }
    }
    {
        let owners = sys.directory.owners.read();
        put_u32(&mut out, owners.len() as u32);
        for owner in owners.values() {
            put_bytes(&mut out, &owner.to_wire_bytes());
        }
    }
    {
        let users = sys.directory.users.read();
        put_u32(&mut out, users.users.len() as u32);
        for (uid, state) in &users.users {
            put_str(&mut out, uid.as_str());
            put_bytes(&mut out, &state.pk.to_wire_bytes());
            put_u32(&mut out, state.keys.len() as u32);
            for ((owner, aid), key) in &state.keys {
                put_str(&mut out, owner.as_str());
                put_str(&mut out, aid.as_str());
                put_bytes(&mut out, &key.to_wire_bytes());
            }
        }
        put_u32(&mut out, users.grants.len() as u32);
        for (uid, attrs) in &users.grants {
            put_str(&mut out, uid.as_str());
            put_u32(&mut out, attrs.len() as u32);
            for a in attrs {
                put_str(&mut out, &a.to_string());
            }
        }
        put_u32(&mut out, users.offline.len() as u32);
        for uid in &users.offline {
            put_str(&mut out, uid.as_str());
        }
        put_u32(&mut out, users.pending_updates.len() as u32);
        for (uid, queue) in &users.pending_updates {
            put_str(&mut out, uid.as_str());
            put_u32(&mut out, queue.len() as u32);
            for (owner, uk) in queue {
                put_str(&mut out, owner.as_str());
                put_bytes(&mut out, &uk.to_wire_bytes());
            }
        }
    }
    put_bytes(&mut out, &sys.data.server.snapshot());
    put_bytes(&mut out, &sys.audit.lock().save());
    {
        let shards = sys.control.shards.read();
        let mut pendings: Vec<PendingRevocation> = Vec::new();
        for shard in shards.values() {
            let st = shard.state.lock();
            for pending in st.in_flight.values() {
                pendings.push(pending.clone());
            }
        }
        pendings.sort_by_key(|p| p.id);
        put_u32(&mut out, pendings.len() as u32);
        for pending in &pendings {
            put_u64(&mut out, pending.id);
            put_bytes(&mut out, &pending.event.to_wire_bytes());
            out.push(match pending.stage {
                RevocationStage::KeyDelivery => 0,
                RevocationStage::ReEncryption => 1,
            });
            out.push(u8::from(pending.fresh_keys_delivered));
            put_u32(&mut out, pending.delivered_holders.len() as u32);
            for uid in &pending.delivered_holders {
                put_str(&mut out, uid.as_str());
            }
            put_u32(&mut out, pending.updated_owners.len() as u32);
            for owner in &pending.updated_owners {
                put_str(&mut out, owner.as_str());
            }
        }
    }
    put_u64(&mut out, sys.control.next_revocation.load(Ordering::SeqCst));
    {
        let queue = sys.lazy.queue.lock();
        put_u32(&mut out, queue.len() as u32);
        for (id, p) in queue.iter() {
            put_u64(&mut out, *id);
            put_str(&mut out, p.aid.as_str());
            put_u64(&mut out, p.from_version);
            put_u64(&mut out, p.to_version);
        }
    }
    {
        let archive = sys.lazy.archive.read();
        put_u32(&mut out, archive.len() as u32);
        for ((aid, owner, from), uk) in archive.iter() {
            put_str(&mut out, aid.as_str());
            put_str(&mut out, owner.as_str());
            put_u64(&mut out, *from);
            put_bytes(&mut out, &uk.to_wire_bytes());
        }
    }
    out
}

fn snap_err(what: &'static str) -> OpenError {
    OpenError::Snapshot(Error::Malformed(what))
}

/// Rebuilds a [`CloudSystem`] from a legacy `MSYS0001` snapshot
/// payload — also the target format [`tables::hydrate`] synthesizes
/// from the typed keyspace, so this is the single decode path for both
/// sources. The restored system gets a fresh RNG from `seed` and no
/// fault injection; the caller installs the injector after replay.
pub(crate) fn decode_system(bytes: &[u8], seed: u64) -> Result<CloudSystem, OpenError> {
    let mut sys = CloudSystem::new(seed);
    let mut r = mabe_core::Reader::new(bytes);
    if r.bytes(8).map_err(OpenError::Snapshot)? != SNAPSHOT_MAGIC {
        return Err(snap_err("bad snapshot magic"));
    }
    let snap = |e: Error| OpenError::Snapshot(e);

    *sys.directory.ca.lock() =
        mabe_core::CertificateAuthority::from_wire_bytes(&get_bytes(&mut r).map_err(snap)?)
            .map_err(snap)?;
    let n = get_count(&mut r).map_err(snap)?;
    for _ in 0..n {
        let aa =
            AttributeAuthority::from_wire_bytes(&get_bytes(&mut r).map_err(snap)?).map_err(snap)?;
        if sys.control.shard(aa.aid()).is_some() {
            return Err(snap_err("duplicate authority in snapshot"));
        }
        sys.control.insert_authority(aa);
    }
    let n = get_count(&mut r).map_err(snap)?;
    for _ in 0..n {
        let owner = DataOwner::from_wire_bytes(&get_bytes(&mut r).map_err(snap)?).map_err(snap)?;
        if sys
            .directory
            .owners
            .write()
            .insert(owner.id().clone(), owner)
            .is_some()
        {
            return Err(snap_err("duplicate owner in snapshot"));
        }
    }
    let n = get_count(&mut r).map_err(snap)?;
    for _ in 0..n {
        let uid = Uid::new(mabe_core::read_string(&mut r).map_err(snap)?);
        let pk = UserPublicKey::from_wire_bytes(&get_bytes(&mut r).map_err(snap)?).map_err(snap)?;
        let mut state = UserState {
            pk,
            keys: Default::default(),
        };
        let k = get_count(&mut r).map_err(snap)?;
        for _ in 0..k {
            let owner = OwnerId::new(mabe_core::read_string(&mut r).map_err(snap)?);
            let aid = AuthorityId::new(mabe_core::read_string(&mut r).map_err(snap)?);
            let key =
                UserSecretKey::from_wire_bytes(&get_bytes(&mut r).map_err(snap)?).map_err(snap)?;
            if state.keys.insert((owner, aid), key).is_some() {
                return Err(snap_err("duplicate key slot in snapshot"));
            }
        }
        if sys
            .directory
            .users
            .write()
            .users
            .insert(uid, state)
            .is_some()
        {
            return Err(snap_err("duplicate user in snapshot"));
        }
    }
    let n = get_count(&mut r).map_err(snap)?;
    for _ in 0..n {
        let uid = Uid::new(mabe_core::read_string(&mut r).map_err(snap)?);
        let k = get_count(&mut r).map_err(snap)?;
        let mut attrs = BTreeSet::new();
        for _ in 0..k {
            let raw = mabe_core::read_string(&mut r).map_err(snap)?;
            let attr: Attribute = raw
                .parse()
                .map_err(|_| snap_err("unparseable attribute in snapshot"))?;
            attrs.insert(attr);
        }
        if sys
            .directory
            .users
            .write()
            .grants
            .insert(uid, attrs)
            .is_some()
        {
            return Err(snap_err("duplicate grant set in snapshot"));
        }
    }
    let n = get_count(&mut r).map_err(snap)?;
    for _ in 0..n {
        sys.directory
            .users
            .write()
            .offline
            .insert(Uid::new(mabe_core::read_string(&mut r).map_err(snap)?));
    }
    let n = get_count(&mut r).map_err(snap)?;
    for _ in 0..n {
        let uid = Uid::new(mabe_core::read_string(&mut r).map_err(snap)?);
        let k = get_count(&mut r).map_err(snap)?;
        let mut queue = Vec::with_capacity(k);
        for _ in 0..k {
            let owner = OwnerId::new(mabe_core::read_string(&mut r).map_err(snap)?);
            let uk = UpdateKey::from_wire_bytes(&get_bytes(&mut r).map_err(snap)?).map_err(snap)?;
            queue.push((owner, uk));
        }
        if sys
            .directory
            .users
            .write()
            .pending_updates
            .insert(uid, queue)
            .is_some()
        {
            return Err(snap_err("duplicate update queue in snapshot"));
        }
    }
    sys.data.server =
        Arc::new(CloudServer::restore(&get_bytes(&mut r).map_err(snap)?).map_err(snap)?);
    *sys.audit.lock() =
        AuditLog::load(&get_bytes(&mut r).map_err(snap)?).map_err(OpenError::Audit)?;
    let n = get_count(&mut r).map_err(snap)?;
    for _ in 0..n {
        let id = r.u64().map_err(snap)?;
        let event =
            RevocationEvent::from_wire_bytes(&get_bytes(&mut r).map_err(snap)?).map_err(snap)?;
        let stage = match r.u8().map_err(snap)? {
            0 => RevocationStage::KeyDelivery,
            1 => RevocationStage::ReEncryption,
            _ => return Err(snap_err("bad revocation stage")),
        };
        let fresh_keys_delivered = match r.u8().map_err(snap)? {
            0 => false,
            1 => true,
            _ => return Err(snap_err("bad boolean")),
        };
        let mut delivered_holders = BTreeSet::new();
        let k = get_count(&mut r).map_err(snap)?;
        for _ in 0..k {
            delivered_holders.insert(Uid::new(mabe_core::read_string(&mut r).map_err(snap)?));
        }
        let mut updated_owners = BTreeSet::new();
        let k = get_count(&mut r).map_err(snap)?;
        for _ in 0..k {
            updated_owners.insert(OwnerId::new(mabe_core::read_string(&mut r).map_err(snap)?));
        }
        let pending = PendingRevocation {
            id,
            event,
            stage,
            fresh_keys_delivered,
            delivered_holders,
            updated_owners,
        };
        let shard = sys
            .control
            .shard(&pending.event.aid)
            .ok_or_else(|| snap_err("pending revocation for unknown authority"))?;
        if shard.state.lock().in_flight.insert(id, pending).is_some() {
            return Err(snap_err("duplicate pending revocation in snapshot"));
        }
    }
    sys.control
        .next_revocation
        .store(r.u64().map_err(snap)?, Ordering::SeqCst);
    let n = get_count(&mut r).map_err(snap)?;
    for _ in 0..n {
        let id = r.u64().map_err(snap)?;
        let aid = AuthorityId::new(mabe_core::read_string(&mut r).map_err(snap)?);
        let from_version = r.u64().map_err(snap)?;
        let to_version = r.u64().map_err(snap)?;
        let entry = crate::lazy::PendingUpgrade {
            aid,
            from_version,
            to_version,
            enqueued: Instant::now(),
        };
        if sys.lazy.queue.lock().insert(id, entry).is_some() {
            return Err(snap_err("duplicate pending upgrade in snapshot"));
        }
    }
    let n = get_count(&mut r).map_err(snap)?;
    for _ in 0..n {
        let aid = AuthorityId::new(mabe_core::read_string(&mut r).map_err(snap)?);
        let owner = OwnerId::new(mabe_core::read_string(&mut r).map_err(snap)?);
        let from = r.u64().map_err(snap)?;
        let uk = UpdateKey::from_wire_bytes(&get_bytes(&mut r).map_err(snap)?).map_err(snap)?;
        if sys
            .lazy
            .archive
            .write()
            .insert((aid, owner, from), uk)
            .is_some()
        {
            return Err(snap_err("duplicate archived update key in snapshot"));
        }
    }
    if !r.is_exhausted() {
        return Err(snap_err("trailing bytes after snapshot"));
    }
    // The inverted grant index is derived, live-only state: rebuild it
    // from the restored grants.
    sys.directory.users.read().rebuild_grant_index();
    Ok(sys)
}

// ---------------------------------------------------------------------
// Legacy replay shim
// ---------------------------------------------------------------------

/// Re-applies one legacy journaled record to the system being rebuilt —
/// the pre-keyspace journal format, kept so stores written by earlier
/// releases still open. Runs with fault injection disarmed — replay
/// must be deterministic.
fn apply_record(sys: &CloudSystem, rec: WalRecord) -> Result<(), CloudError> {
    match rec {
        WalRecord::AuthorityAdded { name, authority } => {
            let aa = AttributeAuthority::from_wire_bytes(&authority)?;
            let aid = sys.directory.ca.lock().register_authority(&name)?;
            if &aid != aa.aid() {
                return Err(CloudError::UnknownEntity(format!(
                    "journaled authority {} does not match registration {aid}",
                    aa.aid()
                )));
            }
            sys.install_authority(aa)?;
        }
        WalRecord::OwnerAdded { owner } => {
            sys.install_owner(DataOwner::from_wire_bytes(&owner)?)?;
        }
        WalRecord::UserAdded { u, pk } => {
            let pk = UserPublicKey::from_wire_bytes(&pk)?;
            sys.directory.ca.lock().import_user(u, pk.clone())?;
            sys.install_user(pk);
        }
        WalRecord::Granted { uid, attributes } => {
            let uid = Uid::new(uid);
            let refs: Vec<&str> = attributes.iter().map(String::as_str).collect();
            sys.grant(&uid, &refs)?;
        }
        WalRecord::Published {
            owner,
            record,
            envelope,
            secrets,
        } => {
            let owner_id = OwnerId::new(owner);
            let envelope = DataEnvelope::from_wire_bytes(&envelope)?;
            let components: Vec<String> = envelope
                .components
                .iter()
                .map(|c| c.label.clone())
                .collect();
            {
                let mut owners = sys.directory.owners.write();
                let owner = owners.get_mut(&owner_id).ok_or_else(|| {
                    CloudError::UnknownEntity(format!("journaled owner {owner_id}"))
                })?;
                for comp in &envelope.components {
                    let s = secrets
                        .iter()
                        .find(|(id, _)| *id == comp.key_ct.id.0)
                        .map(|(_, s)| *s)
                        .ok_or_else(|| {
                            CloudError::UnknownEntity(format!(
                                "journaled publish missing secret for ciphertext {}",
                                comp.key_ct.id.0
                            ))
                        })?;
                    owner.adopt_record(
                        CiphertextId(comp.key_ct.id.0),
                        s,
                        comp.key_ct.access.rho().to_vec(),
                    );
                }
            }
            sys.data.server.store(owner_id.clone(), &record, envelope);
            sys.audit.lock().record(AuditEvent::Published {
                owner: owner_id.to_string(),
                record,
                components,
            });
        }
        WalRecord::ReadAudited {
            uid,
            owner,
            record,
            component,
            allowed,
        } => {
            sys.audit.lock().record(AuditEvent::Read {
                uid,
                owner,
                record,
                component,
                allowed,
            });
        }
        WalRecord::RevocationBegun { authority, event } => {
            // Install the journaled post-ReKey authority, then park the
            // event exactly as the live call did. Whether it completed
            // is decided by a later RevocationDriven record (or, absent
            // one, by recovery after replay).
            let aa = AttributeAuthority::from_wire_bytes(&authority)?;
            sys.control.insert_authority(aa);
            let event = RevocationEvent::from_wire_bytes(&event)?;
            sys.begin_revocation(event);
        }
        WalRecord::RevocationDriven { id, recovered } => {
            sys.drive_revocation(id, recovered)?;
        }
        WalRecord::UserOffline { uid } => {
            sys.set_offline(&Uid::new(uid));
        }
        WalRecord::UserSynced { uid } => {
            sys.sync_user(&Uid::new(uid))?;
        }
        WalRecord::RevocationDeferred { id } => {
            sys.defer_revocation(id)?;
        }
        WalRecord::LazyDrained { ids } => {
            sys.replay_drain(&ids)?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Open errors / report
// ---------------------------------------------------------------------

/// Why [`DurableSystem::open`] rejected the surviving bytes.
#[derive(Debug)]
pub enum OpenError {
    /// The backing store failed (corrupt pointer, checksum-failed
    /// committed snapshot, injected I/O fault).
    Store(StoreError),
    /// The checkpoint snapshot payload failed structural validation.
    Snapshot(Error),
    /// A typed keyspace snapshot section or replayed row failed to
    /// decode.
    Keyspace(SchemaError),
    /// The audit trail embedded in the snapshot was tampered with or
    /// reordered.
    Audit(AuditLoadError),
    /// Typed frame record `index` survived the checksum but failed to
    /// decode (the error carries the offending byte offset).
    Frame {
        /// Zero-based position among the replayed records.
        index: usize,
        /// The decode failure.
        error: SchemaError,
    },
    /// Legacy WAL record `index` survived the checksum but failed to
    /// decode.
    Record {
        /// Zero-based position among the replayed records.
        index: usize,
        /// The decode failure (typed: unknown tag with its offset, or a
        /// payload decode error).
        error: crate::records::RecordError,
    },
    /// Legacy WAL record `index` decoded but could not be re-applied.
    Replay {
        /// Zero-based position among the replayed records.
        index: usize,
        /// The replay failure.
        error: Box<CloudError>,
    },
    /// The replayed audit hash chain failed verification.
    AuditChain,
    /// Rolling journaled in-flight revocations forward failed.
    Recovery(Box<CloudError>),
}

impl fmt::Display for OpenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpenError::Store(e) => write!(f, "store: {e}"),
            OpenError::Snapshot(e) => write!(f, "snapshot: {e}"),
            OpenError::Keyspace(e) => write!(f, "typed keyspace: {e}"),
            OpenError::Audit(e) => write!(f, "audit trail: {e}"),
            OpenError::Frame { index, error } => {
                write!(f, "frame record {index}: {error}")
            }
            OpenError::Record { index, error } => {
                write!(f, "journal record {index}: {error}")
            }
            OpenError::Replay { index, error } => {
                write!(f, "replaying journal record {index}: {error}")
            }
            OpenError::AuditChain => write!(f, "replayed audit chain failed verification"),
            OpenError::Recovery(e) => write!(f, "recovering in-flight revocations: {e}"),
        }
    }
}

impl std::error::Error for OpenError {}

/// A failed [`DurableSystem::open`]: the error **plus the backing
/// store**, handed back so the surviving bytes are never lost — the
/// caller can inspect them, disarm an injector, and reopen.
pub struct OpenFailure<S> {
    /// What went wrong.
    pub error: OpenError,
    /// The storage `open` was called with.
    pub storage: S,
}

impl<S> fmt::Debug for OpenFailure<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpenFailure")
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

impl<S> fmt::Display for OpenFailure<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.error.fmt(f)
    }
}

impl<S> std::error::Error for OpenFailure<S> {}

/// What [`DurableSystem::open`] found and rebuilt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpenReport {
    /// Low-level WAL recovery details (generation, salvage, drops).
    pub wal: RecoveryReport,
    /// Journal records replayed on top of the snapshot.
    pub records_replayed: usize,
    /// In-flight revocations rolled forward to completion during open.
    pub revocations_recovered: usize,
    /// Wall-clock open latency in milliseconds.
    pub duration_ms: u64,
}

// ---------------------------------------------------------------------
// DurableSystem
// ---------------------------------------------------------------------

/// Journaling bookkeeping serialized under the op lock.
#[derive(Debug)]
struct OpState {
    ops_since_checkpoint: usize,
    checkpoint_interval: usize,
    /// Live log bytes (cold + active segments) above which the next
    /// `maybe_checkpoint` compacts regardless of the op count — the
    /// knob that keeps disk usage bounded under journal-heavy loads.
    wal_budget: usize,
    /// Audit watermark: how many audit entries are already journaled
    /// (or checkpointed). Every staged batch appends the rows recorded
    /// since, so the on-disk `audit` table stays a contiguous prefix of
    /// the live chain.
    journaled_audit: usize,
}

/// A [`CloudSystem`] whose every acknowledged mutation is journaled as
/// a typed frame batch to a write-ahead log and periodically
/// checkpointed as a per-table snapshot, over any [`Storage`] backend.
///
/// Every operation takes `&self`: appliers serialize on an internal op
/// lock (in-memory mutation plus journal staging), while the disk syncs
/// batch across threads through the typed store's group commit.
#[derive(Debug)]
pub struct DurableSystem<S: Storage> {
    sys: CloudSystem,
    ts: TypedStore<S>,
    seed: u64,
    /// Serializes apply + stage so WAL order == apply order == audit
    /// order. Ordered *above* every `CloudSystem` lock; commits happen
    /// outside it whenever write-ahead semantics allow.
    op: Mutex<OpState>,
    poisoned: AtomicBool,
    /// Set while the store is too full to accept mutations safely:
    /// writes fail fast with [`CloudError::StoreFull`], reads keep
    /// serving, and the flag clears itself the moment compaction (or an
    /// operator) restores headroom. Orthogonal to `poisoned` — a full
    /// disk is an environmental condition, not a consistency violation.
    degraded: AtomicBool,
    /// Free-space floor (bytes) enforced by the pre-flight gate.
    degrade_headroom: AtomicUsize,
}

fn store_to_cloud(e: StoreError) -> CloudError {
    match e {
        StoreError::Crashed { point } => CloudError::Crashed { point },
        StoreError::Transient { point } => CloudError::Storage(point),
        StoreError::NoSpace { point } => CloudError::StoreFull { point },
        StoreError::Corrupt(what) => CloudError::Storage(what),
        StoreError::Missing(what) => CloudError::Storage(what),
    }
}

fn store_point(e: &StoreError) -> &'static str {
    match e {
        StoreError::Crashed { point }
        | StoreError::Transient { point }
        | StoreError::NoSpace { point } => point,
        StoreError::Corrupt(what) | StoreError::Missing(what) => what,
    }
}

impl<S: Storage> DurableSystem<S> {
    /// Opens (or initialises) a durable system over `storage` with no
    /// fault injection on the cloud operations.
    ///
    /// # Errors
    ///
    /// Any [`OpenError`]; the storage is always handed back inside the
    /// [`OpenFailure`].
    pub fn open(storage: S, seed: u64) -> Result<(Self, OpenReport), OpenFailure<S>> {
        Self::open_with_faults(storage, seed, FaultInjector::none())
    }

    /// Opens a durable system whose cloud-level operations consult
    /// `faults`. The injector is installed only **after** snapshot
    /// restore, replay and recovery complete — reopening is always
    /// performed against a quiesced system, the way a restarted process
    /// replays its log before serving traffic.
    ///
    /// # Errors
    ///
    /// Any [`OpenError`]; the storage is always handed back inside the
    /// [`OpenFailure`].
    pub fn open_with_faults(
        storage: S,
        seed: u64,
        faults: FaultInjector,
    ) -> Result<(Self, OpenReport), OpenFailure<S>> {
        let start = Instant::now();
        // Root span over the whole open: the WAL's replay event and
        // recovery's drive spans all land in one causal tree.
        let _trace = mabe_trace::Span::root("durable.open");
        let (ts, open) = match TypedStore::open(storage) {
            Ok(parts) => parts,
            Err(TypedOpenError::Wal(failure)) => {
                return Err(OpenFailure {
                    error: OpenError::Store(failure.error),
                    storage: failure.store,
                })
            }
            Err(TypedOpenError::Record {
                index,
                error,
                store,
            }) => {
                return Err(OpenFailure {
                    error: OpenError::Frame { index, error },
                    storage: store,
                })
            }
            Err(TypedOpenError::Snapshot { error, store }) => {
                return Err(OpenFailure {
                    error: OpenError::Keyspace(error),
                    storage: store,
                })
            }
        };
        let records_replayed = open.records.len();
        let hydrated = if open.self_hydrated {
            // Pure typed store (or empty): the facade already folded the
            // snapshot and every frame batch into its keyspace.
            tables::hydrate(ts.keyspace(), seed)
        } else {
            Self::replay_mixed(&open, seed)
        };
        let mut sys = match hydrated {
            Ok(sys) => sys,
            Err(error) => {
                return Err(OpenFailure {
                    error,
                    storage: ts.into_store(),
                })
            }
        };
        if !sys.audit.lock().verify() {
            return Err(OpenFailure {
                error: OpenError::AuditChain,
                storage: ts.into_store(),
            });
        }
        // The facade keyspace was only the replay vehicle: the live
        // system of record is the in-memory `CloudSystem`, and every
        // checkpoint repopulates a keyspace from it. Drop the replayed
        // rows instead of keeping a second copy of the world resident.
        ts.keyspace().clear();
        sys.faults = faults;
        let journaled_audit = sys.audit.lock().entries().len();
        let durable = DurableSystem {
            sys,
            ts,
            seed,
            op: Mutex::new(OpState {
                ops_since_checkpoint: records_replayed,
                checkpoint_interval: 64,
                wal_budget: 4 * DEFAULT_SEGMENT_BUDGET,
                journaled_audit,
            }),
            poisoned: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            degrade_headroom: AtomicUsize::new(DEFAULT_DEGRADE_HEADROOM),
        };
        let revocations_recovered = match durable.recover() {
            Ok(n) => n,
            Err(e) => {
                return Err(OpenFailure {
                    error: OpenError::Recovery(Box::new(e)),
                    storage: durable.ts.into_store(),
                })
            }
        };
        // Recovery only drives *in-flight* revocations; deferred ones
        // replayed onto the lazy queue stay queued (acked ⇒ durable) for
        // the drain workers or read-triggered upgrade to converge.
        durable.sys.refresh_lazy_gauge();
        let duration_ms = start.elapsed().as_millis() as u64;
        mabe_telemetry::global()
            .histogram("mabe_recovery_duration_ms", &[])
            .record(duration_ms);
        Ok((
            durable,
            OpenReport {
                wal: open.report,
                records_replayed,
                revocations_recovered,
                duration_ms,
            },
        ))
    }

    /// The format-boundary shim: folds a history containing legacy
    /// records into one [`CloudSystem`]. Foreign (legacy) records
    /// re-execute through [`apply_record`]; at the first typed frame
    /// batch the accumulated state is converted to a keyspace
    /// ([`tables::populate`]) and everything after folds as rows, with
    /// the final keyspace hydrating the system. A legacy record *after*
    /// a typed batch is a writer bug and is rejected.
    fn replay_mixed(open: &TypedOpen, seed: u64) -> Result<CloudSystem, OpenError> {
        let mut sys = match &open.snapshot {
            ReplaySnapshot::None => CloudSystem::new(seed),
            ReplaySnapshot::Foreign(bytes) => decode_system(bytes, seed)?,
            ReplaySnapshot::Typed(snap) => tables::hydrate(snap, seed)?,
        };
        let mut ks: Option<Keyspace> = None;
        for (index, record) in open.records.iter().enumerate() {
            match record {
                ReplayRecord::Foreign(payload) => {
                    if ks.is_some() {
                        return Err(OpenError::Replay {
                            index,
                            error: Box::new(CloudError::Storage(
                                "legacy journal record after typed frames",
                            )),
                        });
                    }
                    let rec = WalRecord::decode(payload)
                        .map_err(|error| OpenError::Record { index, error })?;
                    apply_record(&sys, rec).map_err(|error| OpenError::Replay {
                        index,
                        error: Box::new(error),
                    })?;
                }
                ReplayRecord::Frames(frames) => {
                    let ks = ks.get_or_insert_with(|| tables::populate(&sys));
                    ks.apply(frames);
                }
            }
        }
        if let Some(ks) = ks {
            sys = tables::hydrate(&ks, seed)?;
        }
        Ok(sys)
    }

    fn check_poisoned(&self) -> Result<(), CloudError> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(CloudError::Crashed {
                point: POISONED_POINT,
            });
        }
        Ok(())
    }

    /// Pre-flight disk-full gate, consulted by every mutator *before*
    /// it touches memory. Because in-memory state mutates ahead of
    /// journaling, an ENOSPC discovered mid-journal would force a
    /// poison; refusing up front keeps a full disk an environmental
    /// (retryable) condition instead of a consistency violation. The
    /// gate re-evaluates real usage on every call, so reclaimed space —
    /// a compaction, an operator delete, a raised quota — lifts the
    /// degradation automatically.
    fn check_writable(&self) -> Result<(), CloudError> {
        let free = match self.ts.storage().usage() {
            // Unmetered backends never degrade.
            None => {
                self.clear_degraded();
                return Ok(());
            }
            Some(usage) => usage.free(),
        };
        if free < self.degrade_headroom.load(Ordering::SeqCst) {
            self.enter_degraded();
            Err(CloudError::StoreFull {
                point: DEGRADED_POINT,
            })
        } else {
            self.clear_degraded();
            Ok(())
        }
    }

    fn enter_degraded(&self) {
        if !self.degraded.swap(true, Ordering::SeqCst) {
            mabe_telemetry::global()
                .gauge("mabe_store_degraded", &[])
                .set(1);
        }
    }

    fn clear_degraded(&self) {
        if self.degraded.swap(false, Ordering::SeqCst) {
            mabe_telemetry::global()
                .gauge("mabe_store_degraded", &[])
                .set(0);
        }
    }

    /// Marks the handle poisoned after a journal failure: in-memory
    /// state may now be ahead of the log, so no further mutation is
    /// accepted; reopen from storage instead.
    fn poison(&self, e: &StoreError) {
        self.poisoned.store(true, Ordering::SeqCst);
        self.note_poisoned(e);
    }

    /// Blocks until everything staged at or before `seq` is durable —
    /// the group-commit rendezvous. Called *without* the op lock
    /// whenever possible so concurrent committers batch under one sync.
    fn commit(&self, seq: u64) -> Result<(), CloudError> {
        match self.ts.commit(seq) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poison(&e);
                Err(store_to_cloud(e))
            }
        }
    }

    /// Stages one operation's frame batch under the op lock, returning
    /// the sequence for the caller to commit after releasing it. The
    /// audit rows recorded since the last batch ride along (the
    /// watermark), so the journaled `audit` table stays a contiguous
    /// prefix of the live chain.
    fn stage_frames_locked(&self, op: &mut OpState, mut frames: Vec<Frame>) -> u64 {
        tables::emit_audit(&self.sys, &mut op.journaled_audit, &mut frames);
        op.ops_since_checkpoint += 1;
        self.ts.stage_frames(&frames)
    }

    /// Stages one frame batch and blocks until it is durable while the
    /// caller holds the op lock — the write-ahead path (and the
    /// serialized revocation path), where durability must precede the
    /// next state transition.
    fn log_frames_locked(&self, op: &mut OpState, frames: Vec<Frame>) -> Result<(), CloudError> {
        let seq = self.stage_frames_locked(op, frames);
        self.commit(seq)
    }

    /// Records the poison on the active span and, when `MABE_TRACE_DIR`
    /// / `MABE_EVENTS_DIR` are set, dumps the flight recorder and
    /// spills the wide-event ring — the in-memory state is now ahead
    /// of the journal, which is exactly when forensics matter.
    fn note_poisoned(&self, e: &StoreError) {
        let point = store_point(e);
        mabe_trace::event(mabe_trace::TraceEvent::Poisoned { point });
        mabe_trace::dump_if_configured(self.seed, &format!("poison_{point}"));
        mabe_events::dump_if_configured(self.seed, &format!("poison_{point}"));
    }

    fn maybe_checkpoint(&self) -> Result<(), CloudError> {
        let mut op = self.op.lock();
        self.maybe_checkpoint_locked(&mut op)
    }

    fn maybe_checkpoint_locked(&self, op: &mut OpState) -> Result<(), CloudError> {
        if op.ops_since_checkpoint >= op.checkpoint_interval
            || self.ts.live_log_bytes() >= op.wal_budget
        {
            match self.checkpoint_locked(op) {
                Ok(()) => {}
                // The triggering op itself succeeded (it is durable and
                // applied); a full disk only means compaction could not
                // run yet. Degrade quietly instead of failing the ack —
                // the next mutation hits the pre-flight gate.
                Err(CloudError::StoreFull { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Snapshots the full system state and truncates the WAL, with the
    /// op lock held (no shard lock may be held — encoding takes them).
    ///
    /// Failure handling follows the store's clean/dirty classification:
    /// a *dirty* failure (the manifest swap's outcome is ambiguous, or a
    /// staged flush died) poisons the handle; a *clean* one leaves the
    /// committed generation authoritative and the handle fully usable —
    /// a clean ENOSPC additionally flips the read-only degradation flag.
    fn checkpoint_locked(&self, op: &mut OpState) -> Result<(), CloudError> {
        let audited = self.sys.audit.lock().entries().len();
        let ks = tables::populate(&self.sys);
        match self.ts.checkpoint_keyspace(&ks) {
            Ok(()) => {
                op.ops_since_checkpoint = 0;
                // The snapshot carries every audit row up to `audited`
                // (captured before the populate walk); anything recorded
                // since rides the next staged batch.
                op.journaled_audit = op.journaled_audit.max(audited);
                // Compaction just reclaimed every superseded segment:
                // re-evaluate the disk-full degradation right away.
                let _ = self.check_writable();
                Ok(())
            }
            Err(failure) => {
                if failure.dirty {
                    self.poison(&failure.error);
                } else if matches!(failure.error, StoreError::NoSpace { .. }) {
                    self.enter_degraded();
                }
                Err(store_to_cloud(failure.error))
            }
        }
    }

    /// Forces a checkpoint: the full system state is written as the next
    /// generation's snapshot, the manifest swaps to a fresh
    /// single-segment generation, and every superseded object is
    /// collected. Deliberately *not* gated on the disk-full flag — a
    /// successful compaction is exactly what lifts it.
    ///
    /// # Errors
    ///
    /// [`CloudError::Crashed`] / [`CloudError::Storage`] /
    /// [`CloudError::StoreFull`] mapped from the store failure; only
    /// dirty failures poison the handle.
    pub fn checkpoint(&self) -> Result<(), CloudError> {
        self.check_poisoned()?;
        let mut op = self.op.lock();
        self.checkpoint_locked(&mut op)
    }

    /// Sets how many journaled ops accumulate before an automatic
    /// checkpoint.
    pub fn set_checkpoint_interval(&self, interval: usize) {
        self.op.lock().checkpoint_interval = interval.max(1);
    }

    /// Sets the live-log byte budget above which `maybe_checkpoint`
    /// compacts regardless of the op count.
    pub fn set_wal_budget(&self, bytes: usize) {
        self.op.lock().wal_budget = bytes.max(1);
    }

    /// Sets the free-space floor (bytes) below which mutations degrade
    /// to read-only.
    pub fn set_degrade_headroom(&self, bytes: usize) {
        self.degrade_headroom.store(bytes, Ordering::SeqCst);
    }

    /// Whether the disk-full gate has degraded this handle to read-only
    /// (as of its last evaluation). Reads still serve; mutations fail
    /// fast with [`CloudError::StoreFull`] until space is reclaimed.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// Runs one scrubber pass: re-verifies every cold segment and the
    /// committed snapshot. Rot is *repaired*, not fatal — the corrupt
    /// objects are quarantined for forensics and a fresh checkpoint is
    /// cut from the authoritative in-memory state, superseding them.
    ///
    /// # Errors
    ///
    /// A failed scrub read, or a failed repair (quarantine +
    /// checkpoint); repair failures dump the flight recorder when
    /// `MABE_TRACE_DIR` is set, since the log is rotting *and* cannot
    /// be rewritten — the forensics may be all that survives.
    pub fn scrub(&self) -> Result<ScrubReport, CloudError> {
        self.check_poisoned()?;
        let _trace = mabe_trace::Span::child("durable.scrub");
        let mut op = self.op.lock();
        let report = self.ts.scrub().map_err(store_to_cloud)?;
        if !report.clean() {
            let repaired = self
                .ts
                .quarantine(&report.corrupt)
                .map_err(store_to_cloud)
                .and_then(|()| self.checkpoint_locked(&mut op));
            match repaired {
                Ok(()) => {
                    mabe_telemetry::global()
                        .counter("mabe_wal_scrub_repairs_total", &[])
                        .inc();
                }
                Err(e) => {
                    mabe_trace::dump_if_configured(self.seed, "scrub_repair_failed");
                    return Err(e);
                }
            }
        }
        Ok(report)
    }

    /// Registers an attribute authority (durably).
    ///
    /// # Errors
    ///
    /// Same contract as [`CloudSystem::add_authority`], plus journal
    /// failures.
    pub fn add_authority(
        &self,
        name: &str,
        attribute_names: &[&str],
    ) -> Result<AuthorityId, CloudError> {
        self.check_poisoned()?;
        self.check_writable()?;
        let (aid, seq) = {
            let mut op = self.op.lock();
            let aid = self.sys.add_authority(name, attribute_names)?;
            let seq =
                self.stage_frames_locked(&mut op, tables::frames_authority_added(&self.sys, &aid));
            (aid, seq)
        };
        self.commit(seq)?;
        self.maybe_checkpoint()?;
        Ok(aid)
    }

    /// Registers a data owner (durably).
    ///
    /// # Errors
    ///
    /// Same contract as [`CloudSystem::add_owner`], plus journal
    /// failures.
    pub fn add_owner(&self, name: &str) -> Result<OwnerId, CloudError> {
        self.check_poisoned()?;
        self.check_writable()?;
        let (id, seq) = {
            let mut op = self.op.lock();
            let id = self.sys.add_owner(name)?;
            let seq = self.stage_frames_locked(&mut op, tables::frames_owner_added(&self.sys, &id));
            (id, seq)
        };
        self.commit(seq)?;
        self.maybe_checkpoint()?;
        Ok(id)
    }

    /// Registers a user (durably).
    ///
    /// # Errors
    ///
    /// Same contract as [`CloudSystem::add_user`], plus journal
    /// failures.
    pub fn add_user(&self, name: &str) -> Result<Uid, CloudError> {
        self.check_poisoned()?;
        self.check_writable()?;
        let (uid, seq) = {
            let mut op = self.op.lock();
            let uid = self.sys.add_user(name)?;
            let seq = self.stage_frames_locked(&mut op, tables::frames_user_added(&self.sys, &uid));
            (uid, seq)
        };
        self.commit(seq)?;
        self.maybe_checkpoint()?;
        Ok(uid)
    }

    /// Grants attributes to a user (durably).
    ///
    /// # Errors
    ///
    /// Same contract as [`CloudSystem::grant`], plus journal failures.
    pub fn grant(&self, uid: &Uid, attributes: &[&str]) -> Result<(), CloudError> {
        self.check_poisoned()?;
        self.check_writable()?;
        let trace = mabe_trace::Span::child("durable.grant").detail(uid.to_string());
        let result = (|| {
            let seq = {
                let mut op = self.op.lock();
                self.sys.grant(uid, attributes)?;
                self.stage_frames_locked(&mut op, tables::frames_granted(&self.sys, uid))
            };
            self.commit(seq)?;
            self.maybe_checkpoint()
        })();
        if let Err(e) = &result {
            trace.fail(e.to_string());
        }
        result
    }

    /// Publishes a record (durably): the sealed envelope's row and the
    /// owner's refreshed row (retained encryption secrets included) are
    /// journaled so replay restores both the server copy and the
    /// owner's ability to re-encrypt it.
    ///
    /// # Errors
    ///
    /// Same contract as [`CloudSystem::publish`], plus journal failures.
    pub fn publish(
        &self,
        owner_id: &OwnerId,
        record: &str,
        components: &[(&str, &[u8], &str)],
    ) -> Result<(), CloudError> {
        self.check_poisoned()?;
        self.check_writable()?;
        let trace =
            mabe_trace::Span::child("durable.publish").detail(format!("{owner_id}/{record}"));
        let result = (|| {
            let seq = {
                let mut op = self.op.lock();
                self.sys.publish(owner_id, record, components)?;
                self.stage_frames_locked(
                    &mut op,
                    tables::frames_published(&self.sys, owner_id, record),
                )
            };
            self.commit(seq)?;
            self.maybe_checkpoint()
        })();
        if let Err(e) = &result {
            trace.fail(e.to_string());
        }
        result
    }

    /// A user reads one component ([`CloudSystem::read`]); the audited
    /// outcome (allowed or denied) is journaled so the replayed audit
    /// trail matches the live one.
    ///
    /// # Errors
    ///
    /// Same contract as [`CloudSystem::read`]; journal failures take
    /// precedence over the read result.
    pub fn read(
        &self,
        uid: &Uid,
        owner_id: &OwnerId,
        record: &str,
        label: &str,
    ) -> Result<Vec<u8>, CloudError> {
        self.check_poisoned()?;
        let trace = mabe_trace::Span::child("durable.read").detail(format!("{record}/{label}"));
        let result = (|| {
            let (result, seq) = self.apply_read(|| self.sys.read(uid, owner_id, record, label));
            if let Some(seq) = seq {
                self.commit(seq)?;
                self.maybe_checkpoint()?;
            }
            result
        })();
        if let Err(e) = &result {
            trace.fail(e.to_string());
        }
        result
    }

    /// Outsourced-decryption read ([`CloudSystem::read_outsourced`]),
    /// with the same audit journaling as [`Self::read`].
    ///
    /// # Errors
    ///
    /// Same contract as [`CloudSystem::read_outsourced`]; journal
    /// failures take precedence.
    pub fn read_outsourced(
        &self,
        uid: &Uid,
        owner_id: &OwnerId,
        record: &str,
        label: &str,
    ) -> Result<Vec<u8>, CloudError> {
        self.check_poisoned()?;
        let trace =
            mabe_trace::Span::child("durable.read_outsourced").detail(format!("{record}/{label}"));
        let result = (|| {
            let (result, seq) =
                self.apply_read(|| self.sys.read_outsourced(uid, owner_id, record, label));
            if let Some(seq) = seq {
                self.commit(seq)?;
                self.maybe_checkpoint()?;
            }
            result
        })();
        if let Err(e) = &result {
            trace.fail(e.to_string());
        }
        result
    }

    /// Runs one read under the op lock and stages an audit-only frame
    /// batch iff the call reached the audit log (failures before the
    /// policy decision — unknown record, lost download — are not
    /// audited and not journaled). Reads do not journal server-side
    /// component upgrades: `LazyArchive` rows are never consumed, so a
    /// replayed-stale component self-heals on the next read or drain.
    /// Returns the read result plus the staged sequence for the caller
    /// to commit lock-free.
    fn apply_read(
        &self,
        read: impl FnOnce() -> Result<Vec<u8>, CloudError>,
    ) -> (Result<Vec<u8>, CloudError>, Option<u64>) {
        let mut op = self.op.lock();
        let before = self.sys.audit.lock().entries().len();
        let result = read();
        if self.sys.audit.lock().entries().len() == before {
            return (result, None);
        }
        // Disk-full degradation: reads must keep serving and must never
        // poison the handle, so while the store is out of headroom the
        // audit rows stay in memory only. The watermark does *not*
        // advance — the dropped rows ride the next successful batch,
        // keeping the journaled audit chain a contiguous prefix of the
        // live one (the dropped records are counted; replay after a
        // crash simply lacks the tail).
        if self.check_writable().is_err() {
            mabe_telemetry::global()
                .counter("mabe_read_audit_records_dropped_total", &[])
                .inc();
            return (result, None);
        }
        let seq = self.stage_frames_locked(&mut op, Vec::new());
        (result, Some(seq))
    }

    /// Marks a user offline (durably).
    ///
    /// # Errors
    ///
    /// Journal failures only.
    pub fn set_offline(&self, uid: &Uid) -> Result<(), CloudError> {
        self.check_poisoned()?;
        self.check_writable()?;
        let _trace = mabe_trace::Span::child("durable.set_offline").detail(uid.to_string());
        let seq = {
            let mut op = self.op.lock();
            self.sys.set_offline(uid);
            self.stage_frames_locked(&mut op, tables::frames_offline(&self.sys, uid))
        };
        self.commit(seq)?;
        self.maybe_checkpoint()
    }

    /// Brings an offline user back and replays its queued update keys
    /// (durably). The sync is journaled only once it fully succeeds; a
    /// crash mid-sync therefore replays to the pre-sync state with the
    /// queue intact, and the composed reapplication converges to the
    /// same key versions (at-least-once delivery, idempotent
    /// application).
    ///
    /// # Errors
    ///
    /// Same contract as [`CloudSystem::sync_user`], plus journal
    /// failures.
    pub fn sync_user(&self, uid: &Uid) -> Result<(), CloudError> {
        self.check_poisoned()?;
        self.check_writable()?;
        let _trace = mabe_trace::Span::child("durable.sync_user").detail(uid.to_string());
        let seq = {
            let mut op = self.op.lock();
            self.sys.sync_user(uid)?;
            self.stage_frames_locked(&mut op, tables::frames_synced(&self.sys, uid))
        };
        self.commit(seq)?;
        self.maybe_checkpoint()
    }

    /// Revokes one attribute from one user (durably). The begin batch —
    /// the re-keyed authority, dropped grants, archived update keys and
    /// the parked [`PendingRevocation`] — is journaled and synced
    /// **before** any key delivery, so a crash at any point of the
    /// two-phase protocol replays into an in-flight revocation that
    /// recovery completes.
    ///
    /// # Errors
    ///
    /// Same contract as [`CloudSystem::revoke`], plus journal failures.
    pub fn revoke(&self, uid: &Uid, attribute: &str) -> Result<(), CloudError> {
        self.check_poisoned()?;
        self.check_writable()?;
        let trace = mabe_trace::Span::child("durable.revoke").detail(format!("{uid} {attribute}"));
        let _e2e = mabe_telemetry::Span::start("mabe_revocation_e2e");
        let result = (|| {
            let attr: Attribute = attribute
                .parse()
                .map_err(|_| CloudError::UnknownEntity(format!("attribute {attribute}")))?;
            let aid = attr.authority().clone();
            self.lazy_backpressure_logged()?;
            let mut op = self.op.lock();
            let shard = self
                .sys
                .control
                .shard(&aid)
                .ok_or_else(|| CloudError::UnknownAuthority(aid.clone()))?;
            {
                let mut st = shard.state.lock();
                self.precheck_logged(&mut op, &aid, &mut st)?;
                let event = st
                    .authority
                    .revoke_attribute(uid, &attr, &mut *self.sys.rng.lock())?;
                self.begin_logged(&mut op, &mut st, event)?;
            }
            self.maybe_checkpoint_locked(&mut op)
        })();
        if let Err(e) = &result {
            trace.fail(e.to_string());
        }
        result
    }

    /// User-level revocation at one authority (durably); see
    /// [`CloudSystem::revoke_user_at`].
    ///
    /// # Errors
    ///
    /// Same contract as [`CloudSystem::revoke_user_at`], plus journal
    /// failures.
    pub fn revoke_user_at(&self, uid: &Uid, aid: &AuthorityId) -> Result<(), CloudError> {
        self.check_poisoned()?;
        self.check_writable()?;
        let trace =
            mabe_trace::Span::child("durable.revoke_user_at").detail(format!("{uid} @{aid}"));
        let _e2e = mabe_telemetry::Span::start("mabe_revocation_e2e");
        let result = (|| {
            self.lazy_backpressure_logged()?;
            let mut op = self.op.lock();
            let shard = self
                .sys
                .control
                .shard(aid)
                .ok_or_else(|| CloudError::UnknownAuthority(aid.clone()))?;
            {
                let mut st = shard.state.lock();
                self.precheck_logged(&mut op, aid, &mut st)?;
                let event = st.authority.revoke_user(uid, &mut *self.sys.rng.lock())?;
                self.begin_logged(&mut op, &mut st, event)?;
            }
            self.maybe_checkpoint_locked(&mut op)
        })();
        if let Err(e) = &result {
            trace.fail(e.to_string());
        }
        result
    }

    /// Full user-level revocation across every authority where the user
    /// holds attributes (durably); see [`CloudSystem::revoke_user`].
    ///
    /// # Errors
    ///
    /// Unknown user; propagates per-authority failures.
    pub fn revoke_user(&self, uid: &Uid) -> Result<(), CloudError> {
        self.check_poisoned()?;
        let involved: Vec<AuthorityId> = {
            let users = self.sys.directory.users.read();
            users
                .grants
                .get(uid)
                .ok_or_else(|| CloudError::Core(Error::UnknownUser(uid.clone())))?
                .iter()
                .map(|a| a.authority().clone())
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect()
        };
        for aid in involved {
            self.revoke_user_at(uid, &aid)?;
        }
        Ok(())
    }

    /// The durable twin of the control plane's shard precheck: any
    /// stalled predecessor at this authority is driven through the
    /// journaled path so its completion is logged too.
    fn precheck_logged(
        &self,
        op: &mut OpState,
        aid: &AuthorityId,
        st: &mut ShardState,
    ) -> Result<(), CloudError> {
        if st.down {
            return Err(CloudError::AuthorityUnavailable(aid.clone()));
        }
        self.sys.local_op(fault_points::REVOKE_REKEY, Some(aid))?;
        let stalled: Vec<u64> = st.in_flight.keys().copied().collect();
        for id in stalled {
            self.drive_logged(op, st, id, true)?;
        }
        Ok(())
    }

    /// Parks the pending revocation and journals the begin batch — the
    /// re-keyed authority row, the dropped grant rows, the purged
    /// update-key queues, the archived update keys, and the parked
    /// [`PendingRevocation`] — committed durable **before** any
    /// delivery starts (the write-ahead step), then drives or defers
    /// it. A crash between the begin and the commit loses an
    /// unacknowledged revocation entirely (nothing was journaled); a
    /// crash after replays it in-flight and recovery completes it.
    fn begin_logged(
        &self,
        op: &mut OpState,
        st: &mut ShardState,
        event: RevocationEvent,
    ) -> Result<(), CloudError> {
        // Users whose pending-update queues existed before the begin:
        // the begin purges entries the revoked user no longer gets, so
        // their rows re-emit put-or-delete.
        let queued_before: Vec<Uid> = self
            .sys
            .directory
            .users
            .read()
            .pending_updates
            .keys()
            .cloned()
            .collect();
        let id = self.sys.begin_in_shard(st, event);
        let frames = {
            let pending = st.in_flight.get(&id).expect("begin just parked this id");
            tables::frames_revocation_begun(&self.sys, st, pending, &queued_before)
        };
        self.log_frames_locked(op, frames)?;
        if self.sys.lazy_revocation_enabled() {
            self.defer_logged(op, st, id)
        } else {
            self.drive_logged(op, st, id, false)
        }
    }

    /// Runs the lazy immediate phase and logs the defer. A crash
    /// between the defer and the log replays the revocation as still
    /// in-flight and recovery drives it eagerly — the documented
    /// roll-forward; the security-gating steps are idempotent either
    /// way.
    fn defer_logged(
        &self,
        op: &mut OpState,
        st: &mut ShardState,
        id: u64,
    ) -> Result<(), CloudError> {
        let aid = st.authority.aid().clone();
        self.sys.defer_in_shard(st, id)?;
        self.log_frames_locked(op, tables::frames_revocation_deferred(&self.sys, id, &aid))
    }

    /// Drives one journaled revocation and logs its completion. A crash
    /// between the drive and the log replays the revocation as still
    /// in-flight and recovery re-drives it — every delivery step is
    /// idempotent, so at-least-once execution is safe.
    fn drive_logged(
        &self,
        op: &mut OpState,
        st: &mut ShardState,
        id: u64,
        recovered: bool,
    ) -> Result<(), CloudError> {
        let aid = st.authority.aid().clone();
        self.sys.drive_in_shard(st, id, recovered)?;
        self.log_frames_locked(op, tables::frames_revocation_driven(&self.sys, id, &aid))
    }

    /// Rolls every journaled in-flight revocation forward, logging each
    /// completion. Returns how many converged.
    ///
    /// # Errors
    ///
    /// Propagates the first fault that still blocks convergence.
    pub fn recover(&self) -> Result<usize, CloudError> {
        self.check_poisoned()?;
        let trace = mabe_trace::Span::child("durable.recover");
        let result: Result<usize, CloudError> = (|| {
            let mut op = self.op.lock();
            let mut work: Vec<(u64, Arc<AuthorityShard>)> = Vec::new();
            for shard in self.sys.control.shards.read().values() {
                let st = shard.state.lock();
                for id in st.in_flight.keys() {
                    work.push((*id, Arc::clone(shard)));
                }
            }
            work.sort_by_key(|(id, _)| *id);
            let mut completed = 0;
            for (id, shard) in work {
                let mut st = shard.state.lock();
                self.drive_logged(&mut op, &mut st, id, true)?;
                completed += 1;
            }
            Ok(completed)
        })();
        if let Err(e) = &result {
            trace.fail(e.to_string());
        }
        result
    }

    /// The durable backpressure gate: while the lazy queue sits at
    /// capacity, this revoker drains (and journals) a batch inline
    /// before enqueueing more. Runs *before* the op lock — the drain
    /// takes it briefly for its own completion record.
    fn lazy_backpressure_logged(&self) -> Result<(), CloudError> {
        if !self.sys.lazy_revocation_enabled() {
            return Ok(());
        }
        while self.sys.lazy_queue_depth() >= self.sys.lazy_capacity() {
            mabe_telemetry::global()
                .counter("mabe_lazy_backpressure_total", &[])
                .inc();
            if self.drain_lazy_batch()?.is_empty() {
                break;
            }
        }
        Ok(())
    }

    /// Claims and drains one authority's pending lazy batch to
    /// convergence, journaling the completion (`LazyDrained`) so replay
    /// converges the same revocations. Component upgrades run **outside**
    /// the op lock — reads and other ops proceed during a drain; only
    /// the completion record serializes with the journal. In degraded
    /// (read-only) mode this is a clean no-op: the queue is preserved
    /// and read-triggered upgrade keeps serving fresh bytes.
    ///
    /// # Errors
    ///
    /// Poisoned handle, journal failures, or unrecovered drain faults
    /// (the claim is released and the queue kept intact for retry).
    pub fn drain_lazy_batch(&self) -> Result<Vec<u64>, CloudError> {
        self.check_poisoned()?;
        if self.degraded() {
            return Ok(Vec::new());
        }
        let Some(claim) = self.sys.claim_next() else {
            return Ok(Vec::new());
        };
        let result = self.drain_claim_logged(&claim);
        self.sys.release_claim(&claim.aid);
        result
    }

    fn drain_claim_logged(&self, claim: &crate::lazy::LazyClaim) -> Result<Vec<u64>, CloudError> {
        self.sys.drain_claim_components(claim)?;
        let mut op = self.op.lock();
        let ids = self.sys.complete_claim(claim);
        if !ids.is_empty() {
            self.log_frames_locked(
                &mut op,
                tables::frames_lazy_drained(&self.sys, &ids, &claim.aid),
            )?;
            self.maybe_checkpoint_locked(&mut op)?;
        }
        Ok(ids)
    }

    /// Drains the entire lazy pending-upgrade queue durably. Returns
    /// how many deferred revocations converged.
    ///
    /// # Errors
    ///
    /// Propagates the first failing batch; earlier batches stay
    /// converged and journaled.
    pub fn drain_lazy(&self) -> Result<usize, CloudError> {
        let mut converged = 0;
        loop {
            let ids = self.drain_lazy_batch()?;
            if ids.is_empty() {
                return Ok(converged);
            }
            converged += ids.len();
        }
    }

    /// Read access to the wrapped system (audit trail, server, wire
    /// accounting, storage report, versions).
    pub fn system(&self) -> &CloudSystem {
        &self.sys
    }

    /// The tamper-evident audit trail (a lock guard dereferencing to
    /// the [`AuditLog`]).
    pub fn audit(&self) -> impl std::ops::Deref<Target = AuditLog> + '_ {
        self.sys.audit()
    }

    /// Whether any revocation is journaled but not yet converged.
    pub fn needs_recovery(&self) -> bool {
        self.sys.needs_recovery()
    }

    /// Whether a journal-write failure has poisoned this handle (reopen
    /// from storage to continue).
    pub fn poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Mutable access to the **cloud-level** fault injector (the store
    /// has its own, owned by the backend).
    pub fn faults_mut(&mut self) -> &mut FaultInjector {
        self.sys.faults_mut()
    }

    /// The committed checkpoint generation.
    pub fn generation(&self) -> u64 {
        self.ts.generation()
    }

    /// Segments the committed manifest currently lists.
    pub fn segments_live(&self) -> usize {
        self.ts.segments_live()
    }

    /// Live log bytes (cold + active segments, snapshot excluded).
    pub fn live_log_bytes(&self) -> usize {
        self.ts.live_log_bytes()
    }

    /// Sets the per-segment rotation budget on the underlying log.
    pub fn set_segment_budget(&self, bytes: usize) {
        self.ts.set_segment_budget(bytes);
    }

    /// Read access to the backing store (a guard dereferencing to `S`,
    /// held through the log's lock for the duration of the borrow).
    pub fn storage(&self) -> StoreRef<'_, S> {
        self.ts.storage()
    }

    /// Mutable access to the backing store (e.g. to arm a simulated
    /// disk's injector mid-run).
    pub fn storage_mut(&mut self) -> &mut S {
        self.ts.store_mut()
    }

    /// Consumes the system, returning the backing store — the crash
    /// sweep's "power cut": drop everything in memory, keep the disk.
    pub fn into_storage(self) -> S {
        self.ts.into_store()
    }
}

impl<S: Storage + Send + Sync + 'static> DurableSystem<S> {
    /// Spawns the background maintenance loop: every `period` it runs
    /// one scrubber pass (repairing any rot it finds) and an
    /// opportunistic checkpoint check, until the returned handle is
    /// stopped or dropped. Maintenance failures are absorbed — the
    /// foreground path already owns poisoning and degradation — and the
    /// loop parks itself permanently if the handle poisons.
    pub fn spawn_maintenance(self: &Arc<Self>, period: Duration) -> MaintenanceHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let sys = Arc::clone(self);
        let thread = std::thread::spawn(move || {
            while !flag.load(Ordering::SeqCst) {
                // Sleep in short slices so stop() returns promptly even
                // with a long period.
                let mut slept = Duration::ZERO;
                while slept < period && !flag.load(Ordering::SeqCst) {
                    let slice = (period - slept).min(Duration::from_millis(20));
                    std::thread::sleep(slice);
                    slept += slice;
                }
                if flag.load(Ordering::SeqCst) || sys.poisoned() {
                    break;
                }
                let _ = sys.scrub();
                let _ = sys.maybe_checkpoint();
            }
        });
        MaintenanceHandle {
            stop,
            thread: Some(thread),
        }
    }

    /// Spawns the bounded lazy-drain worker pool: `workers` threads
    /// each repeatedly claim and drain one authority's pending batch
    /// (journaling completions) and sleep `period` when the queue is
    /// empty or a fault blocks a batch (the claim is released, so the
    /// next tick retries). Workers park permanently if the handle
    /// poisons; drain errors are absorbed — foreground revokes apply
    /// backpressure and reads self-heal regardless.
    pub fn spawn_lazy_drain(self: &Arc<Self>, workers: usize, period: Duration) -> LazyDrainHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();
        for _ in 0..workers.max(1) {
            let flag = Arc::clone(&stop);
            let sys = Arc::clone(self);
            threads.push(std::thread::spawn(move || {
                while !flag.load(Ordering::SeqCst) {
                    if sys.poisoned() {
                        break;
                    }
                    if let Ok(ids) = sys.drain_lazy_batch() {
                        if !ids.is_empty() {
                            // Keep draining while there is claimable work.
                            continue;
                        }
                    }
                    // Idle (or transiently faulted): sleep in short
                    // slices so stop() returns promptly.
                    let mut slept = Duration::ZERO;
                    while slept < period && !flag.load(Ordering::SeqCst) {
                        let slice = (period - slept).min(Duration::from_millis(20));
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                }
            }));
        }
        LazyDrainHandle { stop, threads }
    }
}

/// Stops the background maintenance loop when explicitly
/// [`stopped`](MaintenanceHandle::stop) or dropped.
#[derive(Debug)]
pub struct MaintenanceHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MaintenanceHandle {
    /// Signals the loop to exit and joins it.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MaintenanceHandle {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Stops the lazy-drain worker pool when explicitly
/// [`stopped`](LazyDrainHandle::stop) or dropped.
#[derive(Debug)]
pub struct LazyDrainHandle {
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl LazyDrainHandle {
    /// Signals every worker to exit and joins them.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for LazyDrainHandle {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mabe_faults::{FaultKind, FaultPlan};
    use mabe_store::{store_points, SimDisk};

    const DOC_POLICY: &str = "Doctor@MedOrg";
    const SHARED_POLICY: &str = "Doctor@MedOrg OR Nurse@MedOrg";

    /// Builds a world exercising **every** journal record type: authority
    /// and owner setup, two users, grants, two publishes, an offline
    /// user riding out a revocation, a sync, and an allowed plus a
    /// denied read.
    fn full_world(
        ds: DurableSystem<SimDisk>,
    ) -> (DurableSystem<SimDisk>, Uid, Uid, OwnerId, AuthorityId) {
        let aid = ds.add_authority("MedOrg", &["Doctor", "Nurse"]).unwrap();
        let owner = ds.add_owner("hospital").unwrap();
        let alice = ds.add_user("alice").unwrap();
        let bob = ds.add_user("bob").unwrap();
        ds.grant(&alice, &["Doctor@MedOrg"]).unwrap();
        ds.grant(&bob, &["Nurse@MedOrg"]).unwrap();
        ds.publish(
            &owner,
            "rec-doc",
            &[("diagnosis", b"doctors only".as_slice(), DOC_POLICY)],
        )
        .unwrap();
        ds.publish(
            &owner,
            "rec-shared",
            &[("note", b"ward note".as_slice(), SHARED_POLICY)],
        )
        .unwrap();
        ds.set_offline(&bob).unwrap();
        ds.revoke(&alice, "Doctor@MedOrg").unwrap();
        ds.sync_user(&bob).unwrap();
        assert_eq!(
            ds.read(&bob, &owner, "rec-shared", "note").unwrap(),
            b"ward note"
        );
        // Alice was revoked: the denied read is audited (allowed=false).
        assert!(ds.read(&alice, &owner, "rec-doc", "diagnosis").is_err());
        (ds, alice, bob, owner, aid)
    }

    fn open_fresh(seed: u64) -> DurableSystem<SimDisk> {
        DurableSystem::open(SimDisk::unfaulted(), seed).unwrap().0
    }

    #[test]
    fn reopen_after_crash_restores_state_and_audit_chain() {
        let (ds, alice, bob, owner, aid) = full_world(open_fresh(42));
        let expected_audit = ds.audit().clone();
        let expected_version = ds.system().authority_version(&aid);
        assert!(!ds.needs_recovery());

        let mut disk = ds.into_storage();
        disk.crash(); // drop anything unsynced — acked ops must survive

        let (ds2, report) = DurableSystem::open(disk, 9999).unwrap();
        assert!(report.records_replayed >= 12, "all ops journaled");
        assert_eq!(report.revocations_recovered, 0);
        assert_eq!(
            &*ds2.audit(),
            &expected_audit,
            "replayed audit chain identical"
        );
        assert_eq!(ds2.system().authority_version(&aid), expected_version);
        assert!(!ds2.needs_recovery());

        // Paper invariants hold in the reopened incarnation: the
        // non-revoked user still decrypts, the revoked one never does.
        assert_eq!(
            ds2.read(&bob, &owner, "rec-shared", "note").unwrap(),
            b"ward note"
        );
        assert!(ds2.read(&alice, &owner, "rec-doc", "diagnosis").is_err());
    }

    #[test]
    fn checkpoint_compacts_and_reopen_replays_only_the_tail() {
        let (ds, _, bob, owner, _) = full_world(open_fresh(7));
        ds.checkpoint().unwrap();
        let generation = ds.generation();
        assert!(generation >= 1);
        // One post-checkpoint op rides in the new generation's log.
        ds.publish(
            &owner,
            "rec-late",
            &[("x", b"tail".as_slice(), SHARED_POLICY)],
        )
        .unwrap();
        let expected_audit = ds.audit().clone();

        let mut disk = ds.into_storage();
        disk.crash();
        let (ds2, report) = DurableSystem::open(disk, 1).unwrap();
        assert!(report.wal.had_snapshot);
        assert_eq!(report.records_replayed, 1, "only the tail replays");
        assert_eq!(ds2.generation(), generation);
        assert_eq!(&*ds2.audit(), &expected_audit);
        assert_eq!(ds2.read(&bob, &owner, "rec-late", "x").unwrap(), b"tail");
    }

    /// A small lazy-mode world: two authorities, two publishes, lazy
    /// revocation enabled, one revoke deferred onto the queue.
    fn lazy_world(ds: DurableSystem<SimDisk>) -> (DurableSystem<SimDisk>, Uid, Uid, OwnerId) {
        ds.add_authority("MedOrg", &["Doctor", "Nurse"]).unwrap();
        let owner = ds.add_owner("hospital").unwrap();
        let alice = ds.add_user("alice").unwrap();
        let bob = ds.add_user("bob").unwrap();
        ds.grant(&alice, &["Doctor@MedOrg"]).unwrap();
        ds.grant(&bob, &["Doctor@MedOrg"]).unwrap();
        ds.publish(&owner, "rec-a", &[("x", b"aaa".as_slice(), DOC_POLICY)])
            .unwrap();
        ds.publish(&owner, "rec-b", &[("y", b"bbb".as_slice(), DOC_POLICY)])
            .unwrap();
        ds.system().set_lazy_revocation(true);
        ds.revoke(&alice, "Doctor@MedOrg").unwrap();
        assert_eq!(ds.system().lazy_queue_depth(), 1);
        (ds, alice, bob, owner)
    }

    #[test]
    fn deferred_revocation_survives_a_crash_with_the_queue_intact() {
        let (ds, alice, bob, owner) = lazy_world(open_fresh(21));
        assert!(!ds.needs_recovery(), "deferred ≠ in-flight");
        let mut disk = ds.into_storage();
        disk.crash();

        let (ds2, report) = DurableSystem::open(disk, 22).unwrap();
        assert_eq!(report.revocations_recovered, 0);
        assert_eq!(
            ds2.system().lazy_queue_depth(),
            1,
            "acked lazy revoke is durable"
        );
        // Security survived the crash: the revoked user is denied even
        // though the ciphertexts are still at the old version...
        assert!(ds2.read(&alice, &owner, "rec-a", "x").is_err());
        // ...and a live holder reads through the staleness.
        assert_eq!(ds2.read(&bob, &owner, "rec-b", "y").unwrap(), b"bbb");
        assert_eq!(ds2.drain_lazy().unwrap(), 1);
        assert_eq!(ds2.system().lazy_queue_depth(), 0);
        assert!(ds2.audit().verify());
    }

    #[test]
    fn journaled_lazy_drain_replays_identically() {
        let (ds, alice, bob, owner) = lazy_world(open_fresh(23));
        assert_eq!(ds.drain_lazy().unwrap(), 1);
        let expected_audit = ds.audit().clone();
        let mut disk = ds.into_storage();
        disk.crash();

        let (ds2, _) = DurableSystem::open(disk, 24).unwrap();
        assert_eq!(
            &*ds2.audit(),
            &expected_audit,
            "defer + drain replay to the same audit chain"
        );
        assert_eq!(ds2.system().lazy_queue_depth(), 0);
        assert!(ds2.read(&alice, &owner, "rec-a", "x").is_err());
        assert_eq!(ds2.read(&bob, &owner, "rec-a", "x").unwrap(), b"aaa");
    }

    #[test]
    fn checkpoint_persists_the_queue_and_update_key_archive() {
        let (ds, _alice, bob, owner) = lazy_world(open_fresh(25));
        ds.checkpoint().unwrap();
        let mut disk = ds.into_storage();
        disk.crash();

        let (ds2, report) = DurableSystem::open(disk, 26).unwrap();
        assert!(report.wal.had_snapshot);
        assert_eq!(report.records_replayed, 0);
        assert_eq!(ds2.system().lazy_queue_depth(), 1);
        // Draining after a snapshot-only reopen needs the archived
        // update keys — they rode in the checkpoint.
        assert_eq!(ds2.drain_lazy().unwrap(), 1);
        assert_eq!(ds2.read(&bob, &owner, "rec-b", "y").unwrap(), b"bbb");
        assert!(ds2.audit().verify());
    }

    #[test]
    fn background_drain_workers_converge_a_storm() {
        let ds = Arc::new(open_fresh(27));
        ds.add_authority("MedOrg", &["Doctor", "Nurse"]).unwrap();
        ds.add_authority("Trial", &["Researcher"]).unwrap();
        let owner = ds.add_owner("hospital").unwrap();
        let alice = ds.add_user("alice").unwrap();
        let bob = ds.add_user("bob").unwrap();
        ds.grant(&alice, &["Doctor@MedOrg", "Researcher@Trial"])
            .unwrap();
        ds.grant(&bob, &["Doctor@MedOrg"]).unwrap();
        ds.publish(&owner, "rec", &[("x", b"sec".as_slice(), DOC_POLICY)])
            .unwrap();
        ds.system().set_lazy_revocation(true);
        ds.revoke(&alice, "Doctor@MedOrg").unwrap();
        ds.revoke(&bob, "Doctor@MedOrg").unwrap();
        ds.revoke(&alice, "Researcher@Trial").unwrap();
        assert_eq!(ds.system().lazy_queue_depth(), 3);

        let handle = ds.spawn_lazy_drain(2, Duration::from_millis(10));
        let deadline = Instant::now() + Duration::from_secs(30);
        while ds.system().lazy_queue_depth() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        handle.stop();
        assert_eq!(
            ds.system().lazy_queue_depth(),
            0,
            "workers drained the storm"
        );
        assert!(!ds.needs_recovery());
        assert!(ds.audit().verify());
        let converged = ds
            .audit()
            .entries()
            .iter()
            .filter(|e| matches!(e.event, AuditEvent::RevocationConverged { .. }))
            .count();
        assert_eq!(converged, 3);
    }

    /// One lazy lifecycle with a crash scheduled at the `hit`-th firing
    /// of `point`, then a power cut and a reopen. Whatever the crash
    /// interrupted, the reopened system must roll forward to the same
    /// end state: queue drained, revoked uid denied, live holder
    /// served, audit chain closed.
    fn lazy_crash_scenario(point: &'static str, hit: u64) {
        let plan = FaultPlan::new(0x1a2e).at(point, hit, FaultKind::Crash);
        let (ds, _) =
            DurableSystem::open_with_faults(SimDisk::unfaulted(), 41, FaultInjector::new(plan))
                .unwrap();
        ds.add_authority("MedOrg", &["Doctor", "Nurse"]).unwrap();
        let owner = ds.add_owner("hospital").unwrap();
        let alice = ds.add_user("alice").unwrap();
        let bob = ds.add_user("bob").unwrap();
        ds.grant(&alice, &["Doctor@MedOrg"]).unwrap();
        ds.grant(&bob, &["Doctor@MedOrg"]).unwrap();
        ds.publish(&owner, "rec-a", &[("x", b"aaa".as_slice(), DOC_POLICY)])
            .unwrap();
        ds.publish(&owner, "rec-b", &[("y", b"bbb".as_slice(), DOC_POLICY)])
            .unwrap();
        ds.system().set_lazy_revocation(true);

        // Exactly one of these trips the scheduled crash; each outcome
        // is tolerated here — the contract is what survives the cut.
        let _ = ds.revoke(&alice, "Doctor@MedOrg"); // cloud.lazy_enqueue
        let _ = ds.read(&bob, &owner, "rec-a", "x"); // cloud.read_upgrade
        let _ = ds.drain_lazy(); // cloud.lazy_drain

        // Security never waited for the deferred work: the version bump
        // and key delivery are immediate, so alice is denied *now*,
        // whatever state the crash left the queue in.
        assert!(
            ds.read(&alice, &owner, "rec-a", "x").is_err(),
            "{point}#{hit}: revoked uid read before the power cut"
        );

        let mut disk = ds.into_storage();
        disk.crash();
        let (ds2, _) = DurableSystem::open(disk, 42).unwrap();
        // Roll forward: a crash before the defer was journaled leaves
        // the revocation in-flight (recovery drives it eagerly); a
        // crash after leaves it queued (drain converges it).
        while ds2.needs_recovery() {
            ds2.recover().unwrap();
        }
        ds2.drain_lazy().unwrap();
        assert_eq!(
            ds2.system().lazy_queue_depth(),
            0,
            "{point}#{hit}: queue did not converge after reopen"
        );
        assert!(
            ds2.read(&alice, &owner, "rec-a", "x").is_err(),
            "{point}#{hit}: revoked uid reads post-bump"
        );
        assert_eq!(
            ds2.read(&bob, &owner, "rec-b", "y").unwrap(),
            b"bbb",
            "{point}#{hit}: live holder lost access"
        );
        assert!(ds2.audit().verify(), "{point}#{hit}: audit chain broken");
        assert!(
            ds2.audit().incomplete_revocations().is_empty(),
            "{point}#{hit}: audit shows incomplete revocations"
        );
    }

    #[test]
    fn crash_sweep_over_lazy_fault_points() {
        for (point, hits) in [
            (fault_points::LAZY_ENQUEUE, 1),
            (fault_points::LAZY_DRAIN, 2), // two stale components to kill between
            (fault_points::READ_UPGRADE, 1),
        ] {
            for hit in 1..=hits {
                lazy_crash_scenario(point, hit);
            }
        }
    }

    #[test]
    fn journal_bitflip_fuzz_never_panics_and_fails_typed() {
        let (ds, _, _, _, _) = full_world(open_fresh(11));
        let mut disk = ds.into_storage();
        disk.crash();
        let log = disk.durable_bytes("wal.0.0").unwrap().to_vec();
        let manifest = disk.durable_bytes("manifest.1").unwrap().to_vec();
        let step = (log.len() / 96).max(1);
        let mut opened = 0usize;
        for pos in (0..log.len()).step_by(step) {
            let mut damaged = log.clone();
            damaged[pos] ^= 1 << (pos % 8);
            let mut d = SimDisk::unfaulted();
            d.set_durable("manifest.1", manifest.clone());
            d.set_durable("wal.0.0", damaged);
            match DurableSystem::open(d, 3) {
                Ok((sys, report)) => {
                    // The flip was absorbed by dropping a record suffix:
                    // whatever prefix survived must be a coherent history.
                    assert!(sys.audit().verify());
                    assert!(report.records_replayed <= 14);
                    opened += 1;
                }
                Err(failure) => {
                    assert!(
                        matches!(failure.error, OpenError::Store(StoreError::Corrupt(_))),
                        "pos {pos}: unexpected error {}",
                        failure.error
                    );
                }
            }
        }
        assert!(opened > 0, "some flips must land in droppable payloads");
    }

    #[test]
    fn open_failure_hands_back_storage_for_repair() {
        let ds = open_fresh(5);
        ds.add_authority("Solo", &["A"]).unwrap();
        ds.checkpoint().unwrap();
        let mut disk = ds.into_storage();
        disk.crash();
        let snap = disk.durable_bytes("snapshot-1").unwrap().to_vec();

        let mut damaged = snap.clone();
        *damaged.last_mut().unwrap() ^= 0xff;
        disk.set_durable("snapshot-1", damaged);
        let failure = DurableSystem::open(disk, 5).unwrap_err();
        assert!(matches!(
            failure.error,
            OpenError::Store(StoreError::Corrupt(_))
        ));
        // The surviving bytes come back: repair and reopen.
        let mut disk = failure.storage;
        disk.set_durable("snapshot-1", snap);
        let (ds, report) = DurableSystem::open(disk, 5).unwrap();
        assert!(report.wal.had_snapshot);
        assert!(ds
            .system()
            .authority_version(&AuthorityId::new("Solo"))
            .is_some());
    }

    #[test]
    fn journal_write_failure_poisons_the_handle() {
        let mut ds = open_fresh(21);
        ds.add_authority("MedOrg", &["Doctor"]).unwrap();
        let alice = ds.add_user("alice").unwrap();
        let audited = ds.audit().entries().len();

        ds.storage_mut()
            .injector_mut()
            .schedule(store_points::APPEND, 1, FaultKind::Crash);
        let err = ds.grant(&alice, &["Doctor@MedOrg"]).unwrap_err();
        assert_eq!(
            err,
            CloudError::Crashed {
                point: store_points::APPEND
            }
        );
        // Memory may be ahead of the journal now: the handle refuses
        // further mutations instead of silently diverging.
        assert!(ds.poisoned());
        assert_eq!(
            ds.add_user("bob").unwrap_err(),
            CloudError::Crashed {
                point: POISONED_POINT
            }
        );

        // Reopen from the surviving bytes: the unacknowledged grant
        // never happened.
        let mut disk = ds.into_storage();
        disk.crash();
        disk.injector_mut().disarm();
        let (ds2, _) = DurableSystem::open(disk, 22).unwrap();
        assert_eq!(ds2.audit().entries().len(), audited);
        assert!(ds2
            .system()
            .authority_version(&AuthorityId::new("MedOrg"))
            .is_some());
    }

    #[test]
    fn recovery_telemetry_families_export() {
        let ds = open_fresh(31);
        ds.add_user("solo").unwrap();
        let mut disk = ds.into_storage();
        disk.crash();
        let _ = DurableSystem::open(disk, 32).unwrap();

        let json = mabe_telemetry::global().snapshot_json();
        let prom = mabe_telemetry::global().prometheus();
        for family in [
            "mabe_recovery_duration_ms",
            "mabe_wal_records_replayed_total",
        ] {
            assert!(json.contains(family), "{family} missing from JSON export");
            assert!(
                prom.contains(family),
                "{family} missing from Prometheus export"
            );
        }
    }

    #[test]
    fn concurrent_journaled_reads_survive_crash_and_replay() {
        let (ds, _alice, bob, owner, _aid) = full_world(open_fresh(55));
        let base_audit = ds.audit().entries().len();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let ds = &ds;
                let bob = &bob;
                let owner = &owner;
                scope.spawn(move || {
                    for _ in 0..8 {
                        assert_eq!(
                            ds.read(bob, owner, "rec-shared", "note").unwrap(),
                            b"ward note"
                        );
                    }
                });
            }
        });
        assert_eq!(ds.audit().entries().len(), base_audit + 32);
        assert!(ds.audit().verify());

        // Every acked read is journaled in apply order: the replayed
        // audit chain carries all 32 concurrent reads byte-identically.
        let expected_audit = ds.audit().clone();
        let mut disk = ds.into_storage();
        disk.crash();
        let (ds2, _) = DurableSystem::open(disk, 56).unwrap();
        assert_eq!(&*ds2.audit(), &expected_audit);
    }

    #[test]
    fn a_full_disk_degrades_to_read_only_and_compaction_lifts_it() {
        let (ds, _alice, bob, owner, _) = full_world(open_fresh(77));
        ds.set_checkpoint_interval(1_000_000);
        // Grow the journal well past what the snapshot will need, so
        // compaction genuinely reclaims space.
        for _ in 0..4000 {
            ds.set_offline(&bob).unwrap();
        }
        let mut ds = ds;
        let used = ds.storage().live_bytes();
        ds.storage_mut().set_capacity(Some(used + 30_000));
        ds.set_degrade_headroom(50_000);

        // Mutations fail fast and typed; the handle is NOT poisoned.
        let err = ds.set_offline(&bob).unwrap_err();
        assert!(matches!(err, CloudError::StoreFull { .. }), "got {err}");
        assert!(ds.degraded());
        assert!(!ds.poisoned());
        let generation = ds.generation();

        // Reads keep serving while degraded — and still never poison.
        assert_eq!(
            ds.read(&bob, &owner, "rec-shared", "note").unwrap(),
            b"ward note"
        );
        assert!(!ds.poisoned());

        let json = mabe_telemetry::global().snapshot_json();
        assert!(json.contains("mabe_store_degraded"));

        // Compaction is allowed while degraded (it is the cure): the
        // snapshot supersedes thousands of journal records, the sweep
        // reclaims them, and the degradation lifts in-process.
        ds.checkpoint().unwrap();
        assert_eq!(ds.generation(), generation + 1);
        assert!(!ds.degraded());
        ds.set_offline(&bob).unwrap();
        assert!(!ds.poisoned());
    }

    #[test]
    fn the_wal_byte_budget_triggers_automatic_compaction() {
        let ds = open_fresh(83);
        let alice = ds.add_user("alice").unwrap();
        // Op-count checkpointing effectively off: only the byte budget
        // can compact.
        ds.set_checkpoint_interval(1_000_000);
        ds.set_wal_budget(4096);
        for _ in 0..400 {
            ds.set_offline(&alice).unwrap();
        }
        assert!(ds.generation() >= 1, "byte budget forced checkpoints");
        assert!(
            ds.live_log_bytes() < 2 * 4096,
            "live bytes stay bounded: {}",
            ds.live_log_bytes()
        );
    }

    #[test]
    fn scrub_repairs_cold_segment_rot_with_quarantine_and_checkpoint() {
        let mut ds = open_fresh(91);
        let alice = ds.add_user("alice").unwrap();
        ds.set_checkpoint_interval(1_000_000);
        ds.set_segment_budget(256);
        for _ in 0..40 {
            ds.set_offline(&alice).unwrap();
        }
        assert!(ds.segments_live() > 1, "rotation produced cold segments");

        let mut bytes = {
            let store = ds.storage();
            store.durable_bytes("wal.0.0").unwrap().to_vec()
        };
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        ds.storage_mut().set_durable("wal.0.0", bytes);

        let report = ds.scrub().unwrap();
        assert_eq!(report.corrupt, vec!["wal.0.0".to_string()]);
        // The repair quarantined the rot and cut a fresh generation
        // from the authoritative in-memory state.
        assert!(ds.generation() >= 1);
        assert!(ds
            .storage()
            .list()
            .iter()
            .any(|n| n == "quarantine.wal.0.0"));
        assert!(ds.scrub().unwrap().clean());
        assert!(!ds.poisoned());

        // The healed store reopens — the rot is gone from the live set.
        let mut disk = ds.into_storage();
        disk.crash();
        let (ds2, report) = DurableSystem::open(disk, 92).unwrap();
        assert!(report.wal.had_snapshot);
        assert!(!ds2.needs_recovery());
    }

    #[test]
    fn background_maintenance_repairs_rot_without_foreground_help() {
        let mut ds = open_fresh(97);
        let alice = ds.add_user("alice").unwrap();
        ds.set_checkpoint_interval(1_000_000);
        ds.set_segment_budget(256);
        for _ in 0..40 {
            ds.set_offline(&alice).unwrap();
        }
        assert!(ds.segments_live() > 1);
        let mut bytes = {
            let store = ds.storage();
            store.durable_bytes("wal.0.0").unwrap().to_vec()
        };
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        ds.storage_mut().set_durable("wal.0.0", bytes);

        let ds = Arc::new(ds);
        let handle = ds.spawn_maintenance(Duration::from_millis(2));
        let mut repaired = false;
        for _ in 0..2000 {
            if ds.generation() >= 1 {
                repaired = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        handle.stop();
        assert!(repaired, "the scrubber repaired the rot in background");
        assert!(ds
            .storage()
            .list()
            .iter()
            .any(|n| n == "quarantine.wal.0.0"));
        assert!(ds.scrub().unwrap().clean());
        assert!(!ds.poisoned());
    }

    // -----------------------------------------------------------------
    // Backward compatibility: pre-keyspace stores open through the shim
    // -----------------------------------------------------------------

    /// Synthesizes a journal in the previous release's record format —
    /// the exact apply-then-stage order the old wrapper used — and
    /// opens it through the replay shim. Then appends typed batches on
    /// top and reopens the *mixed* log: legacy records re-execute, the
    /// state converts at the format boundary, and the typed batches
    /// fold as rows.
    #[test]
    fn legacy_wal_records_replay_through_the_shim() {
        use mabe_store::GroupWal;

        let (wal, snapshot, records, _) = GroupWal::open(SimDisk::unfaulted()).unwrap();
        assert!(snapshot.is_none() && records.is_empty());
        let log = |rec: &WalRecord| {
            let seq = wal.stage(&rec.encode());
            wal.commit(seq).unwrap();
        };

        // A live (non-durable) system stands in for the old release.
        let sys = CloudSystem::new(42);
        let aid = sys.add_authority("MedOrg", &["Doctor", "Nurse"]).unwrap();
        log(&WalRecord::AuthorityAdded {
            name: "MedOrg".to_owned(),
            authority: sys
                .control
                .shard(&aid)
                .unwrap()
                .state
                .lock()
                .authority
                .to_wire_bytes(),
        });
        let owner = sys.add_owner("hospital").unwrap();
        log(&WalRecord::OwnerAdded {
            owner: sys
                .directory
                .owners
                .read()
                .get(&owner)
                .unwrap()
                .to_wire_bytes(),
        });
        let alice = sys.add_user("alice").unwrap();
        let (u, pk) = sys.directory.ca.lock().export_user(&alice).unwrap();
        log(&WalRecord::UserAdded {
            u,
            pk: pk.to_wire_bytes(),
        });
        let bob = sys.add_user("bob").unwrap();
        let (u, pk) = sys.directory.ca.lock().export_user(&bob).unwrap();
        log(&WalRecord::UserAdded {
            u,
            pk: pk.to_wire_bytes(),
        });
        sys.grant(&alice, &["Doctor@MedOrg"]).unwrap();
        log(&WalRecord::Granted {
            uid: alice.to_string(),
            attributes: vec!["Doctor@MedOrg".to_owned()],
        });
        sys.grant(&bob, &["Doctor@MedOrg"]).unwrap();
        log(&WalRecord::Granted {
            uid: bob.to_string(),
            attributes: vec!["Doctor@MedOrg".to_owned()],
        });
        sys.publish(&owner, "rec", &[("x", b"secret".as_slice(), DOC_POLICY)])
            .unwrap();
        {
            let envelope = sys.data.server.fetch(&owner, "rec").unwrap();
            let owners = sys.directory.owners.read();
            let secrets = envelope
                .components
                .iter()
                .map(|c| {
                    let s = owners
                        .get(&owner)
                        .unwrap()
                        .encryption_secret(c.key_ct.id)
                        .unwrap();
                    (c.key_ct.id.0, s)
                })
                .collect();
            log(&WalRecord::Published {
                owner: owner.to_string(),
                record: "rec".to_owned(),
                envelope: envelope.to_wire_bytes(),
                secrets,
            });
        }
        // Revocation, old style: journal the post-ReKey authority plus
        // the event write-ahead, then begin and drive.
        let attr: Attribute = "Doctor@MedOrg".parse().unwrap();
        let (authority, event) = {
            let shard = sys.control.shard(&aid).unwrap();
            let mut st = shard.state.lock();
            let event = st
                .authority
                .revoke_attribute(&alice, &attr, &mut *sys.rng.lock())
                .unwrap();
            (st.authority.to_wire_bytes(), event)
        };
        log(&WalRecord::RevocationBegun {
            authority,
            event: event.to_wire_bytes(),
        });
        let id = sys.begin_revocation(event);
        sys.drive_revocation(id, false).unwrap();
        log(&WalRecord::RevocationDriven {
            id,
            recovered: false,
        });
        assert_eq!(sys.read(&bob, &owner, "rec", "x").unwrap(), b"secret");
        log(&WalRecord::ReadAudited {
            uid: bob.to_string(),
            owner: owner.to_string(),
            record: "rec".to_owned(),
            component: "x".to_owned(),
            allowed: true,
        });
        let expected_audit = sys.audit.lock().clone();

        // The new release opens the old store through the shim.
        let (ds, report) = DurableSystem::open(wal.into_store(), 7).unwrap();
        assert_eq!(report.records_replayed, 10);
        assert!(!report.wal.had_snapshot);
        assert_eq!(
            &*ds.audit(),
            &expected_audit,
            "legacy replay rebuilds the identical audit chain"
        );
        assert!(ds.read(&alice, &owner, "rec", "x").is_err(), "revoked");
        assert_eq!(ds.read(&bob, &owner, "rec", "x").unwrap(), b"secret");

        // Typed batches now append after the legacy records...
        let carol = ds.add_user("carol").unwrap();
        ds.grant(&carol, &["Nurse@MedOrg"]).unwrap();
        let expected_audit = ds.audit().clone();

        // ...and the mixed log reopens: records, then rows.
        let mut disk = ds.into_storage();
        disk.crash();
        let (ds2, report) = DurableSystem::open(disk, 8).unwrap();
        assert!(report.records_replayed >= 11);
        assert_eq!(&*ds2.audit(), &expected_audit);
        assert!(ds2.read(&alice, &owner, "rec", "x").is_err());
        assert_eq!(ds2.read(&bob, &owner, "rec", "x").unwrap(), b"secret");
        assert!(ds2.audit().verify());
    }

    #[test]
    fn legacy_checkpoint_snapshot_still_opens() {
        use mabe_store::GroupWal;

        // Build real state through the durable path, then rewrite the
        // store as the old release's checkpoint: one monolithic
        // MSYS0001 snapshot with an empty tail.
        let (ds, _alice, bob, owner, _aid) = full_world(open_fresh(19));
        let payload = encode_system(ds.system());
        let expected_audit = ds.audit().clone();

        let (wal, _, _, _) = GroupWal::open(SimDisk::unfaulted()).unwrap();
        wal.checkpoint(&payload).unwrap();
        let (ds2, report) = DurableSystem::open(wal.into_store(), 19).unwrap();
        assert!(report.wal.had_snapshot);
        assert_eq!(report.records_replayed, 0);
        assert_eq!(&*ds2.audit(), &expected_audit);
        assert_eq!(
            ds2.read(&bob, &owner, "rec-shared", "note").unwrap(),
            b"ward note"
        );

        // The next checkpoint rewrites the store fully typed.
        ds2.checkpoint().unwrap();
        let mut disk = ds2.into_storage();
        disk.crash();
        let (ds3, _) = DurableSystem::open(disk, 20).unwrap();
        assert!(ds3.audit().verify());
        assert_eq!(
            ds3.read(&bob, &owner, "rec-shared", "note").unwrap(),
            b"ward note"
        );
    }

    #[test]
    fn unknown_legacy_record_tag_fails_typed_with_offset() {
        use mabe_store::GroupWal;

        let (wal, _, _, _) = GroupWal::open(SimDisk::unfaulted()).unwrap();
        let seq = wal.stage(&[99u8, 1, 2, 3]);
        wal.commit(seq).unwrap();
        let failure = DurableSystem::open(wal.into_store(), 1).unwrap_err();
        match failure.error {
            OpenError::Record {
                index: 0,
                error: crate::records::RecordError::UnknownTag { tag: 99, offset: 0 },
            } => {}
            other => panic!("unexpected error: {other}"),
        }
    }

    /// The typed keyspace is a lossless projection: populating tables
    /// from a fully-exercised system and hydrating them back yields a
    /// byte-identical legacy snapshot encoding.
    #[test]
    fn populate_hydrate_roundtrip_is_byte_identical() {
        let (ds, _, _, _, _) = full_world(open_fresh(42));
        let hydrated = tables::hydrate(&tables::populate(ds.system()), 42).unwrap();
        assert_eq!(
            encode_system(ds.system()),
            encode_system(&hydrated),
            "populate → hydrate loses or reorders state"
        );
        assert!(hydrated.audit.lock().verify());

        // Same through the lazy plane: queue and update-key archive.
        let (ds, _, _, _) = lazy_world(open_fresh(43));
        let hydrated = tables::hydrate(&tables::populate(ds.system()), 43).unwrap();
        assert_eq!(encode_system(ds.system()), encode_system(&hydrated));
    }
}
