//! Directory layer: identities and registries.
//!
//! The directory owns everything that *names* an entity — the CA, the
//! owner registry, and the user registry (public keys, secret-key
//! slots, grants, offline flags, queued update keys). It hands the
//! control plane and the data plane shared, lock-guarded views so
//! every system operation works from `&CloudSystem`.
//!
//! Lock ordering (see DESIGN.md §12): an authority-shard lock may be
//! held while taking `users` or `owners`; the reverse order is
//! forbidden. `ca` and `rng` are leaves.

use std::collections::{BTreeMap, BTreeSet};

use parking_lot::{Mutex, RwLock};

use mabe_core::{
    AttributeAuthority, CertificateAuthority, DataOwner, Error, OwnerId, Uid, UpdateKey,
    UserPublicKey, UserSecretKey,
};
use mabe_policy::{Attribute, AuthorityId};
use mabe_store::{key_str, Keyspace};

use crate::audit::AuditEvent;
use crate::system::{CloudError, CloudSystem};
use crate::tables::GrantsByAuthority;
use crate::wire::Endpoint;

/// Per-user runtime state: the CA-issued public key plus every secret
/// key, slotted by `(owner, authority)`.
#[derive(Debug)]
pub(crate) struct UserState {
    pub(crate) pk: UserPublicKey,
    pub(crate) keys: BTreeMap<(OwnerId, AuthorityId), UserSecretKey>,
}

/// The user registry: one lock covers keys, grants, presence, and the
/// offline update-key queues, because revocation key delivery reads
/// and writes them together.
#[derive(Debug, Default)]
pub(crate) struct UserDirectory {
    pub(crate) users: BTreeMap<Uid, UserState>,
    pub(crate) grants: BTreeMap<Uid, BTreeSet<Attribute>>,
    pub(crate) offline: BTreeSet<Uid>,
    pub(crate) pending_updates: BTreeMap<Uid, Vec<(OwnerId, UpdateKey)>>,
    /// Live-only inverted index of `grants`: one
    /// [`crate::tables::GrantsByAuthority`] row per `(authority, uid,
    /// attribute)`, so revocation key delivery finds an authority's
    /// holders with a prefix range scan instead of walking every user.
    /// Never journaled or checkpointed; rebuilt from `grants` on
    /// restore.
    pub(crate) grant_index: Keyspace,
}

impl UserDirectory {
    /// Adds one `(authority, uid, attribute)` row to the inverted grant
    /// index.
    pub(crate) fn index_grant(&self, uid: &Uid, attr: &Attribute) {
        self.grant_index.put::<GrantsByAuthority>(
            &(
                attr.authority().as_str().to_owned(),
                uid.as_str().to_owned(),
                attr.to_string(),
            ),
            &Vec::new(),
        );
    }

    /// Removes one `(authority, uid, attribute)` row from the inverted
    /// grant index.
    pub(crate) fn unindex_grant(&self, uid: &Uid, attr: &Attribute) {
        self.grant_index.delete::<GrantsByAuthority>(&(
            attr.authority().as_str().to_owned(),
            uid.as_str().to_owned(),
            attr.to_string(),
        ));
    }

    /// Every user currently granted at least one attribute at `aid`
    /// (distinct, in uid order): the `(authority)` prefix of the
    /// inverted grant index.
    pub(crate) fn holders_of_authority(&self, aid: &AuthorityId) -> Vec<Uid> {
        let mut prefix = Vec::new();
        key_str(&mut prefix, aid.as_str());
        let rows = self
            .grant_index
            .range::<GrantsByAuthority>(&prefix)
            .expect("grant index rows are self-encoded");
        let mut out: Vec<Uid> = Vec::new();
        for ((_, uid, _), _) in rows {
            let uid = Uid::new(uid);
            if out.last() != Some(&uid) {
                out.push(uid);
            }
        }
        out
    }

    /// Rebuilds the inverted grant index from `grants` — the restore
    /// path (the index is derived state and never persisted).
    pub(crate) fn rebuild_grant_index(&self) {
        self.grant_index.clear();
        for (uid, attrs) in &self.grants {
            for attr in attrs {
                self.index_grant(uid, attr);
            }
        }
    }
}

/// Identity and registry state (CA, owners, users).
#[derive(Debug)]
pub(crate) struct Directory {
    pub(crate) ca: Mutex<CertificateAuthority>,
    pub(crate) owners: RwLock<BTreeMap<OwnerId, DataOwner>>,
    pub(crate) users: RwLock<UserDirectory>,
}

impl Directory {
    pub(crate) fn new() -> Self {
        Directory {
            ca: Mutex::new(CertificateAuthority::new()),
            owners: RwLock::new(BTreeMap::new()),
            users: RwLock::new(UserDirectory::default()),
        }
    }
}

impl CloudSystem {
    /// Registers an attribute authority managing `attribute_names`, and
    /// introduces it to every existing owner (SK_o registration plus
    /// public-key download, both byte-accounted).
    ///
    /// # Errors
    ///
    /// Fails if the AID is taken.
    pub fn add_authority(
        &self,
        name: &str,
        attribute_names: &[&str],
    ) -> Result<AuthorityId, CloudError> {
        let aid = self.directory.ca.lock().register_authority(name)?;
        let aa = AttributeAuthority::new(aid.clone(), attribute_names, &mut *self.rng.lock());
        self.install_authority(aa)
    }

    /// Introduces a (freshly set-up or journal-restored) authority to the
    /// system: every existing owner not already registered with it
    /// exchanges `SK_o`, every owner re-learns its public keys, and the
    /// registration is audited. Factored out of [`Self::add_authority`]
    /// so durable replay installs the serialized post-setup authority
    /// through the exact same path (regenerating identical wire
    /// accounting and audit entries).
    pub(crate) fn install_authority(
        &self,
        mut aa: AttributeAuthority,
    ) -> Result<AuthorityId, CloudError> {
        let aid = aa.aid().clone();
        {
            let mut owners = self.directory.owners.write();
            for owner in owners.values_mut() {
                if !aa.has_owner(owner.id()) {
                    let sk = owner.owner_secret_key();
                    self.wire.send(
                        Endpoint::Owner(owner.id().clone()),
                        Endpoint::Authority(aid.clone()),
                        "owner secret key",
                        sk.wire_size(),
                    );
                    aa.register_owner(sk)?;
                }
                let pks = aa.public_keys();
                self.wire.send(
                    Endpoint::Authority(aid.clone()),
                    Endpoint::Owner(owner.id().clone()),
                    "authority public keys",
                    pks.wire_size(),
                );
                owner.learn_authority_keys(pks);
            }
        }
        self.control.insert_authority(aa);
        self.audit.lock().record(AuditEvent::AuthorityAdded {
            aid: aid.to_string(),
        });
        Ok(aid)
    }

    /// Registers a data owner, exchanging `SK_o` / public keys with every
    /// existing authority and issuing this owner's user secret keys to
    /// every already-granted user.
    ///
    /// # Errors
    ///
    /// Fails if the owner id collides.
    pub fn add_owner(&self, name: &str) -> Result<OwnerId, CloudError> {
        let id = OwnerId::new(name);
        if self.directory.owners.read().contains_key(&id) {
            return Err(CloudError::Core(Error::AlreadyRegistered(name.to_owned())));
        }
        let owner = DataOwner::new(id.clone(), &mut *self.rng.lock());
        self.install_owner(owner)
    }

    /// Installs a (fresh or journal-restored) owner: exchanges keys with
    /// every authority it is not yet registered with, issues this owner's
    /// user secret keys to every already-granted user, and audits the
    /// registration. The replay twin of [`Self::install_authority`].
    pub(crate) fn install_owner(&self, mut owner: DataOwner) -> Result<OwnerId, CloudError> {
        let id = owner.id().clone();
        if self.directory.owners.read().contains_key(&id) {
            return Err(CloudError::Core(Error::AlreadyRegistered(id.to_string())));
        }
        let shards = self.control.shards.read();
        for (aid, shard) in shards.iter() {
            let mut st = shard.state.lock();
            if !st.authority.has_owner(&id) {
                let sk = owner.owner_secret_key();
                self.wire.send(
                    Endpoint::Owner(id.clone()),
                    Endpoint::Authority(aid.clone()),
                    "owner secret key",
                    sk.wire_size(),
                );
                st.authority.register_owner(sk)?;
            }
            let pks = st.authority.public_keys();
            self.wire.send(
                Endpoint::Authority(aid.clone()),
                Endpoint::Owner(id.clone()),
                "authority public keys",
                pks.wire_size(),
            );
            owner.learn_authority_keys(pks);
        }
        // Existing users need keys scoped to the new owner. Keygen runs
        // per shard; the issued keys are slotted into the user registry
        // afterwards (shard lock before users lock, never the reverse).
        let granted: Vec<(Uid, Vec<AuthorityId>)> = self
            .directory
            .users
            .read()
            .grants
            .iter()
            .map(|(uid, attrs)| {
                let involved: BTreeSet<AuthorityId> =
                    attrs.iter().map(|a| a.authority().clone()).collect();
                (uid.clone(), involved.into_iter().collect())
            })
            .collect();
        let mut issued: Vec<(Uid, AuthorityId, UserSecretKey)> = Vec::new();
        for (uid, involved) in granted {
            for aid in involved {
                let shard = shards.get(&aid).expect("authority exists");
                let key = shard.state.lock().authority.keygen(&uid, &id)?;
                self.wire.send(
                    Endpoint::Authority(aid.clone()),
                    Endpoint::User(uid.clone()),
                    "user secret key",
                    key.wire_size(),
                );
                issued.push((uid.clone(), aid, key));
            }
        }
        drop(shards);
        {
            let mut users = self.directory.users.write();
            for (uid, aid, key) in issued {
                users
                    .users
                    .get_mut(&uid)
                    .expect("granted user exists")
                    .keys
                    .insert((id.clone(), aid), key);
            }
        }
        self.directory.owners.write().insert(id.clone(), owner);
        self.audit.lock().record(AuditEvent::OwnerAdded {
            owner: id.to_string(),
        });
        Ok(id)
    }

    /// Registers a user with the CA.
    ///
    /// # Errors
    ///
    /// Fails if the UID collides.
    pub fn add_user(&self, name: &str) -> Result<Uid, CloudError> {
        let pk = self
            .directory
            .ca
            .lock()
            .register_user(name, &mut *self.rng.lock())?;
        Ok(self.install_user(pk))
    }

    /// Installs a CA-registered user (fresh or journal-restored): the key
    /// delivery is byte-accounted, runtime state allocated, and the
    /// registration audited.
    pub(crate) fn install_user(&self, pk: UserPublicKey) -> Uid {
        let uid = pk.uid.clone();
        self.wire.send(
            Endpoint::Ca,
            Endpoint::User(uid.clone()),
            "uid + public key",
            pk.wire_size(),
        );
        {
            let mut users = self.directory.users.write();
            users.users.insert(
                uid.clone(),
                UserState {
                    pk,
                    keys: BTreeMap::new(),
                },
            );
            users.grants.insert(uid.clone(), BTreeSet::new());
        }
        self.audit.lock().record(AuditEvent::UserAdded {
            uid: uid.to_string(),
        });
        uid
    }

    /// Marks a user offline: update keys queue up instead of being
    /// applied (the paper sends `UK` to all non-revoked users; offline
    /// ones catch up later via [`Self::sync_user`]).
    pub fn set_offline(&self, uid: &Uid) {
        self.directory.users.write().offline.insert(uid.clone());
    }
}
