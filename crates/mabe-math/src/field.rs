//! Generic Montgomery-form prime fields and the two concrete fields of the
//! pairing group: the 512-bit base field [`Fq`] and the 160-bit scalar
//! field [`Fr`] (the paper's `Z_p`).
//!
//! Elements are stored in Montgomery form (`x · R mod m`, `R = 2^{64L}`)
//! and multiplied with the CIOS algorithm. The implementation favours
//! clarity over constant-time guarantees; this is a research reproduction,
//! not a hardened library (documented in the crate root).

use core::marker::PhantomData;

use rand::RngCore;

use crate::uint::{adc, mac, Uint, MAX_LIMBS};

/// Compile-time computation of `-m^{-1} mod 2^64` (requires odd `m0`).
pub const fn mont_inv64(m0: u64) -> u64 {
    // Newton–Raphson inversion modulo 2^64: five iterations double the
    // number of correct bits from the initial 1-bit approximation.
    let mut x: u64 = 1;
    let mut i = 0;
    while i < 6 {
        x = x.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(x)));
        i += 1;
    }
    x.wrapping_neg()
}

/// Compile-time computation of `2^doublings mod modulus`.
pub const fn pow2_mod<const L: usize>(modulus: &Uint<L>, doublings: usize) -> Uint<L> {
    let mut acc = Uint::<L>::one();
    let mut i = 0;
    while i < doublings {
        acc = acc.mod_double(modulus);
        i += 1;
    }
    acc
}

/// Static description of a prime field; implemented by zero-sized marker
/// types ([`FqParams`], [`FrParams`]).
pub trait FieldParams<const L: usize>:
    Copy + Clone + core::fmt::Debug + PartialEq + Eq + Send + Sync + 'static
{
    /// The field modulus (an odd prime).
    const MODULUS: Uint<L>;
    /// Bit length of the modulus.
    const NUM_BITS: usize;
    /// Short human-readable name used in `Debug` output.
    const NAME: &'static str;
    /// `-MODULUS^{-1} mod 2^64`.
    const INV: u64 = mont_inv64(Self::MODULUS.limbs[0]);
    /// `R mod MODULUS` (the Montgomery form of 1).
    const R1: Uint<L> = pow2_mod(&Self::MODULUS, 64 * L);
    /// `R² mod MODULUS` (conversion constant into Montgomery form).
    const R2: Uint<L> = pow2_mod(&Self::MODULUS, 128 * L);
    /// `MODULUS - 2` (Fermat inversion exponent).
    const MODULUS_MINUS_2: Uint<L> = Self::MODULUS.sbb(Uint::from_u64(2)).0;
}

/// CIOS Montgomery multiplication: returns `a · b · R^{-1} mod m`.
#[allow(clippy::needless_range_loop)] // limb indices track the CIOS schedule
fn mont_mul<const L: usize>(a: &Uint<L>, b: &Uint<L>, m: &Uint<L>, inv: u64) -> Uint<L> {
    debug_assert!(L <= MAX_LIMBS);
    let mut t = [0u64; MAX_LIMBS + 2];
    for i in 0..L {
        // t += a * b[i]
        let mut carry = 0u64;
        for j in 0..L {
            let (lo, hi) = mac(t[j], a.limbs[j], b.limbs[i], carry);
            t[j] = lo;
            carry = hi;
        }
        let (lo, hi) = adc(t[L], carry, 0);
        t[L] = lo;
        t[L + 1] += hi;

        // Reduce one limb: t += k * m, then shift right by one limb.
        let k = t[0].wrapping_mul(inv);
        let (_, mut carry) = mac(t[0], k, m.limbs[0], 0);
        for j in 1..L {
            let (lo, hi) = mac(t[j], k, m.limbs[j], carry);
            t[j - 1] = lo;
            carry = hi;
        }
        let (lo, hi) = adc(t[L], carry, 0);
        t[L - 1] = lo;
        t[L] = t[L + 1] + hi;
        t[L + 1] = 0;
    }
    let mut out = Uint::<L>::ZERO;
    out.limbs.copy_from_slice(&t[..L]);
    let (red, borrow) = out.sbb(*m);
    if t[L] != 0 || borrow == 0 {
        red
    } else {
        out
    }
}

/// Montgomery reduction of a double-width product (SOS method):
/// returns `t / R mod m` for `t < m · R`.
fn mont_reduce_wide<const L: usize>(t: &mut [u64], m: &Uint<L>, inv: u64) -> Uint<L> {
    debug_assert!(t.len() >= 2 * L);
    let mut carry2 = 0u64;
    for i in 0..L {
        let k = t[i].wrapping_mul(inv);
        let mut carry = 0u64;
        for j in 0..L {
            let (lo, hi) = mac(t[i + j], k, m.limbs[j], carry);
            t[i + j] = lo;
            carry = hi;
        }
        let (lo, hi) = adc(t[i + L], carry2, carry);
        t[i + L] = lo;
        carry2 = hi;
    }
    let mut out = Uint::<L>::ZERO;
    out.limbs.copy_from_slice(&t[L..2 * L]);
    let (red, borrow) = out.sbb(*m);
    if carry2 != 0 || borrow == 0 {
        red
    } else {
        out
    }
}

/// Double-width squaring (cross products doubled + diagonal), feeding
/// [`mont_reduce_wide`]. ~25% cheaper than a generic multiplication.
fn mont_square<const L: usize>(a: &Uint<L>, m: &Uint<L>, inv: u64) -> Uint<L> {
    debug_assert!(L <= MAX_LIMBS);
    let mut t = [0u64; 2 * MAX_LIMBS];
    // Off-diagonal products a_i · a_j for i < j.
    for i in 0..L.saturating_sub(1) {
        let mut carry = 0u64;
        for j in i + 1..L {
            let (lo, hi) = mac(t[i + j], a.limbs[i], a.limbs[j], carry);
            t[i + j] = lo;
            carry = hi;
        }
        t[i + L] = carry;
    }
    // Double them (shift left one bit across 2L limbs).
    let mut prev = 0u64;
    for limb in t.iter_mut().take(2 * L) {
        let new_prev = *limb >> 63;
        *limb = (*limb << 1) | prev;
        prev = new_prev;
    }
    // Add the diagonal a_i².
    let mut carry = 0u64;
    for i in 0..L {
        let (lo, hi) = mac(t[2 * i], a.limbs[i], a.limbs[i], carry);
        t[2 * i] = lo;
        let (lo2, hi2) = adc(t[2 * i + 1], hi, 0);
        t[2 * i + 1] = lo2;
        carry = hi2;
    }
    debug_assert_eq!(carry, 0, "square of reduced value fits 2L limbs");
    mont_reduce_wide(&mut t[..2 * L], m, inv)
}

/// An element of the prime field described by `P`, in Montgomery form.
pub struct FieldElement<P: FieldParams<L>, const L: usize> {
    repr: Uint<L>,
    _params: PhantomData<P>,
}

impl<P: FieldParams<L>, const L: usize> Clone for FieldElement<P, L> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<P: FieldParams<L>, const L: usize> Copy for FieldElement<P, L> {}
impl<P: FieldParams<L>, const L: usize> PartialEq for FieldElement<P, L> {
    fn eq(&self, other: &Self) -> bool {
        self.repr == other.repr
    }
}
impl<P: FieldParams<L>, const L: usize> Eq for FieldElement<P, L> {}
impl<P: FieldParams<L>, const L: usize> core::hash::Hash for FieldElement<P, L> {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.repr.hash(state);
    }
}
impl<P: FieldParams<L>, const L: usize> Default for FieldElement<P, L> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<P: FieldParams<L>, const L: usize> core::fmt::Debug for FieldElement<P, L> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}({:?})", P::NAME, self.to_uint())
    }
}

impl<P: FieldParams<L>, const L: usize> core::fmt::Display for FieldElement<P, L> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::Debug::fmt(self, f)
    }
}

impl<P: FieldParams<L>, const L: usize> FieldElement<P, L> {
    /// The additive identity.
    pub fn zero() -> Self {
        FieldElement {
            repr: Uint::ZERO,
            _params: PhantomData,
        }
    }

    /// The multiplicative identity.
    pub fn one() -> Self {
        FieldElement {
            repr: P::R1,
            _params: PhantomData,
        }
    }

    /// Embeds a small integer.
    pub fn from_u64(v: u64) -> Self {
        Self::from_uint(&Uint::from_u64(v))
    }

    /// Converts a canonical integer (`< MODULUS`) into the field.
    ///
    /// # Panics
    ///
    /// Panics if `v >= MODULUS`.
    pub fn from_uint(v: &Uint<L>) -> Self {
        assert!(v.lt(&P::MODULUS), "value out of field range");
        FieldElement {
            repr: mont_mul(v, &P::R2, &P::MODULUS, P::INV),
            _params: PhantomData,
        }
    }

    /// Returns the canonical (non-Montgomery) integer representation.
    pub fn to_uint(&self) -> Uint<L> {
        mont_mul(&self.repr, &Uint::one(), &P::MODULUS, P::INV)
    }

    /// `true` for the additive identity.
    pub fn is_zero(&self) -> bool {
        self.repr.is_zero()
    }

    /// Field addition.
    pub fn add(&self, rhs: &Self) -> Self {
        FieldElement {
            repr: self.repr.mod_add(rhs.repr, &P::MODULUS),
            _params: PhantomData,
        }
    }

    /// Field subtraction.
    pub fn sub(&self, rhs: &Self) -> Self {
        let (diff, borrow) = self.repr.sbb(rhs.repr);
        let repr = if borrow == 1 {
            diff.adc(P::MODULUS).0
        } else {
            diff
        };
        FieldElement {
            repr,
            _params: PhantomData,
        }
    }

    /// Additive inverse.
    pub fn neg(&self) -> Self {
        if self.is_zero() {
            *self
        } else {
            let (repr, _) = P::MODULUS.sbb(self.repr);
            FieldElement {
                repr,
                _params: PhantomData,
            }
        }
    }

    /// Field multiplication.
    pub fn mul(&self, rhs: &Self) -> Self {
        FieldElement {
            repr: mont_mul(&self.repr, &rhs.repr, &P::MODULUS, P::INV),
            _params: PhantomData,
        }
    }

    /// Squaring (dedicated SOS routine, faster than `mul(self, self)`).
    pub fn square(&self) -> Self {
        FieldElement {
            repr: mont_square(&self.repr, &P::MODULUS, P::INV),
            _params: PhantomData,
        }
    }

    /// Doubling.
    pub fn double(&self) -> Self {
        self.add(self)
    }

    /// Variable-time exponentiation by a little-endian limb slice.
    pub fn pow_vartime(&self, exp: &[u64]) -> Self {
        let mut res = Self::one();
        let mut started = false;
        for i in (0..exp.len() * 64).rev() {
            if started {
                res = res.square();
            }
            if (exp[i / 64] >> (i % 64)) & 1 == 1 {
                res = res.mul(self);
                started = true;
            }
        }
        res
    }

    /// Multiplicative inverse via Fermat's little theorem.
    ///
    /// Returns `None` for zero.
    pub fn invert(&self) -> Option<Self> {
        if self.is_zero() {
            None
        } else {
            Some(self.pow_vartime(&P::MODULUS_MINUS_2.limbs))
        }
    }

    /// Uniformly random field element.
    pub fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let top_mask = if P::NUM_BITS % 64 == 0 {
            u64::MAX
        } else {
            (1u64 << (P::NUM_BITS % 64)) - 1
        };
        loop {
            let mut limbs = [0u64; L];
            for limb in limbs.iter_mut() {
                *limb = rng.next_u64();
            }
            let top_limb = P::NUM_BITS.div_ceil(64) - 1;
            limbs[top_limb] &= top_mask;
            for limb in limbs.iter_mut().skip(top_limb + 1) {
                *limb = 0;
            }
            let candidate = Uint { limbs };
            if candidate.lt(&P::MODULUS) {
                return Self::from_uint(&candidate);
            }
        }
    }

    /// Reduces an arbitrary-length big-endian byte string into the field
    /// (Horner's rule, modular).
    ///
    /// With input at least `NUM_BITS + 128` bits long the reduction bias is
    /// negligible; the workspace's random oracles feed 512 bits.
    pub fn from_be_bytes_reduce(bytes: &[u8]) -> Self {
        let mut acc = Uint::<L>::ZERO;
        for &b in bytes {
            // acc = acc * 256 + b (mod MODULUS)
            for _ in 0..8 {
                acc = acc.mod_double(&P::MODULUS);
            }
            acc = acc.mod_add(Uint::from_u64(b as u64), &P::MODULUS);
        }
        Self::from_uint(&acc)
    }

    /// Canonical big-endian encoding (`8 · L` bytes).
    pub fn to_canonical_bytes(&self) -> Vec<u8> {
        self.to_uint().to_be_bytes()
    }

    /// Parses a canonical big-endian encoding; `None` if out of range or
    /// wrong length.
    pub fn from_canonical_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 8 * L {
            return None;
        }
        let v = Uint::<L>::from_be_bytes(bytes);
        if v.lt(&P::MODULUS) {
            Some(Self::from_uint(&v))
        } else {
            None
        }
    }

    /// `true` if the canonical representation is odd (used as the
    /// compressed-point sign bit).
    pub fn is_odd(&self) -> bool {
        self.to_uint().is_odd()
    }
}

macro_rules! impl_field_ops {
    ($($t:tt)*) => {
        impl<P: FieldParams<L>, const L: usize> core::ops::Add for FieldElement<P, L> {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                FieldElement::add(&self, &rhs)
            }
        }
        impl<P: FieldParams<L>, const L: usize> core::ops::Sub for FieldElement<P, L> {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                FieldElement::sub(&self, &rhs)
            }
        }
        impl<P: FieldParams<L>, const L: usize> core::ops::Mul for FieldElement<P, L> {
            type Output = Self;
            fn mul(self, rhs: Self) -> Self {
                FieldElement::mul(&self, &rhs)
            }
        }
        impl<P: FieldParams<L>, const L: usize> core::ops::Neg for FieldElement<P, L> {
            type Output = Self;
            fn neg(self) -> Self {
                FieldElement::neg(&self)
            }
        }
        impl<P: FieldParams<L>, const L: usize> core::ops::AddAssign for FieldElement<P, L> {
            fn add_assign(&mut self, rhs: Self) {
                *self = FieldElement::add(self, &rhs);
            }
        }
        impl<P: FieldParams<L>, const L: usize> core::ops::SubAssign for FieldElement<P, L> {
            fn sub_assign(&mut self, rhs: Self) {
                *self = FieldElement::sub(self, &rhs);
            }
        }
        impl<P: FieldParams<L>, const L: usize> core::ops::MulAssign for FieldElement<P, L> {
            fn mul_assign(&mut self, rhs: Self) {
                *self = FieldElement::mul(self, &rhs);
            }
        }
    };
}
impl_field_ops!();

/// Marker for the 512-bit base field `F_q`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FqParams;

impl FieldParams<8> for FqParams {
    const MODULUS: Uint<8> = crate::params::Q;
    const NUM_BITS: usize = 512;
    const NAME: &'static str = "Fq";
}

/// Marker for the 160-bit scalar field `F_r` (the paper's `Z_p`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrParams;

impl FieldParams<3> for FrParams {
    const MODULUS: Uint<3> = crate::params::R;
    const NUM_BITS: usize = 160;
    const NAME: &'static str = "Fr";
}

/// The base field of the curve (512-bit).
pub type Fq = FieldElement<FqParams, 8>;

/// The scalar field — exponents of `G` and `G_T` (160-bit).
pub type Fr = FieldElement<FrParams, 3>;

impl Fq {
    /// `(q + 1) / 4`, the square-root exponent for `q ≡ 3 (mod 4)`.
    const SQRT_EXP: Uint<8> = {
        let (sum, carry) = crate::params::Q.adc(Uint::one());
        assert!(carry == 0);
        // Divide by 4: shift right two bits across limbs.
        let mut out = [0u64; 8];
        let mut i = 0;
        while i < 8 {
            let hi = if i + 1 < 8 { sum.limbs[i + 1] } else { 0 };
            out[i] = (sum.limbs[i] >> 2) | (hi << 62);
            i += 1;
        }
        Uint { limbs: out }
    };

    /// Square root for `q ≡ 3 (mod 4)`: `x^{(q+1)/4}`.
    ///
    /// Returns `None` if `self` is a quadratic non-residue.
    pub fn sqrt(&self) -> Option<Self> {
        let candidate = self.pow_vartime(&Self::SQRT_EXP.limbs);
        if candidate.square() == *self {
            Some(candidate)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xfeed_beef)
    }

    #[test]
    fn montgomery_constants_consistency() {
        // INV * MODULUS ≡ -1 (mod 2^64)
        assert_eq!(
            FqParams::INV.wrapping_mul(crate::params::Q.limbs[0]),
            u64::MAX
        );
        assert_eq!(
            FrParams::INV.wrapping_mul(crate::params::R.limbs[0]),
            u64::MAX
        );
    }

    #[test]
    fn one_times_one() {
        assert_eq!(Fq::one().mul(&Fq::one()), Fq::one());
        assert_eq!(Fr::one().mul(&Fr::one()), Fr::one());
    }

    #[test]
    fn small_integer_arithmetic() {
        let a = Fr::from_u64(12345);
        let b = Fr::from_u64(67890);
        assert_eq!(a.add(&b), Fr::from_u64(12345 + 67890));
        assert_eq!(b.sub(&a), Fr::from_u64(67890 - 12345));
        assert_eq!(a.mul(&b), Fr::from_u64(12345 * 67890));
        assert_eq!(a.square(), Fr::from_u64(12345 * 12345));
        assert_eq!(a.double(), Fr::from_u64(24690));
    }

    #[test]
    fn dedicated_square_matches_mul() {
        let mut r = rng();
        for _ in 0..50 {
            let a = Fq::random(&mut r);
            assert_eq!(a.square(), a.mul(&a));
            let b = Fr::random(&mut r);
            assert_eq!(b.square(), b.mul(&b));
        }
        assert_eq!(Fq::zero().square(), Fq::zero());
        assert_eq!(Fq::one().square(), Fq::one());
        // Values with extreme limbs (q - 1: squares to 1).
        let minus_one = Fq::one().neg();
        assert_eq!(minus_one.square(), Fq::one());
        let minus_one_r = Fr::one().neg();
        assert_eq!(minus_one_r.square(), Fr::one());
    }

    #[test]
    fn to_uint_roundtrip() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fq::random(&mut r);
            assert_eq!(Fq::from_uint(&a.to_uint()), a);
            let b = Fr::random(&mut r);
            assert_eq!(Fr::from_uint(&b.to_uint()), b);
        }
    }

    #[test]
    fn additive_inverse() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fq::random(&mut r);
            assert!(a.add(&a.neg()).is_zero());
        }
        assert!(Fq::zero().neg().is_zero());
    }

    #[test]
    fn multiplicative_inverse() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fq::random(&mut r);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a.mul(&a.invert().unwrap()), Fq::one());
            let b = Fr::random(&mut r);
            assert_eq!(b.mul(&b.invert().unwrap()), Fr::one());
        }
        assert!(Fq::zero().invert().is_none());
        assert!(Fr::zero().invert().is_none());
    }

    #[test]
    fn subtraction_wraps_correctly() {
        let a = Fr::from_u64(5);
        let b = Fr::from_u64(7);
        let d = a.sub(&b); // -2 mod r
        assert_eq!(d.add(&Fr::from_u64(2)), Fr::zero());
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = Fr::from_u64(3);
        let p5 = a.pow_vartime(&[5]);
        assert_eq!(p5, Fr::from_u64(243));
        assert_eq!(a.pow_vartime(&[0]), Fr::one());
        assert_eq!(a.pow_vartime(&[1]), a);
    }

    #[test]
    fn fermat_exponent_is_modulus_minus_two() {
        let a = Fr::from_u64(2);
        // a^(r-1) == 1 (Fermat)
        let exp = FrParams::MODULUS.sbb(Uint::from_u64(1)).0;
        assert_eq!(a.pow_vartime(&exp.limbs), Fr::one());
    }

    #[test]
    fn sqrt_of_squares() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fq::random(&mut r);
            let sq = a.square();
            let root = sq.sqrt().expect("square must have a root");
            assert!(root == a || root == a.neg());
        }
    }

    #[test]
    fn sqrt_rejects_non_residue() {
        // -1 is a non-residue when q ≡ 3 (mod 4).
        let minus_one = Fq::one().neg();
        assert!(minus_one.sqrt().is_none());
    }

    #[test]
    fn canonical_bytes_roundtrip() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fq::random(&mut r);
            let bytes = a.to_canonical_bytes();
            assert_eq!(bytes.len(), 64);
            assert_eq!(Fq::from_canonical_bytes(&bytes), Some(a));
        }
        // Out-of-range encodings rejected.
        let oob = crate::params::Q.to_be_bytes();
        assert!(Fq::from_canonical_bytes(&oob).is_none());
        assert!(Fq::from_canonical_bytes(&[0u8; 63]).is_none());
    }

    #[test]
    fn byte_reduction_matches_field() {
        // 2^512 mod q equals R1 for Fq by definition.
        let mut bytes = vec![0u8; 65];
        bytes[0] = 1; // 2^512 big-endian
        let reduced = Fq::from_be_bytes_reduce(&bytes);
        let expect = Fq::from_uint(&FqParams::R1);
        assert_eq!(reduced, expect);
    }

    #[test]
    fn operator_overloads() {
        let a = Fr::from_u64(10);
        let b = Fr::from_u64(4);
        assert_eq!(a + b, Fr::from_u64(14));
        assert_eq!(a - b, Fr::from_u64(6));
        assert_eq!(a * b, Fr::from_u64(40));
        assert_eq!(-a + a, Fr::zero());
        let mut c = a;
        c += b;
        c -= Fr::from_u64(2);
        c *= Fr::from_u64(2);
        assert_eq!(c, Fr::from_u64(24));
    }

    #[test]
    fn random_is_in_range_and_varied() {
        let mut r = rng();
        let a = Fr::random(&mut r);
        let b = Fr::random(&mut r);
        assert_ne!(a, b);
        assert!(a.to_uint().lt(&FrParams::MODULUS));
    }

    #[test]
    fn debug_display_nonempty() {
        let a = Fr::from_u64(7);
        assert!(format!("{a:?}").starts_with("Fr("));
        assert!(!format!("{a}").is_empty());
    }
}
