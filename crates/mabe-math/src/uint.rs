//! Fixed-width little-endian big integers.
//!
//! [`Uint<L>`] is the raw-integer layer underneath the Montgomery prime
//! fields in [`crate::field`]. Limbs are `u64`, least-significant first.
//! Widths used in this workspace: `Uint<8>` (512-bit base field),
//! `Uint<3>` (160-bit scalar field) and `Uint<6>` (the 353-bit cofactor).

/// Maximum limb count supported by the scratch-buffer based routines.
pub const MAX_LIMBS: usize = 8;

/// A fixed-width unsigned integer with `L` 64-bit little-endian limbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Uint<const L: usize> {
    /// Little-endian limbs.
    pub limbs: [u64; L],
}

#[inline(always)]
pub(crate) const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = (a as u128) + (b as u128) + (carry as u128);
    (t as u64, (t >> 64) as u64)
}

#[inline(always)]
pub(crate) const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128)
        .wrapping_sub(b as u128)
        .wrapping_sub(borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// `a + b * c + carry`, returning `(low, high)`.
#[inline(always)]
pub(crate) const fn mac(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = (a as u128) + (b as u128) * (c as u128) + (carry as u128);
    (t as u64, (t >> 64) as u64)
}

impl<const L: usize> Uint<L> {
    /// The zero value.
    pub const ZERO: Self = Uint { limbs: [0u64; L] };

    /// Constructs from a single `u64`.
    pub const fn from_u64(v: u64) -> Self {
        let mut limbs = [0u64; L];
        limbs[0] = v;
        Uint { limbs }
    }

    /// The one value.
    pub const fn one() -> Self {
        Self::from_u64(1)
    }

    /// Parses a decimal string at compile time.
    ///
    /// # Panics
    ///
    /// Panics on non-digit characters or overflow of the `L`-limb width.
    pub const fn from_decimal(s: &str) -> Self {
        let bytes = s.as_bytes();
        let mut out = Self::ZERO;
        let mut i = 0;
        while i < bytes.len() {
            let d = bytes[i];
            assert!(d >= b'0' && d <= b'9', "invalid decimal digit");
            out = out.mul_small(10);
            out = out.add_small((d - b'0') as u64);
            i += 1;
        }
        out
    }

    /// Multiplies by a small constant, panicking on overflow (const-safe).
    pub const fn mul_small(self, m: u64) -> Self {
        let mut limbs = [0u64; L];
        let mut carry = 0u64;
        let mut i = 0;
        while i < L {
            let (lo, hi) = mac(carry, self.limbs[i], m, 0);
            limbs[i] = lo;
            carry = hi;
            i += 1;
        }
        assert!(carry == 0, "mul_small overflow");
        Uint { limbs }
    }

    /// Adds a small constant, panicking on overflow (const-safe).
    pub const fn add_small(self, v: u64) -> Self {
        let mut limbs = self.limbs;
        let mut carry = v;
        let mut i = 0;
        while i < L {
            let (lo, c) = adc(limbs[i], carry, 0);
            limbs[i] = lo;
            carry = c;
            if carry == 0 {
                break;
            }
            i += 1;
        }
        assert!(carry == 0, "add_small overflow");
        Uint { limbs }
    }

    /// Wrapping addition; returns `(sum, carry)`.
    pub const fn adc(self, rhs: Self) -> (Self, u64) {
        let mut limbs = [0u64; L];
        let mut carry = 0u64;
        let mut i = 0;
        while i < L {
            let (lo, c) = adc(self.limbs[i], rhs.limbs[i], carry);
            limbs[i] = lo;
            carry = c;
            i += 1;
        }
        (Uint { limbs }, carry)
    }

    /// Wrapping subtraction; returns `(difference, borrow)`.
    pub const fn sbb(self, rhs: Self) -> (Self, u64) {
        let mut limbs = [0u64; L];
        let mut borrow = 0u64;
        let mut i = 0;
        while i < L {
            let (lo, b) = sbb(self.limbs[i], rhs.limbs[i], borrow);
            limbs[i] = lo;
            borrow = b;
            i += 1;
        }
        (Uint { limbs }, borrow)
    }

    /// `true` if `self < rhs`.
    pub const fn lt(&self, rhs: &Self) -> bool {
        let mut i = L;
        while i > 0 {
            i -= 1;
            if self.limbs[i] < rhs.limbs[i] {
                return true;
            }
            if self.limbs[i] > rhs.limbs[i] {
                return false;
            }
        }
        false
    }

    /// `true` if all limbs are zero.
    pub const fn is_zero(&self) -> bool {
        let mut i = 0;
        while i < L {
            if self.limbs[i] != 0 {
                return false;
            }
            i += 1;
        }
        true
    }

    /// `true` if the value is odd.
    pub const fn is_odd(&self) -> bool {
        self.limbs[0] & 1 == 1
    }

    /// Modular doubling: `2 * self mod modulus`. Requires `self < modulus`.
    pub const fn mod_double(self, modulus: &Self) -> Self {
        let (dbl, carry) = self.adc(self);
        let (red, borrow) = dbl.sbb(*modulus);
        // Keep the reduced value if doubling overflowed or dbl >= modulus.
        if carry == 1 || borrow == 0 {
            red
        } else {
            dbl
        }
    }

    /// Modular addition for values `< modulus`.
    pub const fn mod_add(self, rhs: Self, modulus: &Self) -> Self {
        let (sum, carry) = self.adc(rhs);
        let (red, borrow) = sum.sbb(*modulus);
        if carry == 1 || borrow == 0 {
            red
        } else {
            sum
        }
    }

    /// Returns bit `i` (0 = least significant).
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        if i >= 64 * L {
            return false;
        }
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        for i in (0..L).rev() {
            if self.limbs[i] != 0 {
                return 64 * i + (64 - self.limbs[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Logical right shift by one bit.
    #[allow(clippy::needless_range_loop)] // each limb borrows a bit from limb i+1
    pub fn shr1(&self) -> Self {
        let mut limbs = [0u64; L];
        for i in 0..L {
            limbs[i] = self.limbs[i] >> 1;
            if i + 1 < L {
                limbs[i] |= self.limbs[i + 1] << 63;
            }
        }
        Uint { limbs }
    }

    /// Big-endian byte encoding (`8 * L` bytes).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * L);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Parses a big-endian byte encoding of exactly `8 * L` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() != 8 * L`.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), 8 * L, "wrong byte length for Uint");
        let mut limbs = [0u64; L];
        for (i, chunk) in bytes.rchunks(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            limbs[i] = u64::from_be_bytes(b);
        }
        Uint { limbs }
    }

    /// Interprets up to the low `8 * L` bytes of a big-endian slice,
    /// zero-extending short inputs and ignoring the most-significant excess.
    pub fn from_be_bytes_lossy(bytes: &[u8]) -> Self {
        let take = bytes.len().min(8 * L);
        let slice = &bytes[bytes.len() - take..];
        let mut limbs = [0u64; L];
        for (i, chunk) in slice.rchunks(8).enumerate() {
            let mut b = [0u8; 8];
            b[8 - chunk.len()..].copy_from_slice(chunk);
            limbs[i] = u64::from_be_bytes(b);
        }
        Uint { limbs }
    }
}

impl<const L: usize> Ord for Uint<L> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        for i in (0..L).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                core::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        core::cmp::Ordering::Equal
    }
}

impl<const L: usize> PartialOrd for Uint<L> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<const L: usize> Default for Uint<L> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const L: usize> core::fmt::Debug for Uint<L> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "0x")?;
        for limb in self.limbs.iter().rev() {
            write!(f, "{limb:016x}")?;
        }
        Ok(())
    }
}

impl<const L: usize> core::fmt::Display for Uint<L> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::Debug::fmt(self, f)
    }
}

/// Schoolbook multiplication of two limb slices into `out`.
///
/// `out` must have length `>= a.len() + b.len()` and is fully overwritten.
pub fn mul_limbs(a: &[u64], b: &[u64], out: &mut [u64]) {
    assert!(out.len() >= a.len() + b.len(), "output too small");
    for o in out.iter_mut() {
        *o = 0;
    }
    for (i, &ai) in a.iter().enumerate() {
        let mut carry = 0u64;
        for (j, &bj) in b.iter().enumerate() {
            let (lo, hi) = mac(out[i + j], ai, bj, carry);
            out[i + j] = lo;
            carry = hi;
        }
        out[i + b.len()] = carry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_parse_small() {
        let x: Uint<2> = Uint::from_decimal("1234567890123456789");
        assert_eq!(x.limbs[0], 1234567890123456789);
        assert_eq!(x.limbs[1], 0);
    }

    #[test]
    fn decimal_parse_multi_limb() {
        // 2^64 = 18446744073709551616
        let x: Uint<2> = Uint::from_decimal("18446744073709551616");
        assert_eq!(x.limbs, [0, 1]);
        // 2^64 + 5
        let y: Uint<2> = Uint::from_decimal("18446744073709551621");
        assert_eq!(y.limbs, [5, 1]);
    }

    #[test]
    fn adc_sbb_roundtrip() {
        let a: Uint<3> = Uint::from_decimal("999999999999999999999999999999");
        let b: Uint<3> = Uint::from_decimal("123456789012345678901234567890");
        let (sum, c) = a.adc(b);
        assert_eq!(c, 0);
        let (diff, borrow) = sum.sbb(b);
        assert_eq!(borrow, 0);
        assert_eq!(diff, a);
    }

    #[test]
    fn subtraction_borrow() {
        let a: Uint<2> = Uint::from_u64(1);
        let b: Uint<2> = Uint::from_u64(2);
        let (_, borrow) = a.sbb(b);
        assert_eq!(borrow, 1);
    }

    #[test]
    fn ordering() {
        let a: Uint<2> = Uint { limbs: [5, 1] };
        let b: Uint<2> = Uint {
            limbs: [u64::MAX, 0],
        };
        assert!(b < a);
        assert!(b.lt(&a));
        assert!(!a.lt(&b));
        assert!(!a.lt(&a));
    }

    #[test]
    fn bit_access_and_bits() {
        let r: Uint<3> = Uint::from_decimal("730750818665451621361119245571504901405976559617");
        // r = 2^159 + 2^107 + 1
        assert!(r.bit(0));
        assert!(r.bit(107));
        assert!(r.bit(159));
        assert!(!r.bit(1));
        assert!(!r.bit(158));
        assert_eq!(r.bits(), 160);
        assert_eq!(Uint::<3>::ZERO.bits(), 0);
        assert!(!r.bit(10_000));
    }

    #[test]
    fn mod_double_behaviour() {
        let m: Uint<1> = Uint::from_u64(97);
        let x: Uint<1> = Uint::from_u64(60);
        assert_eq!(x.mod_double(&m).limbs[0], 23); // 120 - 97
        let y: Uint<1> = Uint::from_u64(40);
        assert_eq!(y.mod_double(&m).limbs[0], 80);
    }

    #[test]
    fn mod_add_behaviour() {
        let m: Uint<1> = Uint::from_u64(97);
        let a: Uint<1> = Uint::from_u64(90);
        let b: Uint<1> = Uint::from_u64(20);
        assert_eq!(a.mod_add(b, &m).limbs[0], 13);
        assert_eq!(b.mod_add(b, &m).limbs[0], 40);
    }

    #[test]
    fn shr1_shifts_across_limbs() {
        let x: Uint<2> = Uint {
            limbs: [0b101, 0b11],
        };
        let y = x.shr1();
        assert_eq!(y.limbs[0], (0b101 >> 1) | (1 << 63));
        assert_eq!(y.limbs[1], 0b1);
        assert_eq!(Uint::<2>::one().shr1(), Uint::ZERO);
    }

    #[test]
    fn byte_roundtrip() {
        let x: Uint<3> = Uint::from_decimal("730750818665451621361119245571504901405976559617");
        let bytes = x.to_be_bytes();
        assert_eq!(bytes.len(), 24);
        assert_eq!(Uint::<3>::from_be_bytes(&bytes), x);
    }

    #[test]
    fn lossy_bytes_short_and_long() {
        let x: Uint<2> = Uint::from_be_bytes_lossy(&[0x01, 0x02]);
        assert_eq!(x.limbs, [0x0102, 0]);
        let long = [0xffu8; 24]; // 3 limbs worth into 2 limbs
        let y: Uint<2> = Uint::from_be_bytes_lossy(&long);
        assert_eq!(y.limbs, [u64::MAX, u64::MAX]);
    }

    #[test]
    fn mul_limbs_known_product() {
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let a = [u64::MAX];
        let mut out = [0u64; 2];
        mul_limbs(&a, &a, &mut out);
        assert_eq!(out, [1, u64::MAX - 1]);
    }

    #[test]
    fn mul_limbs_mixed_width() {
        let a = [10u64, 0, 0];
        let b = [20u64];
        let mut out = [0u64; 4];
        mul_limbs(&a, &b, &mut out);
        assert_eq!(out, [200, 0, 0, 0]);
    }

    #[test]
    fn cofactor_times_order_is_q_plus_one() {
        // The defining relation of the paper's type-A curve: q + 1 = h * r.
        let q: Uint<8> = Uint::from_decimal(crate::params::Q_DEC);
        let r: Uint<3> = Uint::from_decimal(crate::params::R_DEC);
        let h: Uint<6> = Uint::from_decimal(crate::params::H_DEC);
        let mut prod = [0u64; 9];
        mul_limbs(&h.limbs, &r.limbs, &mut prod);
        let (q1, carry) = q.adc(Uint::one());
        assert_eq!(carry, 0);
        assert_eq!(&prod[..8], &q1.limbs);
        assert_eq!(prod[8], 0);
    }

    #[test]
    fn display_is_nonempty() {
        let z = Uint::<2>::ZERO;
        assert!(!format!("{z:?}").is_empty());
        assert_eq!(format!("{z}"), format!("{z:?}"));
    }
}
