//! Parameters of the pairing group: the PBC library's standard type-A
//! curve, i.e. the exact curve the paper's evaluation ran on.
//!
//! * Base field `F_q`, `q` a 512-bit prime with `q ≡ 3 (mod 4)`.
//! * Supersingular curve `E : y² = x³ + x` over `F_q` with
//!   `#E(F_q) = q + 1 = h · r`.
//! * `G` is the order-`r` subgroup (`r = 2¹⁵⁹ + 2¹⁰⁷ + 1`, a 160-bit prime).
//! * Embedding degree 2: the Tate pairing lands in `μ_r ⊂ F_{q²}*`.

use crate::uint::Uint;

/// Decimal expansion of the base-field prime `q` (512 bits).
pub const Q_DEC: &str = "8780710799663312522437781984754049815806883199414208211028653399266475630880222957078625179422662221423155858769582317459277713367317481324925129998224791";

/// Decimal expansion of the group order `r = 2¹⁵⁹ + 2¹⁰⁷ + 1` (160 bits).
pub const R_DEC: &str = "730750818665451621361119245571504901405976559617";

/// Decimal expansion of the cofactor `h = (q + 1) / r` (353 bits).
pub const H_DEC: &str = "12016012264891146079388821366740534204802954401251311822919615131047207289359704531102844802183906537786776";

/// The base-field prime as an 8-limb integer.
pub const Q: Uint<8> = Uint::from_decimal(Q_DEC);

/// The group order as a 3-limb integer.
pub const R: Uint<3> = Uint::from_decimal(R_DEC);

/// The cofactor as a 6-limb integer.
pub const H: Uint<6> = Uint::from_decimal(H_DEC);

/// Bit length of `r` — drives the Miller loop length.
pub const R_BITS: usize = 160;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_has_512_bits() {
        assert_eq!(Q.bits(), 512);
    }

    #[test]
    fn q_is_3_mod_4() {
        assert_eq!(Q.limbs[0] & 3, 3);
    }

    #[test]
    fn r_structure() {
        assert_eq!(R.bits(), 160);
        let mut expect = Uint::<3>::ZERO;
        expect.limbs[2] = 1 << 31; // 2^159
        expect.limbs[1] = 1 << 43; // 2^107
        expect.limbs[0] = 1;
        assert_eq!(R, expect);
    }

    #[test]
    fn h_has_353_bits() {
        assert_eq!(H.bits(), 353);
    }
}
