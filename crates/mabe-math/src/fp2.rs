//! The quadratic extension `F_{q²} = F_q[i] / (i² + 1)`.
//!
//! Because `q ≡ 3 (mod 4)`, `-1` is a quadratic non-residue in `F_q` and
//! `i² = -1` defines a field. The Tate pairing of the type-A curve takes
//! values in the order-`r` subgroup of `F_{q²}*`, and the Frobenius map
//! `z ↦ z^q` is simply complex conjugation — which makes the "easy" part of
//! the final exponentiation a conjugate-and-divide.

use rand::RngCore;

use crate::field::Fq;

/// An element `c0 + c1·i` of `F_{q²}`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fq2 {
    /// Real coefficient.
    pub c0: Fq,
    /// Imaginary coefficient.
    pub c1: Fq,
}

impl core::fmt::Debug for Fq2 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Fq2({:?} + {:?}·i)",
            self.c0.to_uint(),
            self.c1.to_uint()
        )
    }
}

impl core::fmt::Display for Fq2 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::Debug::fmt(self, f)
    }
}

impl Fq2 {
    /// The additive identity.
    pub fn zero() -> Self {
        Fq2 {
            c0: Fq::zero(),
            c1: Fq::zero(),
        }
    }

    /// The multiplicative identity.
    pub fn one() -> Self {
        Fq2 {
            c0: Fq::one(),
            c1: Fq::zero(),
        }
    }

    /// Builds an element from its two coefficients.
    pub fn new(c0: Fq, c1: Fq) -> Self {
        Fq2 { c0, c1 }
    }

    /// Embeds a base-field element.
    pub fn from_fq(c0: Fq) -> Self {
        Fq2 { c0, c1: Fq::zero() }
    }

    /// `true` for the additive identity.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    /// Addition.
    pub fn add(&self, rhs: &Self) -> Self {
        Fq2 {
            c0: self.c0.add(&rhs.c0),
            c1: self.c1.add(&rhs.c1),
        }
    }

    /// Subtraction.
    pub fn sub(&self, rhs: &Self) -> Self {
        Fq2 {
            c0: self.c0.sub(&rhs.c0),
            c1: self.c1.sub(&rhs.c1),
        }
    }

    /// Additive inverse.
    pub fn neg(&self) -> Self {
        Fq2 {
            c0: self.c0.neg(),
            c1: self.c1.neg(),
        }
    }

    /// Karatsuba-style multiplication (3 base-field multiplications).
    pub fn mul(&self, rhs: &Self) -> Self {
        let aa = self.c0.mul(&rhs.c0);
        let bb = self.c1.mul(&rhs.c1);
        let sum = self.c0.add(&self.c1).mul(&rhs.c0.add(&rhs.c1));
        Fq2 {
            c0: aa.sub(&bb),           // a0·b0 - a1·b1
            c1: sum.sub(&aa).sub(&bb), // a0·b1 + a1·b0
        }
    }

    /// Squaring (2 base-field multiplications): `(a+bi)² = (a+b)(a-b) + 2abi`.
    pub fn square(&self) -> Self {
        let plus = self.c0.add(&self.c1);
        let minus = self.c0.sub(&self.c1);
        let cross = self.c0.mul(&self.c1);
        Fq2 {
            c0: plus.mul(&minus),
            c1: cross.double(),
        }
    }

    /// Multiplication by a base-field scalar.
    pub fn mul_by_fq(&self, k: &Fq) -> Self {
        Fq2 {
            c0: self.c0.mul(k),
            c1: self.c1.mul(k),
        }
    }

    /// Complex conjugate `a - bi` — also the Frobenius map `z^q`.
    pub fn conjugate(&self) -> Self {
        Fq2 {
            c0: self.c0,
            c1: self.c1.neg(),
        }
    }

    /// The norm `a² + b²` (an `F_q` element).
    pub fn norm(&self) -> Fq {
        self.c0.square().add(&self.c1.square())
    }

    /// Multiplicative inverse: `(a - bi) / (a² + b²)`. `None` for zero.
    pub fn invert(&self) -> Option<Self> {
        let inv_norm = self.norm().invert()?;
        Some(Fq2 {
            c0: self.c0.mul(&inv_norm),
            c1: self.c1.neg().mul(&inv_norm),
        })
    }

    /// Variable-time exponentiation by a little-endian limb slice.
    pub fn pow_vartime(&self, exp: &[u64]) -> Self {
        let mut res = Self::one();
        let mut started = false;
        for i in (0..exp.len() * 64).rev() {
            if started {
                res = res.square();
            }
            if (exp[i / 64] >> (i % 64)) & 1 == 1 {
                res = res.mul(self);
                started = true;
            }
        }
        res
    }

    /// Uniformly random element.
    pub fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Fq2 {
            c0: Fq::random(rng),
            c1: Fq::random(rng),
        }
    }

    /// Canonical encoding: `c0 || c1`, 128 bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.c0.to_canonical_bytes();
        out.extend_from_slice(&self.c1.to_canonical_bytes());
        out
    }

    /// Parses the canonical 128-byte encoding.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 128 {
            return None;
        }
        Some(Fq2 {
            c0: Fq::from_canonical_bytes(&bytes[..64])?,
            c1: Fq::from_canonical_bytes(&bytes[64..])?,
        })
    }
}

impl core::ops::Add for Fq2 {
    type Output = Fq2;
    fn add(self, rhs: Fq2) -> Fq2 {
        Fq2::add(&self, &rhs)
    }
}
impl core::ops::Sub for Fq2 {
    type Output = Fq2;
    fn sub(self, rhs: Fq2) -> Fq2 {
        Fq2::sub(&self, &rhs)
    }
}
impl core::ops::Mul for Fq2 {
    type Output = Fq2;
    fn mul(self, rhs: Fq2) -> Fq2 {
        Fq2::mul(&self, &rhs)
    }
}
impl core::ops::Neg for Fq2 {
    type Output = Fq2;
    fn neg(self) -> Fq2 {
        Fq2::neg(&self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn i_squared_is_minus_one() {
        let i = Fq2::new(Fq::zero(), Fq::one());
        assert_eq!(i.square(), Fq2::from_fq(Fq::one().neg()));
        assert_eq!(i.mul(&i), Fq2::from_fq(Fq::one().neg()));
    }

    #[test]
    fn mul_matches_schoolbook() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fq2::random(&mut r);
            let b = Fq2::random(&mut r);
            // (a0 + a1 i)(b0 + b1 i) = (a0b0 - a1b1) + (a0b1 + a1b0) i
            let expect = Fq2 {
                c0: a.c0.mul(&b.c0).sub(&a.c1.mul(&b.c1)),
                c1: a.c0.mul(&b.c1).add(&a.c1.mul(&b.c0)),
            };
            assert_eq!(a.mul(&b), expect);
        }
    }

    #[test]
    fn square_matches_mul() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fq2::random(&mut r);
            assert_eq!(a.square(), a.mul(&a));
        }
    }

    #[test]
    fn inverse() {
        let mut r = rng();
        for _ in 0..5 {
            let a = Fq2::random(&mut r);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a.mul(&a.invert().unwrap()), Fq2::one());
        }
        assert!(Fq2::zero().invert().is_none());
    }

    #[test]
    fn conjugate_equals_q_power() {
        // The Frobenius map z ↦ z^q on F_{q²} must literally equal
        // conjugation — exponentiate by the full 512-bit q and compare.
        let mut r = rng();
        let z = Fq2::random(&mut r);
        let frobenius = z.pow_vartime(&crate::params::Q.limbs);
        assert_eq!(frobenius, z.conjugate());
    }

    #[test]
    fn unitary_subgroup_order_divides_q_plus_one() {
        // For z ≠ 0: (conj(z)/z) has norm 1 and order dividing q+1;
        // raising it by h·r = q+1 must give 1.
        let mut r = rng();
        let z = Fq2::random(&mut r);
        let unitary = z.conjugate().mul(&z.invert().unwrap());
        assert_eq!(unitary.norm(), Fq::one());
        let to_h = unitary.pow_vartime(&crate::params::H.limbs);
        let to_hr = to_h.pow_vartime(&crate::params::R.limbs);
        assert_eq!(to_hr, Fq2::one());
    }

    #[test]
    fn conjugate_is_frobenius() {
        // z^q must equal conj(z): verify via norms — z·conj(z) = norm ∈ Fq,
        // and (z^q)·z = z^{q+1} must equal the embedded norm.
        let mut r = rng();
        let z = Fq2::random(&mut r);
        let norm = Fq2::from_fq(z.norm());
        assert_eq!(z.mul(&z.conjugate()), norm);
        // Frobenius is an automorphism: conj(ab) = conj(a)conj(b).
        let w = Fq2::random(&mut r);
        assert_eq!(z.mul(&w).conjugate(), z.conjugate().mul(&w.conjugate()));
    }

    #[test]
    fn pow_small_exponents() {
        let mut r = rng();
        let a = Fq2::random(&mut r);
        assert_eq!(a.pow_vartime(&[0]), Fq2::one());
        assert_eq!(a.pow_vartime(&[1]), a);
        assert_eq!(a.pow_vartime(&[2]), a.square());
        assert_eq!(a.pow_vartime(&[3]), a.square().mul(&a));
    }

    #[test]
    fn distributivity() {
        let mut r = rng();
        let a = Fq2::random(&mut r);
        let b = Fq2::random(&mut r);
        let c = Fq2::random(&mut r);
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn byte_roundtrip() {
        let mut r = rng();
        let a = Fq2::random(&mut r);
        let bytes = a.to_bytes();
        assert_eq!(bytes.len(), 128);
        assert_eq!(Fq2::from_bytes(&bytes), Some(a));
        assert!(Fq2::from_bytes(&bytes[..100]).is_none());
    }

    #[test]
    fn mul_by_fq_consistent() {
        let mut r = rng();
        let a = Fq2::random(&mut r);
        let k = Fq::from_u64(7);
        assert_eq!(a.mul_by_fq(&k), a.mul(&Fq2::from_fq(k)));
    }

    #[test]
    fn operator_overloads() {
        let mut r = rng();
        let a = Fq2::random(&mut r);
        let b = Fq2::random(&mut r);
        assert_eq!(a + b, a.add(&b));
        assert_eq!(a - b, a.sub(&b));
        assert_eq!(a * b, a.mul(&b));
        assert_eq!(-a, a.neg());
    }
}
