//! The symmetric Tate pairing `e : G × G → G_T` and the target group
//! [`Gt`].
//!
//! The curve is supersingular with embedding degree 2, so the modified
//! Tate pairing `ê(P, Q) = τ_r(P, φ(Q))` with the distortion map
//! `φ(x, y) = (-x, iy)` is **symmetric and non-degenerate on G × G** —
//! exactly the `e : G × G → G_T` the paper's construction assumes.
//!
//! Implementation notes:
//!
//! * Miller loop over `r = 2¹⁵⁹ + 2¹⁰⁷ + 1` (Hamming weight 3 ⇒ only two
//!   addition steps), Jacobian coordinates, denominator elimination (all
//!   vertical-line values lie in `F_q` and die in the final
//!   exponentiation).
//! * Because `φ(Q)` has `x ∈ F_q` and `y ∈ i·F_q`, every line evaluation
//!   costs only `F_q` multiplications.
//! * Final exponentiation `(q² - 1)/r = (q - 1) · h`: the easy part is a
//!   conjugate-divide (Frobenius on `F_{q²}` is conjugation), the hard
//!   part a 353-bit exponentiation by the cofactor `h`.

use std::sync::OnceLock;

use rand::RngCore;

use crate::curve::{G1Affine, G1};
use crate::field::{Fq, Fr};
use crate::fp2::Fq2;
use crate::params;

/// Result of one Miller step: the line value and the updated point.
struct Step {
    line: Fq2,
    point: G1,
}

/// Doubling step: tangent line at `t` evaluated at `φ(Q) = (-x_q, i·y_q)`.
fn double_step(t: &G1, xq: &Fq, yq: &Fq) -> Step {
    if t.is_identity() {
        return Step {
            line: Fq2::one(),
            point: *t,
        };
    }
    let (x, y, z) = (t.x, t.y, t.z);
    let y2 = y.square();
    let z2 = z.square();
    let m = x.square().mul(&Fq::from_u64(3)).add(&z2.square()); // 3X² + Z⁴ (a = 1)
    let s = x.mul(&y2).double().double(); // 4XY²
    let x3 = m.square().sub(&s.double());
    let y3 = m
        .mul(&s.sub(&x3))
        .sub(&y2.square().double().double().double());
    let z3 = y.mul(&z).double();
    // l(φQ) = Z₃·Z²·(i·y_q) - 2Y² - M·(Z²·(-x_q) - X)
    //       = [M·(Z²·x_q + X) - 2Y²] + [Z₃·Z²·y_q]·i
    let c0 = m.mul(&z2.mul(xq).add(&x)).sub(&y2.double());
    let c1 = z3.mul(&z2).mul(yq);
    Step {
        line: Fq2::new(c0, c1),
        point: G1 {
            x: x3,
            y: y3,
            z: z3,
        },
    }
}

/// Addition step: chord through `t` and the affine base point `p`,
/// evaluated at `φ(Q)`.
fn add_step(t: &G1, p: &G1Affine, xq: &Fq, yq: &Fq) -> Step {
    if t.is_identity() {
        return Step {
            line: Fq2::one(),
            point: G1::from(*p),
        };
    }
    let (x, y, z) = (t.x, t.y, t.z);
    let z2 = z.square();
    let u = p.x().mul(&z2);
    let s_val = p.y().mul(&z2).mul(&z);
    let h = u.sub(&x);
    let r = s_val.sub(&y);
    if h.is_zero() {
        if r.is_zero() {
            // t == p: tangent case (cannot occur in our loop, but correct).
            return double_step(t, xq, yq);
        }
        // t == -p: vertical line, value in F_q ⇒ eliminated.
        return Step {
            line: Fq2::one(),
            point: G1::identity(),
        };
    }
    let h2 = h.square();
    let h3 = h2.mul(&h);
    let xh2 = x.mul(&h2);
    let x3 = r.square().sub(&h3).sub(&xh2.double());
    let y3 = r.mul(&xh2.sub(&x3)).sub(&y.mul(&h3));
    let z3 = z.mul(&h);
    // l(φQ) = Z₃·(i·y_q - y_p) - R·(-x_q - x_p)
    //       = [R·(x_q + x_p) - Z₃·y_p] + [Z₃·y_q]·i
    let c0 = r.mul(&xq.add(&p.x())).sub(&z3.mul(&p.y()));
    let c1 = z3.mul(yq);
    Step {
        line: Fq2::new(c0, c1),
        point: G1 {
            x: x3,
            y: y3,
            z: z3,
        },
    }
}

/// Raises the Miller-loop output to `(q² - 1)/r`, landing in the order-`r`
/// subgroup of `F_{q²}*`.
fn final_exponentiation(f: &Fq2) -> Fq2 {
    // Easy part: f^(q-1) = conj(f) / f.
    let inv = f.invert().expect("Miller loop output is nonzero");
    let easy = f.conjugate().mul(&inv);
    // Hard part: (q + 1)/r = h.
    easy.pow_vartime(&params::H.limbs)
}

/// The symmetric pairing `e(P, Q)`.
///
/// Returns the identity of `G_T` if either argument is the identity of
/// `G` (consistent with bilinearity).
pub fn pairing(p: &G1Affine, q: &G1Affine) -> Gt {
    // Counted before the identity shortcut: op accounting tracks the
    // paper's nominal operation counts, not the shortcuts taken.
    mabe_telemetry::record(mabe_telemetry::CryptoOp::Pairing);
    if p.is_identity() || q.is_identity() {
        return Gt::one();
    }
    let xq = q.x(); // φ(Q).x = -x_q; the formulas fold the sign in.
    let yq = q.y();
    let mut f = Fq2::one();
    let mut t = G1::from(*p);
    // r = 2^159 + 2^107 + 1; iterate bits 158..=0 below the leading 1.
    for i in (0..(params::R_BITS - 1)).rev() {
        f = f.square();
        let step = double_step(&t, &xq, &yq);
        f = f.mul(&step.line);
        t = step.point;
        if params::R.bit(i) {
            let step = add_step(&t, p, &xq, &yq);
            f = f.mul(&step.line);
            t = step.point;
        }
    }
    Gt(final_exponentiation(&f))
}

/// Computes `Π e(P_i, Q_i)` with one shared final exponentiation.
///
/// The Miller loops of all pairs run in lockstep — their line values
/// multiply into one accumulator, and the expensive `(q²-1)/r`
/// exponentiation happens once instead of once per pair. This is the
/// standard "product of pairings" optimization; the scheme's decryption
/// (a product of `n_A + 2·|I|` pairings) is its natural consumer.
///
/// Identity arguments contribute a factor of 1, like [`pairing`].
pub fn multi_pairing(pairs: &[(G1Affine, G1Affine)]) -> Gt {
    for _ in pairs {
        mabe_telemetry::record(mabe_telemetry::CryptoOp::Pairing);
    }
    let mut state: Vec<(G1, G1Affine, Fq, Fq)> = pairs
        .iter()
        .filter(|(p, q)| !p.is_identity() && !q.is_identity())
        .map(|(p, q)| (G1::from(*p), *p, q.x(), q.y()))
        .collect();
    if state.is_empty() {
        return Gt::one();
    }
    let mut f = Fq2::one();
    for i in (0..(params::R_BITS - 1)).rev() {
        f = f.square();
        for (t, p, xq, yq) in state.iter_mut() {
            let step = double_step(t, xq, yq);
            f = f.mul(&step.line);
            *t = step.point;
            if params::R.bit(i) {
                let step = add_step(t, p, xq, yq);
                f = f.mul(&step.line);
                *t = step.point;
            }
        }
    }
    Gt(final_exponentiation(&f))
}

/// An element of the target group `G_T` (the order-`r` subgroup of
/// `F_{q²}*`; all members are unitary, so inversion is conjugation).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Gt(Fq2);

impl Gt {
    /// The multiplicative identity.
    pub fn one() -> Self {
        Gt(Fq2::one())
    }

    /// `true` for the identity.
    pub fn is_one(&self) -> bool {
        self.0 == Fq2::one()
    }

    /// The canonical generator `e(g, g)`.
    pub fn generator() -> Self {
        static GEN: OnceLock<Gt> = OnceLock::new();
        *GEN.get_or_init(|| {
            let g = G1Affine::generator();
            pairing(&g, &g)
        })
    }

    /// Group operation (multiplication in `F_{q²}`).
    pub fn mul(&self, rhs: &Self) -> Self {
        Gt(self.0.mul(&rhs.0))
    }

    /// Exponentiation by a scalar.
    pub fn pow(&self, k: &Fr) -> Self {
        mabe_telemetry::record(mabe_telemetry::CryptoOp::GtPow);
        Gt(self.0.pow_vartime(&k.to_uint().limbs))
    }

    /// Inverse (conjugation — valid because `G_T` elements are unitary).
    pub fn invert(&self) -> Self {
        Gt(self.0.conjugate())
    }

    /// Division: `self · rhs⁻¹`.
    pub fn div(&self, rhs: &Self) -> Self {
        self.mul(&rhs.invert())
    }

    /// Uniformly random element (known exponent is discarded).
    pub fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::generator().pow(&Fr::random(rng))
    }

    /// Canonical 128-byte encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.0.to_bytes()
    }

    /// Parses and validates the canonical encoding (subgroup-checked).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let inner = Fq2::from_bytes(bytes)?;
        if inner.is_zero() {
            return None;
        }
        // Order check: must lie in the order-r subgroup.
        if inner.pow_vartime(&params::R.limbs) != Fq2::one() {
            return None;
        }
        Some(Gt(inner))
    }

    /// Raw access to the underlying `F_{q²}` element (for tests/benches).
    pub fn as_fq2(&self) -> &Fq2 {
        &self.0
    }

    /// Compressed 65-byte encoding exploiting unitarity: members of
    /// `G_T` satisfy `c0² + c1² = 1`, so `c1` is determined by `c0` up
    /// to sign. Format: flag byte (`0x02 | parity(c1)`) followed by the
    /// 64-byte big-endian `c0`.
    pub fn to_compressed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(65);
        out.push(0x02 | u8::from(self.0.c1.is_odd()));
        out.extend_from_slice(&self.0.c0.to_canonical_bytes());
        out
    }

    /// Parses the compressed encoding (subgroup-checked).
    pub fn from_compressed_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 65 {
            return None;
        }
        let flag = bytes[0];
        if flag != 0x02 && flag != 0x03 {
            return None;
        }
        let c0 = crate::field::Fq::from_canonical_bytes(&bytes[1..])?;
        // c1² = 1 - c0²
        let c1_sq = crate::field::Fq::one().sub(&c0.square());
        let mut c1 = c1_sq.sqrt()?;
        if c1.is_odd() != (flag & 1 == 1) {
            c1 = c1.neg();
        }
        let inner = Fq2::new(c0, c1);
        if inner.pow_vartime(&params::R.limbs) != Fq2::one() {
            return None;
        }
        Some(Gt(inner))
    }
}

impl core::ops::Mul for Gt {
    type Output = Gt;
    fn mul(self, rhs: Gt) -> Gt {
        Gt::mul(&self, &rhs)
    }
}

impl core::fmt::Display for Gt {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Gt({:?})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn non_degenerate() {
        let e = Gt::generator();
        assert!(!e.is_one());
    }

    #[test]
    fn generator_has_order_r() {
        let e = Gt::generator();
        let r_scalar = params::R;
        assert_eq!(e.as_fq2().pow_vartime(&r_scalar.limbs), Fq2::one());
    }

    #[test]
    fn bilinear_in_first_argument() {
        let g = G1Affine::generator();
        let a = Fr::from_u64(123456);
        let ga = G1Affine::from(G1::generator().mul(&a));
        let lhs = pairing(&ga, &g);
        let rhs = pairing(&g, &g).pow(&a);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn bilinear_in_second_argument() {
        let g = G1Affine::generator();
        let b = Fr::from_u64(98765);
        let gb = G1Affine::from(G1::generator().mul(&b));
        assert_eq!(pairing(&g, &gb), pairing(&g, &g).pow(&b));
    }

    #[test]
    fn bilinear_random_scalars() {
        let mut r = rng();
        let g = G1Affine::generator();
        let a = Fr::random(&mut r);
        let b = Fr::random(&mut r);
        let ga = G1Affine::from(G1::generator().mul(&a));
        let gb = G1Affine::from(G1::generator().mul(&b));
        assert_eq!(pairing(&ga, &gb), pairing(&g, &g).pow(&a.mul(&b)));
    }

    #[test]
    fn symmetric() {
        let mut r = rng();
        let p = G1Affine::from(G1::random(&mut r));
        let q = G1Affine::from(G1::random(&mut r));
        assert_eq!(pairing(&p, &q), pairing(&q, &p));
    }

    #[test]
    fn identity_arguments() {
        let g = G1Affine::generator();
        let id = G1Affine::identity();
        assert!(pairing(&id, &g).is_one());
        assert!(pairing(&g, &id).is_one());
    }

    #[test]
    fn pairing_with_negation() {
        let mut r = rng();
        let p = G1Affine::from(G1::random(&mut r));
        let q = G1Affine::from(G1::random(&mut r));
        let e = pairing(&p, &q);
        assert_eq!(pairing(&p.neg(), &q), e.invert());
        assert_eq!(pairing(&p, &q.neg()), e.invert());
        assert!(pairing(&p.neg(), &q).mul(&e).is_one());
    }

    #[test]
    fn gt_group_laws() {
        let mut r = rng();
        let a = Gt::random(&mut r);
        let b = Gt::random(&mut r);
        assert_eq!(a.mul(&b), b.mul(&a));
        assert!(a.mul(&a.invert()).is_one());
        assert_eq!(a.div(&a), Gt::one());
        assert_eq!(a.mul(&Gt::one()), a);
    }

    #[test]
    fn gt_pow_laws() {
        let mut r = rng();
        let a = Fr::random(&mut r);
        let b = Fr::random(&mut r);
        let g = Gt::generator();
        assert_eq!(g.pow(&a).pow(&b), g.pow(&a.mul(&b)));
        assert_eq!(g.pow(&a).mul(&g.pow(&b)), g.pow(&a.add(&b)));
        assert_eq!(g.pow(&Fr::zero()), Gt::one());
        assert_eq!(g.pow(&Fr::one()), g);
    }

    #[test]
    fn gt_bytes_roundtrip() {
        let mut r = rng();
        let a = Gt::random(&mut r);
        let bytes = a.to_bytes();
        assert_eq!(bytes.len(), 128);
        assert_eq!(Gt::from_bytes(&bytes), Some(a));
        // Zero is rejected.
        assert!(Gt::from_bytes(&[0u8; 128]).is_none());
        // Wrong length is rejected.
        assert!(Gt::from_bytes(&bytes[..127]).is_none());
    }

    #[test]
    fn gt_compressed_roundtrip() {
        let mut r = rng();
        for _ in 0..5 {
            let a = Gt::random(&mut r);
            let compressed = a.to_compressed_bytes();
            assert_eq!(compressed.len(), 65);
            assert_eq!(Gt::from_compressed_bytes(&compressed), Some(a));
        }
        // Identity: c0 = 1, c1 = 0.
        let one = Gt::one();
        assert_eq!(
            Gt::from_compressed_bytes(&one.to_compressed_bytes()),
            Some(one)
        );
        // Bad flag and bad length rejected.
        let mut bad = Gt::generator().to_compressed_bytes();
        bad[0] = 0x00;
        assert!(Gt::from_compressed_bytes(&bad).is_none());
        assert!(Gt::from_compressed_bytes(&[0u8; 64]).is_none());
        // Random c0 almost surely fails the subgroup/sqrt checks.
        let mut junk = vec![0x02u8];
        junk.extend_from_slice(&Fq::from_u64(123456).to_canonical_bytes());
        assert!(Gt::from_compressed_bytes(&junk).is_none());
    }

    #[test]
    fn gt_from_bytes_rejects_wrong_order() {
        // A random Fq2 element is overwhelmingly unlikely to have order r.
        let mut r = rng();
        let junk = Fq2::random(&mut r);
        assert!(Gt::from_bytes(&junk.to_bytes()).is_none());
    }

    #[test]
    fn multi_pairing_matches_product() {
        let mut r = rng();
        let pairs: Vec<(G1Affine, G1Affine)> = (0..4)
            .map(|_| {
                (
                    G1Affine::from(G1::random(&mut r)),
                    G1Affine::from(G1::random(&mut r)),
                )
            })
            .collect();
        let expected = pairs
            .iter()
            .fold(Gt::one(), |acc, (p, q)| acc.mul(&pairing(p, q)));
        assert_eq!(multi_pairing(&pairs), expected);
    }

    #[test]
    fn multi_pairing_edge_cases() {
        let mut r = rng();
        assert!(multi_pairing(&[]).is_one());
        let p = G1Affine::from(G1::random(&mut r));
        let q = G1Affine::from(G1::random(&mut r));
        // Single pair equals plain pairing.
        assert_eq!(multi_pairing(&[(p, q)]), pairing(&p, &q));
        // Identity pairs are skipped.
        let id = G1Affine::identity();
        assert_eq!(multi_pairing(&[(p, q), (id, q), (p, id)]), pairing(&p, &q));
        assert!(multi_pairing(&[(id, id)]).is_one());
        // A pair and its negation cancel.
        assert!(multi_pairing(&[(p, q), (p.neg(), q)]).is_one());
    }

    #[test]
    fn pairing_linear_in_both_args_simultaneously() {
        // e(P1 + P2, Q) = e(P1, Q) · e(P2, Q)
        let mut r = rng();
        let p1 = G1::random(&mut r);
        let p2 = G1::random(&mut r);
        let q = G1Affine::from(G1::random(&mut r));
        let lhs = pairing(&G1Affine::from(p1.add(&p2)), &q);
        let rhs = pairing(&G1Affine::from(p1), &q).mul(&pairing(&G1Affine::from(p2), &q));
        assert_eq!(lhs, rhs);
    }
}
