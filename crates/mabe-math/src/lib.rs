//! # mabe-math
//!
//! From-scratch pairing substrate for the MA-ABAC reproduction of
//! *"Attribute-based Access Control for Multi-Authority Systems in Cloud
//! Storage"* (Yang & Jia, ICDCS 2012).
//!
//! The paper's evaluation runs on the PBC library's **type-A** pairing: a
//! supersingular curve `E : y² = x³ + x` over a 512-bit prime field with a
//! 160-bit prime-order subgroup and embedding degree 2. This crate
//! re-implements that entire stack in pure Rust:
//!
//! * [`uint`] — fixed-width big integers (512/353/160-bit).
//! * [`field`] — Montgomery prime fields [`field::Fq`] (base) and
//!   [`field::Fr`] (scalar, the paper's `Z_p`).
//! * [`fp2`] — the quadratic extension `F_{q²}`.
//! * [`curve`] — the group `G` with hashing-to-curve.
//! * [`pairing`](mod@crate::pairing) — the symmetric Tate pairing `e : G × G → G_T` via
//!   Miller's algorithm with denominator elimination, and the target
//!   group [`pairing::Gt`].
//! * [`hash`] — the random oracle `H : {0,1}* → Z_p` of the paper.
//!
//! # Security disclaimer
//!
//! This is a research reproduction: arithmetic is **variable-time** and the
//! 512-bit/160-bit type-A parameters match the paper's 2012 evaluation, not
//! today's security margins. Do not deploy.
//!
//! # Examples
//!
//! ```
//! use mabe_math::curve::{G1, G1Affine};
//! use mabe_math::field::Fr;
//! use mabe_math::pairing::pairing;
//!
//! // e(aP, bP) = e(P, P)^{ab}
//! let g = G1Affine::generator();
//! let (a, b) = (Fr::from_u64(6), Fr::from_u64(7));
//! let ga = G1Affine::from(g.mul(&a));
//! let gb = G1Affine::from(g.mul(&b));
//! assert_eq!(pairing(&ga, &gb), pairing(&g, &g).pow(&Fr::from_u64(42)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod curve;
pub mod field;
pub mod fp2;
pub mod hash;
pub mod pairing;
pub mod params;
pub mod uint;

pub use curve::{batch_normalize, generator_mul, hash_to_curve, FixedBase, G1Affine, G1};
pub use field::{Fq, Fr};
pub use hash::hash_to_fr;
pub use pairing::{multi_pairing, pairing, Gt};
