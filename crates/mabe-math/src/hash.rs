//! Random oracles into the algebraic structures.
//!
//! The paper models `H : {0,1}* → Z_p` as a random oracle (§IV); the
//! Lewko–Waters baseline additionally needs `H : {0,1}* → G`
//! ([`crate::curve::hash_to_curve`]). All oracles are SHA-256 based with
//! one-byte domain tags, expanded to 512 bits before field reduction so the
//! bias on the 160-bit scalar field is negligible (~2⁻³⁵²).

use mabe_crypto::sha256;

use crate::field::{Fq, Fr};

const TAG_FR: u8 = 0x02;
const TAG_FQ: u8 = 0x03;

/// The paper's random oracle `H : {0,1}* → Z_p` (attribute hashing).
pub fn hash_to_fr(msg: &[u8]) -> Fr {
    mabe_telemetry::record(mabe_telemetry::CryptoOp::HashToField);
    let wide = sha256::digest_wide(TAG_FR, msg);
    Fr::from_be_bytes_reduce(&wide)
}

/// Random oracle into the base field (used by hash-to-curve internals and
/// available for tests).
pub fn hash_to_fq(msg: &[u8]) -> Fq {
    let wide = sha256::digest_wide(TAG_FQ, msg);
    Fq::from_be_bytes_reduce(&wide)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_to_fr(b"Doctor"), hash_to_fr(b"Doctor"));
        assert_eq!(hash_to_fq(b"Doctor"), hash_to_fq(b"Doctor"));
    }

    #[test]
    fn distinct_inputs_distinct_outputs() {
        assert_ne!(hash_to_fr(b"Doctor"), hash_to_fr(b"Nurse"));
        assert_ne!(hash_to_fq(b"Doctor"), hash_to_fq(b"Nurse"));
    }

    #[test]
    fn fr_and_fq_oracles_are_domain_separated() {
        // The reductions differ, but also the preimages: same input should
        // not produce trivially related outputs. Compare low 64 bits.
        let fr = hash_to_fr(b"x").to_uint().limbs[0];
        let fq = hash_to_fq(b"x").to_uint().limbs[0];
        assert_ne!(fr, fq);
    }

    #[test]
    fn nonzero_with_overwhelming_probability() {
        for name in ["a", "b", "c", "d", "e"] {
            assert!(!hash_to_fr(name.as_bytes()).is_zero());
        }
    }
}
