//! The group `G`: the order-`r` subgroup of the supersingular curve
//! `E : y² = x³ + x` over `F_q`.
//!
//! Points are manipulated in Jacobian coordinates (`x = X/Z²`,
//! `y = Y/Z³`); the curve coefficient is `a = 1`, `b = 0`. The paper's
//! symmetric pairing group `G` is exactly this subgroup (PBC type-A), with
//! the distortion map `φ(x, y) = (-x, iy)` supplying the second pairing
//! argument (see [`crate::pairing()`]).

use std::sync::OnceLock;

use rand::RngCore;

use mabe_crypto::sha256;

use crate::field::{Fq, Fr};
use crate::params;

/// Domain-separation tag for hash-to-curve.
const TAG_H2C: u8 = 0x01;

/// A point on `E(F_q)` in affine coordinates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct G1Affine {
    pub(crate) x: Fq,
    pub(crate) y: Fq,
    pub(crate) infinity: bool,
}

/// A point on `E(F_q)` in Jacobian projective coordinates.
#[derive(Clone, Copy, Debug)]
pub struct G1 {
    pub(crate) x: Fq,
    pub(crate) y: Fq,
    pub(crate) z: Fq,
}

impl Default for G1Affine {
    fn default() -> Self {
        Self::identity()
    }
}

impl Default for G1 {
    fn default() -> Self {
        Self::identity()
    }
}

impl G1Affine {
    /// The point at infinity.
    pub fn identity() -> Self {
        G1Affine {
            x: Fq::zero(),
            y: Fq::zero(),
            infinity: true,
        }
    }

    /// `true` for the point at infinity.
    pub fn is_identity(&self) -> bool {
        self.infinity
    }

    /// The affine x-coordinate.
    ///
    /// # Panics
    ///
    /// Panics for the point at infinity.
    pub fn x(&self) -> Fq {
        assert!(!self.infinity, "identity has no coordinates");
        self.x
    }

    /// The affine y-coordinate.
    ///
    /// # Panics
    ///
    /// Panics for the point at infinity.
    pub fn y(&self) -> Fq {
        assert!(!self.infinity, "identity has no coordinates");
        self.y
    }

    /// Checks the curve equation `y² = x³ + x`.
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        let lhs = self.y.square();
        let rhs = self.x.square().mul(&self.x).add(&self.x);
        lhs == rhs
    }

    /// Checks membership in the order-`r` subgroup.
    pub fn is_torsion_free(&self) -> bool {
        G1::from(*self).mul_by_limbs(&params::R.limbs).is_identity()
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        if self.infinity {
            *self
        } else {
            G1Affine {
                x: self.x,
                y: self.y.neg(),
                infinity: false,
            }
        }
    }

    /// The fixed group generator (derived by hashing a domain tag to the
    /// curve; deterministic across runs).
    pub fn generator() -> Self {
        static GEN: OnceLock<G1Affine> = OnceLock::new();
        *GEN.get_or_init(|| hash_to_curve(b"mabe-type-a-curve-generator-v1"))
    }

    /// Scalar multiplication.
    pub fn mul(&self, scalar: &Fr) -> G1 {
        G1::from(*self).mul(scalar)
    }

    /// Compressed encoding: one flag byte (`0x00` infinity, `0x02 | parity`
    /// otherwise) followed by the 64-byte big-endian x-coordinate.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(65);
        if self.infinity {
            out.push(0x00);
            out.extend_from_slice(&[0u8; 64]);
        } else {
            out.push(0x02 | u8::from(self.y.is_odd()));
            out.extend_from_slice(&self.x.to_canonical_bytes());
        }
        out
    }

    /// Parses the 65-byte compressed encoding produced by
    /// [`G1Affine::to_bytes`], validating the curve equation and subgroup
    /// membership.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 65 {
            return None;
        }
        let flag = bytes[0];
        if flag == 0x00 {
            if bytes[1..].iter().any(|&b| b != 0) {
                return None;
            }
            return Some(Self::identity());
        }
        if flag != 0x02 && flag != 0x03 {
            return None;
        }
        let x = Fq::from_canonical_bytes(&bytes[1..])?;
        let rhs = x.square().mul(&x).add(&x);
        let mut y = rhs.sqrt()?;
        if y.is_odd() != (flag & 1 == 1) {
            y = y.neg();
        }
        let point = G1Affine {
            x,
            y,
            infinity: false,
        };
        if point.is_torsion_free() {
            Some(point)
        } else {
            None
        }
    }
}

impl From<G1> for G1Affine {
    fn from(p: G1) -> Self {
        if p.is_identity() {
            return G1Affine::identity();
        }
        let zinv = p.z.invert().expect("non-identity point has z != 0");
        let zinv2 = zinv.square();
        let zinv3 = zinv2.mul(&zinv);
        G1Affine {
            x: p.x.mul(&zinv2),
            y: p.y.mul(&zinv3),
            infinity: false,
        }
    }
}

impl From<G1Affine> for G1 {
    fn from(p: G1Affine) -> Self {
        if p.infinity {
            G1::identity()
        } else {
            G1 {
                x: p.x,
                y: p.y,
                z: Fq::one(),
            }
        }
    }
}

impl PartialEq for G1 {
    fn eq(&self, other: &Self) -> bool {
        let self_id = self.is_identity();
        let other_id = other.is_identity();
        if self_id || other_id {
            return self_id == other_id;
        }
        // X1·Z2² == X2·Z1² and Y1·Z2³ == Y2·Z1³
        let z1_2 = self.z.square();
        let z2_2 = other.z.square();
        if self.x.mul(&z2_2) != other.x.mul(&z1_2) {
            return false;
        }
        let z1_3 = z1_2.mul(&self.z);
        let z2_3 = z2_2.mul(&other.z);
        self.y.mul(&z2_3) == other.y.mul(&z1_3)
    }
}
impl Eq for G1 {}

impl G1 {
    /// The point at infinity (encoded as `Z = 0`).
    pub fn identity() -> Self {
        G1 {
            x: Fq::one(),
            y: Fq::one(),
            z: Fq::zero(),
        }
    }

    /// `true` for the point at infinity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// The fixed group generator as a projective point.
    pub fn generator() -> Self {
        G1::from(G1Affine::generator())
    }

    /// Point doubling (`a = 1` Jacobian formulas).
    pub fn double(&self) -> Self {
        if self.is_identity() || self.y.is_zero() {
            return Self::identity();
        }
        let y2 = self.y.square();
        let s = self.x.mul(&y2).double().double(); // 4XY²
        let z2 = self.z.square();
        let m = self.x.square().mul(&Fq::from_u64(3)).add(&z2.square()); // 3X² + Z⁴
        let x3 = m.square().sub(&s.double());
        let y4_8 = y2.square().double().double().double(); // 8Y⁴
        let y3 = m.mul(&s.sub(&x3)).sub(&y4_8);
        let z3 = self.y.mul(&self.z).double();
        G1 {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General point addition.
    pub fn add(&self, rhs: &Self) -> Self {
        if self.is_identity() {
            return *rhs;
        }
        if rhs.is_identity() {
            return *self;
        }
        let z1_2 = self.z.square();
        let z2_2 = rhs.z.square();
        let u1 = self.x.mul(&z2_2);
        let u2 = rhs.x.mul(&z1_2);
        let s1 = self.y.mul(&z2_2).mul(&rhs.z);
        let s2 = rhs.y.mul(&z1_2).mul(&self.z);
        let h = u2.sub(&u1);
        let r = s2.sub(&s1);
        if h.is_zero() {
            if r.is_zero() {
                return self.double();
            }
            return Self::identity();
        }
        let h2 = h.square();
        let h3 = h2.mul(&h);
        let u1h2 = u1.mul(&h2);
        let x3 = r.square().sub(&h3).sub(&u1h2.double());
        let y3 = r.mul(&u1h2.sub(&x3)).sub(&s1.mul(&h3));
        let z3 = self.z.mul(&rhs.z).mul(&h);
        G1 {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition with an affine point.
    pub fn add_mixed(&self, rhs: &G1Affine) -> Self {
        if rhs.infinity {
            return *self;
        }
        if self.is_identity() {
            return G1::from(*rhs);
        }
        let z1_2 = self.z.square();
        let u2 = rhs.x.mul(&z1_2);
        let s2 = rhs.y.mul(&z1_2).mul(&self.z);
        let h = u2.sub(&self.x);
        let r = s2.sub(&self.y);
        if h.is_zero() {
            if r.is_zero() {
                return self.double();
            }
            return Self::identity();
        }
        let h2 = h.square();
        let h3 = h2.mul(&h);
        let u1h2 = self.x.mul(&h2);
        let x3 = r.square().sub(&h3).sub(&u1h2.double());
        let y3 = r.mul(&u1h2.sub(&x3)).sub(&self.y.mul(&h3));
        let z3 = self.z.mul(&h);
        G1 {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        G1 {
            x: self.x,
            y: self.y.neg(),
            z: self.z,
        }
    }

    /// Scalar multiplication by a field scalar (width-4 wNAF).
    pub fn mul(&self, scalar: &Fr) -> Self {
        self.mul_wnaf(scalar)
    }

    /// Width-4 wNAF scalar multiplication: ~160 doublings but only ~32
    /// additions against a 4-entry odd-multiples table (the kind of
    /// optimization the paper's PBC library applies).
    pub fn mul_wnaf(&self, scalar: &Fr) -> Self {
        mabe_telemetry::record(mabe_telemetry::CryptoOp::G1Mul);
        let digits = wnaf_digits(scalar.to_uint());
        if digits.is_empty() {
            return Self::identity();
        }
        // Odd multiples P, 3P, 5P, 7P.
        let twice = self.double();
        let mut table = [*self; 4];
        for i in 1..4 {
            table[i] = table[i - 1].add(&twice);
        }
        let mut acc = Self::identity();
        for &d in digits.iter().rev() {
            acc = acc.double();
            if d > 0 {
                acc = acc.add(&table[(d as usize) / 2]);
            } else if d < 0 {
                acc = acc.add(&table[((-d) as usize) / 2].neg());
            }
        }
        acc
    }

    /// Reference double-and-add scalar multiplication (kept for the
    /// wNAF ablation benchmark and cross-checking).
    pub fn mul_binary(&self, scalar: &Fr) -> Self {
        mabe_telemetry::record(mabe_telemetry::CryptoOp::G1Mul);
        self.mul_by_limbs(&scalar.to_uint().limbs)
    }

    /// Variable-time scalar multiplication by a little-endian limb slice
    /// (used for cofactor clearing where the multiplier exceeds `r`).
    pub fn mul_by_limbs(&self, limbs: &[u64]) -> Self {
        let mut acc = Self::identity();
        let mut started = false;
        for i in (0..limbs.len() * 64).rev() {
            if started {
                acc = acc.double();
            }
            if (limbs[i / 64] >> (i % 64)) & 1 == 1 {
                acc = acc.add(self);
                started = true;
            }
        }
        acc
    }

    /// Uniformly random group element (random scalar times the generator).
    pub fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::generator().mul(&Fr::random(rng))
    }
}

impl core::ops::Add for G1 {
    type Output = G1;
    fn add(self, rhs: G1) -> G1 {
        G1::add(&self, &rhs)
    }
}
impl core::ops::Neg for G1 {
    type Output = G1;
    fn neg(self) -> G1 {
        G1::neg(&self)
    }
}

/// Precomputed fixed-base multiplication table (radix-16 windows).
///
/// For a point known in advance (above all the generator `g`, which the
/// scheme exponentiates constantly: `PK_UID`, `PK_x`, `C'`, `C_i`, key
/// components), precomputing `d · 16^w · P` for every window `w` and
/// digit `d` turns a scalar multiplication into ~40 mixed additions with
/// **no doublings** — the same preprocessing trick PBC applies.
#[derive(Clone, Debug)]
pub struct FixedBase {
    /// `table[w][d-1] = d · 16^w · P` for `d` in `1..=15`.
    table: Vec<[G1Affine; 15]>,
}

/// Number of radix-16 windows covering a 160-bit scalar.
const FIXED_BASE_WINDOWS: usize = 40;

impl FixedBase {
    /// Precomputes the table for `point` (~600 group operations).
    pub fn new(point: &G1) -> Self {
        let mut table = Vec::with_capacity(FIXED_BASE_WINDOWS);
        let mut base = *point;
        for _ in 0..FIXED_BASE_WINDOWS {
            let mut multiples = Vec::with_capacity(15);
            let mut acc = base;
            for _ in 0..15 {
                multiples.push(acc);
                acc = acc.add(&base);
            }
            let affine = batch_normalize(&multiples);
            let mut row = [G1Affine::identity(); 15];
            row.copy_from_slice(&affine);
            table.push(row);
            base = acc; // acc = 16 · base
        }
        FixedBase { table }
    }

    /// Computes `k · P` using the precomputed table.
    pub fn mul(&self, k: &Fr) -> G1 {
        mabe_telemetry::record(mabe_telemetry::CryptoOp::G1Mul);
        let limbs = k.to_uint().limbs;
        let mut acc = G1::identity();
        for w in 0..FIXED_BASE_WINDOWS {
            let digit = ((limbs[w / 16] >> (4 * (w % 16))) & 0xf) as usize;
            if digit != 0 {
                acc = acc.add_mixed(&self.table[w][digit - 1]);
            }
        }
        acc
    }
}

/// `k · g` for the group generator via a process-wide precomputed table.
///
/// Roughly 6× faster than [`G1::mul`] on the generator; used by every
/// hot path that exponentiates `g`.
pub fn generator_mul(k: &Fr) -> G1 {
    static TABLE: OnceLock<FixedBase> = OnceLock::new();
    TABLE
        .get_or_init(|| FixedBase::new(&G1::generator()))
        .mul(k)
}

/// Width-4 signed windowed NAF digits (least-significant first), each in
/// `{0, ±1, ±3, ±5, ±7}` with no two adjacent nonzero digits.
fn wnaf_digits(mut x: crate::uint::Uint<3>) -> Vec<i8> {
    const WINDOW: u64 = 16; // 2^4
    let mut digits = Vec::with_capacity(168);
    while !x.is_zero() {
        if x.is_odd() {
            let low = x.limbs[0] & (WINDOW - 1);
            let d: i64 = if low >= WINDOW / 2 {
                low as i64 - WINDOW as i64
            } else {
                low as i64
            };
            if d >= 0 {
                x = x.sbb(crate::uint::Uint::from_u64(d as u64)).0;
            } else {
                // x + |d| cannot overflow 192 bits (x < 2^160).
                x = x.adc(crate::uint::Uint::from_u64((-d) as u64)).0;
            }
            digits.push(d as i8);
        } else {
            digits.push(0);
        }
        x = x.shr1();
    }
    digits
}

/// Converts a batch of projective points to affine with a single field
/// inversion (Montgomery's trick). Identity points map to the affine
/// identity.
pub fn batch_normalize(points: &[G1]) -> Vec<G1Affine> {
    // Prefix products of the non-zero Z coordinates.
    let mut prefix = Vec::with_capacity(points.len());
    let mut acc = Fq::one();
    for p in points {
        prefix.push(acc);
        if !p.is_identity() {
            acc = acc.mul(&p.z);
        }
    }
    // acc is a product of nonzero Z coordinates (or one), hence nonzero.
    let mut inv = acc.invert().expect("product of nonzero field elements");
    let mut out = vec![G1Affine::identity(); points.len()];
    for (i, p) in points.iter().enumerate().rev() {
        if p.is_identity() {
            continue;
        }
        let zinv = inv.mul(&prefix[i]);
        inv = inv.mul(&p.z);
        let zinv2 = zinv.square();
        let zinv3 = zinv2.mul(&zinv);
        out[i] = G1Affine {
            x: p.x.mul(&zinv2),
            y: p.y.mul(&zinv3),
            infinity: false,
        };
    }
    out
}

/// Hashes an arbitrary byte string onto the order-`r` subgroup
/// (try-and-increment, then cofactor clearing).
///
/// This is the random oracle `H : {0,1}* → G` required by the
/// Lewko–Waters baseline and by key derivation; deterministic in `msg`.
pub fn hash_to_curve(msg: &[u8]) -> G1Affine {
    mabe_telemetry::record(mabe_telemetry::CryptoOp::HashToCurve);
    let mut ctr = 0u32;
    loop {
        let mut input = Vec::with_capacity(msg.len() + 4);
        input.extend_from_slice(&ctr.to_be_bytes());
        input.extend_from_slice(msg);
        let wide = sha256::digest_wide(TAG_H2C, &input);
        let x = Fq::from_be_bytes_reduce(&wide);
        let rhs = x.square().mul(&x).add(&x);
        if let Some(mut y) = rhs.sqrt() {
            // Use one hash bit to pick the sign of y.
            if (wide[0] & 1 == 1) != y.is_odd() {
                y = y.neg();
            }
            let p = G1 { x, y, z: Fq::one() };
            let cleared = p.mul_by_limbs(&params::H.limbs);
            if !cleared.is_identity() {
                return G1Affine::from(cleared);
            }
        }
        ctr += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn generator_on_curve_and_torsion_free() {
        let g = G1Affine::generator();
        assert!(!g.is_identity());
        assert!(g.is_on_curve());
        assert!(g.is_torsion_free());
    }

    #[test]
    fn generator_has_order_r() {
        let g = G1::generator();
        assert!(g.mul_by_limbs(&params::R.limbs).is_identity());
        // Not of smaller order: r is prime, so any nontrivial point works.
        assert!(!g.mul(&Fr::from_u64(2)).is_identity());
    }

    #[test]
    fn double_matches_add() {
        let g = G1::generator();
        assert_eq!(g.double(), g.add(&g));
        assert_eq!(g.double().double(), g.mul(&Fr::from_u64(4)));
    }

    #[test]
    fn add_identity_laws() {
        let g = G1::generator();
        let id = G1::identity();
        assert_eq!(g.add(&id), g);
        assert_eq!(id.add(&g), g);
        assert_eq!(id.add(&id), id);
        assert_eq!(g.add(&g.neg()), id);
    }

    #[test]
    fn mixed_add_matches_full_add() {
        let mut r = rng();
        let p = G1::random(&mut r);
        let q = G1::random(&mut r);
        let q_affine = G1Affine::from(q);
        assert_eq!(p.add_mixed(&q_affine), p.add(&q));
        // Mixed-add doubling branch.
        let p_affine = G1Affine::from(p);
        assert_eq!(p.add_mixed(&p_affine), p.double());
        // Mixed-add inverse branch.
        assert_eq!(p.add_mixed(&p_affine.neg()), G1::identity());
    }

    #[test]
    fn scalar_mul_linear() {
        let g = G1::generator();
        let a = Fr::from_u64(12);
        let b = Fr::from_u64(30);
        assert_eq!(g.mul(&a).add(&g.mul(&b)), g.mul(&a.add(&b)));
        assert_eq!(g.mul(&a).mul(&b), g.mul(&a.mul(&b)));
    }

    #[test]
    fn scalar_mul_zero_and_one() {
        let g = G1::generator();
        assert!(g.mul(&Fr::zero()).is_identity());
        assert_eq!(g.mul(&Fr::one()), g);
    }

    #[test]
    fn scalar_mul_by_r_is_identity_for_random_points() {
        let mut r = rng();
        for _ in 0..3 {
            let p = G1::random(&mut r);
            assert!(p.mul_by_limbs(&params::R.limbs).is_identity());
        }
    }

    #[test]
    fn associativity_random() {
        let mut r = rng();
        let p = G1::random(&mut r);
        let q = G1::random(&mut r);
        let s = G1::random(&mut r);
        assert_eq!(p.add(&q).add(&s), p.add(&q.add(&s)));
    }

    #[test]
    fn commutativity_random() {
        let mut r = rng();
        let p = G1::random(&mut r);
        let q = G1::random(&mut r);
        assert_eq!(p.add(&q), q.add(&p));
    }

    #[test]
    fn affine_roundtrip() {
        let mut r = rng();
        let p = G1::random(&mut r);
        let a = G1Affine::from(p);
        assert!(a.is_on_curve());
        assert_eq!(G1::from(a), p);
    }

    #[test]
    fn hash_to_curve_deterministic_and_distinct() {
        let p1 = hash_to_curve(b"alice");
        let p2 = hash_to_curve(b"alice");
        let p3 = hash_to_curve(b"bob");
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        assert!(p1.is_on_curve());
        assert!(p1.is_torsion_free());
    }

    #[test]
    fn curve_order_structure() {
        // #E(F_q) = q + 1 for the supersingular curve: a random curve
        // point (pre-cofactor-clearing) times q+1 must be the identity.
        // Construct one via the hash-to-curve x-search without clearing.
        let mut ctr = 0u32;
        let point = loop {
            let wide = mabe_crypto::sha256::digest_wide(0x55, &ctr.to_be_bytes());
            let x = Fq::from_be_bytes_reduce(&wide);
            let rhs = x.square().mul(&x).add(&x);
            if let Some(y) = rhs.sqrt() {
                break G1 { x, y, z: Fq::one() };
            }
            ctr += 1;
        };
        // q + 1 = h · r: multiply by h then by r.
        let cleared = point.mul_by_limbs(&params::H.limbs);
        assert!(cleared.mul_by_limbs(&params::R.limbs).is_identity());
    }

    #[test]
    fn off_curve_points_rejected_by_from_bytes() {
        // An x with no valid y (QNR rhs) must fail decompression.
        let mut bytes = vec![0x02u8];
        // Find an x whose rhs is a non-residue.
        let mut v = 2u64;
        loop {
            let x = Fq::from_u64(v);
            let rhs = x.square().mul(&x).add(&x);
            if rhs.sqrt().is_none() {
                bytes.extend_from_slice(&x.to_canonical_bytes());
                break;
            }
            v += 1;
        }
        assert!(G1Affine::from_bytes(&bytes).is_none());
    }

    #[test]
    fn compressed_bytes_roundtrip() {
        let mut r = rng();
        for _ in 0..5 {
            let p = G1Affine::from(G1::random(&mut r));
            let bytes = p.to_bytes();
            assert_eq!(bytes.len(), 65);
            assert_eq!(G1Affine::from_bytes(&bytes), Some(p));
        }
        // Identity.
        let id = G1Affine::identity();
        assert_eq!(G1Affine::from_bytes(&id.to_bytes()), Some(id));
        // Garbage flag.
        let mut bad = G1Affine::generator().to_bytes();
        bad[0] = 0x07;
        assert!(G1Affine::from_bytes(&bad).is_none());
        // Wrong length.
        assert!(G1Affine::from_bytes(&[0u8; 64]).is_none());
    }

    #[test]
    fn negation_roundtrip_bytes() {
        let g = G1Affine::generator();
        let n = g.neg();
        assert_ne!(g.to_bytes(), n.to_bytes());
        assert_eq!(G1Affine::from_bytes(&n.to_bytes()), Some(n));
    }

    #[test]
    fn wnaf_matches_binary() {
        let mut r = rng();
        let p = G1::random(&mut r);
        for _ in 0..10 {
            let k = Fr::random(&mut r);
            assert_eq!(p.mul_wnaf(&k), p.mul_binary(&k));
        }
        assert!(p.mul_wnaf(&Fr::zero()).is_identity());
        assert_eq!(p.mul_wnaf(&Fr::one()), p);
        assert_eq!(p.mul_wnaf(&Fr::from_u64(7)), p.mul_binary(&Fr::from_u64(7)));
        // Negative digits: 2^k - small values exercise the signed path.
        let k = Fr::zero().sub(&Fr::from_u64(3)); // r - 3
        assert_eq!(p.mul_wnaf(&k), p.mul_binary(&k));
    }

    #[test]
    fn wnaf_digit_structure() {
        let digits = super::wnaf_digits(crate::uint::Uint::from_u64(0b10111));
        // Reconstruct the value from the digits.
        let mut value: i128 = 0;
        for &d in digits.iter().rev() {
            value = value * 2 + d as i128;
        }
        assert_eq!(value, 0b10111);
        // No two adjacent nonzero digits; all digits odd or zero, |d| < 8.
        for w in digits.windows(2) {
            assert!(w[0] == 0 || w[1] == 0, "adjacent nonzero digits");
        }
        for &d in &digits {
            assert!(d == 0 || (d % 2 != 0 && d.abs() < 8));
        }
    }

    #[test]
    fn fixed_base_matches_generic_mul() {
        let mut r = rng();
        let p = G1::random(&mut r);
        let fb = FixedBase::new(&p);
        for _ in 0..8 {
            let k = Fr::random(&mut r);
            assert_eq!(fb.mul(&k), p.mul(&k));
        }
        assert!(fb.mul(&Fr::zero()).is_identity());
        assert_eq!(fb.mul(&Fr::one()), p);
        // Low and high digit boundaries.
        assert_eq!(fb.mul(&Fr::from_u64(15)), p.mul(&Fr::from_u64(15)));
        assert_eq!(fb.mul(&Fr::from_u64(16)), p.mul(&Fr::from_u64(16)));
        let top = Fr::zero().sub(&Fr::one()); // r - 1
        assert_eq!(fb.mul(&top), p.mul(&top));
    }

    #[test]
    fn generator_mul_matches() {
        let mut r = rng();
        for _ in 0..5 {
            let k = Fr::random(&mut r);
            assert_eq!(generator_mul(&k), G1::generator().mul(&k));
        }
    }

    #[test]
    fn batch_normalize_matches_individual() {
        let mut r = rng();
        let points: Vec<G1> = (0..5).map(|_| G1::random(&mut r)).collect();
        let batch = batch_normalize(&points);
        for (p, a) in points.iter().zip(batch.iter()) {
            assert_eq!(G1Affine::from(*p), *a);
        }
    }

    #[test]
    fn batch_normalize_handles_identities() {
        let mut r = rng();
        let points = vec![
            G1::identity(),
            G1::random(&mut r),
            G1::identity(),
            G1::random(&mut r),
            G1::identity(),
        ];
        let batch = batch_normalize(&points);
        assert!(batch[0].is_identity());
        assert!(batch[2].is_identity());
        assert!(batch[4].is_identity());
        assert_eq!(batch[1], G1Affine::from(points[1]));
        assert_eq!(batch[3], G1Affine::from(points[3]));
        // All-identity and empty inputs.
        assert!(batch_normalize(&[G1::identity()])[0].is_identity());
        assert!(batch_normalize(&[]).is_empty());
    }

    #[test]
    fn doubling_point_with_y_zero_is_identity() {
        // y = 0 points are 2-torsion; our subgroup has odd order so we
        // construct one directly on the curve: y² = x³+x with y=0 ⇒ x=0.
        let two_torsion = G1 {
            x: Fq::zero(),
            y: Fq::zero(),
            z: Fq::one(),
        };
        assert!(two_torsion.double().is_identity());
    }
}
