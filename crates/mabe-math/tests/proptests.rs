//! Property tests of the math substrate against independent reference
//! semantics (u128 arithmetic for the limb layer; algebraic laws for the
//! fields, the curve and the pairing).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use mabe_math::field::{FieldParams, FrParams};
use mabe_math::uint::{mul_limbs, Uint};
use mabe_math::{generator_mul, Fq, Fr, G1Affine, G1};

fn u2(v: u128) -> Uint<2> {
    Uint {
        limbs: [v as u64, (v >> 64) as u64],
    }
}

fn as_u128(x: &Uint<2>) -> u128 {
    x.limbs[0] as u128 | ((x.limbs[1] as u128) << 64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------- Uint vs u128 reference ----------

    #[test]
    fn adc_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        let (sum, carry) = u2(a).adc(u2(b));
        let (expect, overflow) = a.overflowing_add(b);
        prop_assert_eq!(as_u128(&sum), expect);
        prop_assert_eq!(carry == 1, overflow);
    }

    #[test]
    fn sbb_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        let (diff, borrow) = u2(a).sbb(u2(b));
        let (expect, underflow) = a.overflowing_sub(b);
        prop_assert_eq!(as_u128(&diff), expect);
        prop_assert_eq!(borrow == 1, underflow);
    }

    #[test]
    fn mul_limbs_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let mut out = [0u64; 2];
        mul_limbs(&[a], &[b], &mut out);
        let expect = (a as u128) * (b as u128);
        prop_assert_eq!(as_u128(&Uint { limbs: out }), expect);
    }

    #[test]
    fn ordering_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(u2(a) < u2(b), a < b);
        prop_assert_eq!(u2(a).lt(&u2(b)), a < b);
    }

    #[test]
    fn shr1_matches_u128(a in any::<u128>()) {
        prop_assert_eq!(as_u128(&u2(a).shr1()), a >> 1);
    }

    #[test]
    fn bits_matches_u128(a in any::<u128>()) {
        prop_assert_eq!(u2(a).bits(), (128 - a.leading_zeros()) as usize);
    }

    // ---------- Field laws ----------

    #[test]
    fn from_u64_is_a_homomorphism(a in any::<u32>(), b in any::<u32>()) {
        // Products of u32s fit u64, so no modular wrap interferes.
        let (a64, b64) = (a as u64, b as u64);
        prop_assert_eq!(
            Fr::from_u64(a64).mul(&Fr::from_u64(b64)),
            Fr::from_u64(a64 * b64)
        );
        prop_assert_eq!(
            Fr::from_u64(a64).add(&Fr::from_u64(b64)),
            Fr::from_u64(a64 + b64)
        );
        prop_assert_eq!(
            Fq::from_u64(a64).mul(&Fq::from_u64(b64)),
            Fq::from_u64(a64 * b64)
        );
    }

    #[test]
    fn pow_respects_exponent_addition(seed in any::<u64>(), x in any::<u32>(), y in any::<u32>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Fq::random(&mut rng);
        let lhs = a.pow_vartime(&[x as u64]).mul(&a.pow_vartime(&[y as u64]));
        let rhs = a.pow_vartime(&[x as u64 + y as u64]);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn square_equals_self_mul(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Fq::random(&mut rng);
        prop_assert_eq!(a.square(), a.mul(&a));
        let b = Fr::random(&mut rng);
        prop_assert_eq!(b.square(), b.mul(&b));
    }

    #[test]
    fn fermat_little_theorem(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Fr::random(&mut rng);
        prop_assume!(!a.is_zero());
        // a^(r-1) = 1.
        let exp = FrParams::MODULUS.sbb(Uint::from_u64(1)).0;
        prop_assert_eq!(a.pow_vartime(&exp.limbs), Fr::one());
    }

    #[test]
    fn sqrt_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Fq::random(&mut rng);
        let sq = a.square();
        let root = sq.sqrt().expect("squares have roots");
        prop_assert!(root == a || root == a.neg());
    }

    // ---------- Curve laws ----------

    #[test]
    fn scalar_mul_variants_agree(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = G1::random(&mut rng);
        let k = Fr::random(&mut rng);
        let reference = p.mul_binary(&k);
        prop_assert_eq!(p.mul_wnaf(&k), reference);
        // Fixed base agrees with generic on the generator.
        prop_assert_eq!(generator_mul(&k), G1::generator().mul_binary(&k));
    }

    #[test]
    fn point_arithmetic_consistency(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = G1::random(&mut rng);
        let q = G1::random(&mut rng);
        // (P + Q) - Q = P
        prop_assert_eq!(p.add(&q).add(&q.neg()), p);
        // 2P via add = double
        prop_assert_eq!(p.add(&p), p.double());
        // Compression roundtrip.
        let affine = G1Affine::from(p);
        prop_assert_eq!(G1Affine::from_bytes(&affine.to_bytes()), Some(affine));
    }

    #[test]
    fn distributive_scalars_over_points(a in any::<u32>(), b in any::<u32>(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = G1::random(&mut rng);
        let (fa, fb) = (Fr::from_u64(a as u64), Fr::from_u64(b as u64));
        prop_assert_eq!(p.mul(&fa).add(&p.mul(&fb)), p.mul(&fa.add(&fb)));
    }
}
