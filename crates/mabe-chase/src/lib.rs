//! # mabe-chase
//!
//! Historical baseline: **Chase's multi-authority attribute-based
//! encryption** (TCC 2007) — the first multi-authority ABE and the
//! first row of the paper's Table I. Implemented on the same type-A
//! pairing substrate so the paper's qualitative comparison becomes
//! executable:
//!
//! * **Requires a central authority** that holds the system master key
//!   and the authorities' PRF seeds — and can therefore decrypt
//!   *everything* (pinned by the `central_authority_escrow` test;
//!   the vulnerability the paper's design removes).
//! * **Only strict `AND` of per-authority thresholds**: a ciphertext
//!   names an attribute set per authority, and the decryptor needs
//!   `d_k` of them from **every** authority — no `OR`, no cross-
//!   authority thresholds (structural; see the API).
//! * Collusion resistance comes from the per-GID pseudorandom secret
//!   `y_k(GID)` that each authority's key-polynomial embeds.
//!
//! ## Scheme sketch
//!
//! * System: master `y₀`, `Y = e(g,g)^{y₀}`; per authority `k` and
//!   attribute `i` a secret `t_{k,i}` with public `T_{k,i} = g^{t_{k,i}}`.
//! * Per user (GID) and authority: `y_k(GID) = PRF_k(GID)`, a random
//!   degree-`d_k - 1` polynomial `p` with `p(0) = y_k(GID)`, and keys
//!   `S_{k,i} = g^{p(x_i)/t_{k,i}}` (`x_i` = hashed attribute).
//! * Central key: `D_GID = g^{y₀ - Σ_k y_k(GID)}`.
//! * Encrypt to sets `A_k`: `E₀ = m·Y^s`, `E₁ = g^s`,
//!   `C_{k,i} = T_{k,i}^s`.
//! * Decrypt: interpolate `e(S_{k,i}, C_{k,i}) = e(g,g)^{p(x_i)s}` at 0
//!   per authority, multiply with `e(D_GID, E₁)`, divide out
//!   `e(g,g)^{y₀ s}`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use rand::RngCore;

use mabe_crypto::hmac::HmacSha256;
use mabe_math::{generator_mul, hash_to_fr, pairing, Fr, G1Affine, Gt, G1};
use mabe_policy::{Attribute, AuthorityId};

/// Errors from the Chase scheme.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaseError {
    /// Attribute outside an authority's universe.
    UnknownAttribute(Attribute),
    /// The ciphertext references an authority the system doesn't have.
    UnknownAuthority(AuthorityId),
    /// The user's keys cannot meet some authority's threshold on the
    /// ciphertext's attribute set.
    ThresholdNotMet {
        /// The deficient authority.
        authority: AuthorityId,
        /// Its required threshold `d_k`.
        needed: usize,
        /// Usable attributes the decryptor had.
        had: usize,
    },
    /// A ciphertext must name at least `d_k` attributes per authority.
    CiphertextTooSmall(AuthorityId),
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::UnknownAttribute(a) => write!(f, "attribute {a} is not managed here"),
            ChaseError::UnknownAuthority(a) => write!(f, "unknown authority {a}"),
            ChaseError::ThresholdNotMet {
                authority,
                needed,
                had,
            } => write!(
                f,
                "authority {authority}: need {needed} matching attributes, have {had}"
            ),
            ChaseError::CiphertextTooSmall(a) => {
                write!(f, "ciphertext names fewer than d_k attributes for {a}")
            }
        }
    }
}

impl std::error::Error for ChaseError {}

/// Per-authority configuration: managed attributes and threshold `d_k`.
#[derive(Clone, Debug)]
struct AuthorityState {
    threshold: usize,
    /// `t_{k,i}` per attribute.
    secrets: BTreeMap<Attribute, Fr>,
    /// PRF seed shared with the central authority.
    prf_seed: [u8; 32],
}

/// The complete Chase system — including the central authority's master
/// secret, which is the point: this object *is* the trusted party the
/// paper's scheme eliminates.
pub struct ChaseSystem {
    y0: Fr,
    authorities: BTreeMap<AuthorityId, AuthorityState>,
}

/// Public parameters: `Y` and all `T_{k,i}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChasePublicKeys {
    /// `Y = e(g,g)^{y₀}`.
    pub y: Gt,
    /// `T_{k,i} = g^{t_{k,i}}` per attribute.
    pub attr_keys: BTreeMap<Attribute, G1Affine>,
    /// Thresholds `d_k` (public system parameters, fixed at setup).
    pub thresholds: BTreeMap<AuthorityId, usize>,
}

/// A user's full key bundle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaseUserKey {
    /// The key holder's global identifier.
    pub gid: String,
    /// `S_{k,i} = g^{p_k(x_i)/t_{k,i}}`.
    pub attr_keys: BTreeMap<Attribute, G1Affine>,
    /// The central key `D_GID = g^{y₀ - Σ_k y_k(GID)}`.
    pub central: G1Affine,
}

/// A Chase ciphertext.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaseCiphertext {
    /// `E₀ = m · Y^s`.
    pub e0: Gt,
    /// `E₁ = g^s`.
    pub e1: G1Affine,
    /// `C_{k,i} = T_{k,i}^s` for every named attribute.
    pub components: BTreeMap<Attribute, G1Affine>,
}

impl ChaseCiphertext {
    /// Wire size in bytes with the workspace's element accounting
    /// (`|G_T| + (l + 1)·|G|`; `|G|` = 65 B, `|G_T|` = 128 B).
    pub fn wire_size(&self) -> usize {
        128 + (self.components.len() + 1) * 65
    }
}

impl ChaseUserKey {
    /// Wire size in bytes (`(n + 1)·|G|`).
    pub fn wire_size(&self) -> usize {
        (self.attr_keys.len() + 1) * 65
    }
}

fn prf(seed: &[u8; 32], gid: &str) -> Fr {
    let tag = HmacSha256::mac(seed, gid.as_bytes());
    let wide = mabe_crypto::sha256::digest_wide(0x20, &tag);
    Fr::from_be_bytes_reduce(&wide)
}

fn attr_point(attr: &Attribute) -> Fr {
    hash_to_fr(&attr.canonical_bytes())
}

impl ChaseSystem {
    /// Global + authority setup: each `(name, attributes, d_k)` becomes
    /// one authority. The central master `y₀` and all PRF seeds live in
    /// the returned system object.
    ///
    /// # Panics
    ///
    /// Panics if any `d_k` is zero or exceeds the attribute count.
    pub fn setup<R, S>(spec: &[(&str, &[S], usize)], rng: &mut R) -> Self
    where
        R: RngCore + ?Sized,
        S: AsRef<str>,
    {
        let mut authorities = BTreeMap::new();
        for (name, attrs, d) in spec {
            assert!(
                *d >= 1 && *d <= attrs.len(),
                "threshold out of range for {name}"
            );
            let aid = AuthorityId::new(*name);
            let secrets = attrs
                .iter()
                .map(|a| (Attribute::new(a.as_ref(), aid.clone()), nonzero(rng)))
                .collect();
            let mut prf_seed = [0u8; 32];
            rng.fill_bytes(&mut prf_seed);
            authorities.insert(
                aid,
                AuthorityState {
                    threshold: *d,
                    secrets,
                    prf_seed,
                },
            );
        }
        ChaseSystem {
            y0: nonzero(rng),
            authorities,
        }
    }

    /// Publishes the system public keys.
    pub fn public_keys(&self) -> ChasePublicKeys {
        let mut attr_keys = BTreeMap::new();
        let mut thresholds = BTreeMap::new();
        for (aid, state) in &self.authorities {
            thresholds.insert(aid.clone(), state.threshold);
            for (attr, t) in &state.secrets {
                attr_keys.insert(attr.clone(), G1Affine::from(generator_mul(t)));
            }
        }
        ChasePublicKeys {
            y: Gt::generator().pow(&self.y0),
            attr_keys,
            thresholds,
        }
    }

    /// Issues a user's complete key bundle for the given attribute set
    /// (attributes grouped by their authorities automatically).
    ///
    /// # Errors
    ///
    /// Fails on attributes outside any authority's universe.
    pub fn keygen<R: RngCore + ?Sized>(
        &self,
        gid: &str,
        attrs: &BTreeSet<Attribute>,
        rng: &mut R,
    ) -> Result<ChaseUserKey, ChaseError> {
        let mut attr_keys = BTreeMap::new();
        let mut y_sum = Fr::zero();
        for (aid, state) in &self.authorities {
            let y_gid = prf(&state.prf_seed, gid);
            y_sum = y_sum.add(&y_gid);
            // Degree d_k - 1 polynomial with p(0) = y_k(GID).
            let mut coeffs = vec![y_gid];
            for _ in 1..state.threshold {
                coeffs.push(Fr::random(rng));
            }
            for attr in attrs.iter().filter(|a| a.authority() == aid) {
                let t = state
                    .secrets
                    .get(attr)
                    .ok_or_else(|| ChaseError::UnknownAttribute((*attr).clone()))?;
                let x = attr_point(attr);
                let p_x = eval_poly(&coeffs, &x);
                let exp = p_x.mul(&t.invert().expect("t nonzero"));
                attr_keys.insert(attr.clone(), G1Affine::from(generator_mul(&exp)));
            }
        }
        // Reject attributes under authorities the system doesn't know.
        for attr in attrs {
            if !self.authorities.contains_key(attr.authority()) {
                return Err(ChaseError::UnknownAuthority(attr.authority().clone()));
            }
        }
        let central = G1Affine::from(generator_mul(&self.y0.sub(&y_sum)));
        Ok(ChaseUserKey {
            gid: gid.to_owned(),
            attr_keys,
            central,
        })
    }

    /// Convenience: decryption by the central authority itself — it
    /// needs **no** attribute keys at all. This is the escrow weakness
    /// the paper's design eliminates.
    pub fn central_decrypt(&self, ct: &ChaseCiphertext) -> Gt {
        // e(g^s, g)^{y0} = Y^s
        let blind = pairing(&ct.e1, &G1Affine::generator()).pow(&self.y0);
        ct.e0.div(&blind)
    }
}

fn eval_poly(coeffs: &[Fr], x: &Fr) -> Fr {
    let mut acc = Fr::zero();
    for c in coeffs.iter().rev() {
        acc = acc.mul(x).add(c);
    }
    acc
}

fn nonzero<R: RngCore + ?Sized>(rng: &mut R) -> Fr {
    loop {
        let candidate = Fr::random(rng);
        if !candidate.is_zero() {
            return candidate;
        }
    }
}

/// Encrypts `m` to the named attribute sets — semantically the strict
/// policy `AND_k ( d_k of A_k )` over **all** authorities in the system
/// (Chase's scheme cannot express anything else).
///
/// # Errors
///
/// Fails if some authority's named set is smaller than its threshold or
/// an attribute has no public key.
pub fn encrypt<R: RngCore + ?Sized>(
    message: &Gt,
    named: &BTreeSet<Attribute>,
    pks: &ChasePublicKeys,
    rng: &mut R,
) -> Result<ChaseCiphertext, ChaseError> {
    // Every system authority must be covered with >= d_k attributes.
    for (aid, d) in &pks.thresholds {
        let count = named.iter().filter(|a| a.authority() == aid).count();
        if count < *d {
            return Err(ChaseError::CiphertextTooSmall(aid.clone()));
        }
    }
    let s = nonzero(rng);
    let e0 = message.mul(&pks.y.pow(&s));
    let e1 = G1Affine::from(generator_mul(&s));
    let mut projective = Vec::with_capacity(named.len());
    let mut order = Vec::with_capacity(named.len());
    for attr in named {
        let t_pub = pks
            .attr_keys
            .get(attr)
            .ok_or_else(|| ChaseError::UnknownAttribute(attr.clone()))?;
        projective.push(G1::from(*t_pub).mul(&s));
        order.push(attr.clone());
    }
    let affine = mabe_math::batch_normalize(&projective);
    let components = order.into_iter().zip(affine).collect();
    Ok(ChaseCiphertext { e0, e1, components })
}

/// Lagrange coefficient `Δ_i(0)` for interpolation point `i` over `xs`.
fn lagrange_at_zero(xs: &[Fr], i: usize) -> Fr {
    let mut num = Fr::one();
    let mut den = Fr::one();
    for (j, xj) in xs.iter().enumerate() {
        if j != i {
            // Δ_i(0) = Π (0 - x_j) / (x_i - x_j)
            num = num.mul(&xj.neg());
            den = den.mul(&xs[i].sub(xj));
        }
    }
    num.mul(&den.invert().expect("distinct interpolation points"))
}

/// Decrypts a ciphertext with a user's key bundle.
///
/// # Errors
///
/// [`ChaseError::ThresholdNotMet`] if, for any authority, fewer than
/// `d_k` of the ciphertext's named attributes are covered by the key.
pub fn decrypt(
    ct: &ChaseCiphertext,
    key: &ChaseUserKey,
    pks: &ChasePublicKeys,
) -> Result<Gt, ChaseError> {
    let mut blind = pairing(&key.central, &ct.e1);
    for (aid, d) in &pks.thresholds {
        let usable: Vec<&Attribute> = ct
            .components
            .keys()
            .filter(|a| a.authority() == aid && key.attr_keys.contains_key(*a))
            .take(*d)
            .collect();
        if usable.len() < *d {
            return Err(ChaseError::ThresholdNotMet {
                authority: aid.clone(),
                needed: *d,
                had: usable.len(),
            });
        }
        let xs: Vec<Fr> = usable.iter().map(|a| attr_point(a)).collect();
        for (i, attr) in usable.iter().enumerate() {
            let share = pairing(&key.attr_keys[*attr], &ct.components[*attr]);
            blind = blind.mul(&share.pow(&lagrange_at_zero(&xs, i)));
        }
    }
    Ok(ct.e0.div(&blind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(20070101)
    }

    fn attrset(items: &[&str]) -> BTreeSet<Attribute> {
        items.iter().map(|s| s.parse().unwrap()).collect()
    }

    /// Two authorities: Med needs 2-of-named, Trial needs 1-of-named.
    fn system(r: &mut StdRng) -> (ChaseSystem, ChasePublicKeys) {
        let sys = ChaseSystem::setup(
            &[
                ("Med", &["Doctor", "Nurse", "Surgeon"], 2),
                ("Trial", &["Researcher", "Sponsor"], 1),
            ],
            r,
        );
        let pks = sys.public_keys();
        (sys, pks)
    }

    #[test]
    fn roundtrip() {
        let mut r = rng();
        let (sys, pks) = system(&mut r);
        let msg = Gt::random(&mut r);
        let named = attrset(&["Doctor@Med", "Nurse@Med", "Researcher@Trial"]);
        let ct = encrypt(&msg, &named, &pks, &mut r).unwrap();

        let key = sys
            .keygen(
                "alice",
                &attrset(&["Doctor@Med", "Nurse@Med", "Researcher@Trial"]),
                &mut r,
            )
            .unwrap();
        assert_eq!(decrypt(&ct, &key, &pks).unwrap(), msg);
    }

    #[test]
    fn below_threshold_fails() {
        let mut r = rng();
        let (sys, pks) = system(&mut r);
        let msg = Gt::random(&mut r);
        let named = attrset(&["Doctor@Med", "Nurse@Med", "Researcher@Trial"]);
        let ct = encrypt(&msg, &named, &pks, &mut r).unwrap();
        // Only 1 Med attribute (needs 2).
        let key = sys
            .keygen("bob", &attrset(&["Doctor@Med", "Researcher@Trial"]), &mut r)
            .unwrap();
        assert!(matches!(
            decrypt(&ct, &key, &pks),
            Err(ChaseError::ThresholdNotMet {
                needed: 2,
                had: 1,
                ..
            })
        ));
    }

    #[test]
    fn strict_and_no_or_across_authorities() {
        // Table I: Chase07 supports only 'AND' — a user fully covered at
        // Med but empty at Trial fails, there is no OR to fall through.
        let mut r = rng();
        let (sys, pks) = system(&mut r);
        let msg = Gt::random(&mut r);
        let named = attrset(&["Doctor@Med", "Nurse@Med", "Researcher@Trial"]);
        let ct = encrypt(&msg, &named, &pks, &mut r).unwrap();
        let key = sys
            .keygen("carol", &attrset(&["Doctor@Med", "Nurse@Med"]), &mut r)
            .unwrap();
        assert!(matches!(
            decrypt(&ct, &key, &pks),
            Err(ChaseError::ThresholdNotMet { .. })
        ));
    }

    #[test]
    fn central_authority_escrow() {
        // Table I: Chase07 REQUIRES a central authority — and that
        // authority decrypts everything with no attribute keys. This is
        // the vulnerability the Yang–Jia design removes.
        let mut r = rng();
        let (sys, pks) = system(&mut r);
        let msg = Gt::random(&mut r);
        let named = attrset(&["Doctor@Med", "Nurse@Med", "Researcher@Trial"]);
        let ct = encrypt(&msg, &named, &pks, &mut r).unwrap();
        assert_eq!(sys.central_decrypt(&ct), msg);
    }

    #[test]
    fn collusion_fails() {
        // Alice has the Med side, Bob has the Trial side; swapping key
        // components cannot decrypt because the per-GID polynomials and
        // central keys don't mix.
        let mut r = rng();
        let (sys, pks) = system(&mut r);
        let msg = Gt::random(&mut r);
        let named = attrset(&["Doctor@Med", "Nurse@Med", "Researcher@Trial"]);
        let ct = encrypt(&msg, &named, &pks, &mut r).unwrap();

        let alice = sys
            .keygen("alice", &attrset(&["Doctor@Med", "Nurse@Med"]), &mut r)
            .unwrap();
        let bob = sys
            .keygen("bob", &attrset(&["Researcher@Trial"]), &mut r)
            .unwrap();

        // Pool: Alice's attribute keys + Bob's Trial key, try both
        // central keys.
        for central in [alice.central, bob.central] {
            let mut pooled = alice.attr_keys.clone();
            pooled.extend(bob.attr_keys.clone());
            let franken = ChaseUserKey {
                gid: "franken".into(),
                attr_keys: pooled,
                central,
            };
            let result = decrypt(&ct, &franken, &pks).unwrap();
            assert_ne!(result, msg, "collusion must fail");
        }
    }

    #[test]
    fn encrypt_validates_coverage() {
        let mut r = rng();
        let (_sys, pks) = system(&mut r);
        let msg = Gt::random(&mut r);
        // Missing Trial entirely.
        assert!(matches!(
            encrypt(&msg, &attrset(&["Doctor@Med", "Nurse@Med"]), &pks, &mut r),
            Err(ChaseError::CiphertextTooSmall(_))
        ));
        // Only one Med attribute named (d = 2).
        assert!(matches!(
            encrypt(
                &msg,
                &attrset(&["Doctor@Med", "Researcher@Trial"]),
                &pks,
                &mut r
            ),
            Err(ChaseError::CiphertextTooSmall(_))
        ));
    }

    #[test]
    fn keygen_rejects_unknown() {
        let mut r = rng();
        let (sys, _pks) = system(&mut r);
        assert!(matches!(
            sys.keygen("alice", &attrset(&["Pilot@Med"]), &mut r),
            Err(ChaseError::UnknownAttribute(_))
        ));
        assert!(matches!(
            sys.keygen("alice", &attrset(&["X@Nowhere"]), &mut r),
            Err(ChaseError::UnknownAuthority(_))
        ));
    }

    #[test]
    fn different_users_different_keys_same_access() {
        let mut r = rng();
        let (sys, pks) = system(&mut r);
        let msg = Gt::random(&mut r);
        let named = attrset(&["Doctor@Med", "Nurse@Med", "Researcher@Trial"]);
        let ct = encrypt(&msg, &named, &pks, &mut r).unwrap();
        let set = attrset(&["Doctor@Med", "Nurse@Med", "Researcher@Trial"]);
        let k1 = sys.keygen("u1", &set, &mut r).unwrap();
        let k2 = sys.keygen("u2", &set, &mut r).unwrap();
        assert_ne!(k1.central, k2.central);
        assert_eq!(decrypt(&ct, &k1, &pks).unwrap(), msg);
        assert_eq!(decrypt(&ct, &k2, &pks).unwrap(), msg);
    }

    #[test]
    fn lagrange_interpolation_sanity() {
        // p(x) = 7 + 3x over points x = 1, 2: interpolate p(0) = 7.
        let xs = [Fr::from_u64(1), Fr::from_u64(2)];
        let p = |x: &Fr| Fr::from_u64(7).add(&Fr::from_u64(3).mul(x));
        let mut acc = Fr::zero();
        for (i, x) in xs.iter().enumerate() {
            acc = acc.add(&p(x).mul(&lagrange_at_zero(&xs, i)));
        }
        assert_eq!(acc, Fr::from_u64(7));
    }

    #[test]
    fn prf_is_deterministic_and_user_separated() {
        let seed = [9u8; 32];
        assert_eq!(prf(&seed, "alice"), prf(&seed, "alice"));
        assert_ne!(prf(&seed, "alice"), prf(&seed, "bob"));
        assert_ne!(prf(&[1u8; 32], "alice"), prf(&[2u8; 32], "alice"));
    }
}
