//! The propagated trace context.

/// Identity of one span inside one trace: the ids that let a child be
/// stitched under its parent after the fact.
///
/// Contexts are plain `Copy` data so they can be threaded through
/// `CloudSystem`/`DurableSystem` call chains, captured before a
/// thread boundary, and re-entered on the other side with
/// [`crate::Span::follow`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// The causal tree this span belongs to. Allocated once per root
    /// span; every descendant inherits it.
    pub trace_id: u64,
    /// This span's own id, unique process-wide.
    pub span_id: u64,
    /// The parent span's id, or [`TraceCtx::NO_PARENT`] for a root.
    pub parent_id: u64,
}

impl TraceCtx {
    /// The `parent_id` of a root span.
    pub const NO_PARENT: u64 = 0;

    /// Whether this span is a trace root.
    pub fn is_root(&self) -> bool {
        self.parent_id == Self::NO_PARENT
    }

    /// The context a child span of this one would carry (ids still to
    /// be allocated): same trace, this span as parent.
    pub fn child_of(&self, span_id: u64) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            span_id,
            parent_id: self.span_id,
        }
    }
}
