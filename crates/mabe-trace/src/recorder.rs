//! The flight recorder: a bounded ring of completed spans.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::ctx::TraceCtx;
use crate::event::TraceEvent;

/// Spans the default global recorder retains.
pub const DEFAULT_CAPACITY: usize = 4096;

/// One completed span as the recorder keeps it.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Commit order (monotone across the process); survives ring
    /// wrap-around so exports stay chronologically sorted.
    pub seq: u64,
    /// The span's identity in its trace tree.
    pub ctx: TraceCtx,
    /// Operation name (static so hot paths never allocate for it).
    pub name: &'static str,
    /// Free-form qualifier (record name, uid, attribute, …).
    pub detail: String,
    /// Start, microseconds since the process trace epoch.
    pub start_us: u64,
    /// Wall duration in microseconds.
    pub dur_us: u64,
    /// Error message if the span was failed.
    pub error: Option<String>,
    /// Timed events attached while the span was live.
    pub events: Vec<(u64, TraceEvent)>,
}

impl SpanRecord {
    /// Events of one kind label, in order.
    pub fn events_of(&self, kind: &str) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|(_, e)| e.kind() == kind)
            .map(|(_, e)| e)
            .collect()
    }
}

/// A lock-free bounded ring buffer of the last N completed spans.
///
/// Writers claim a slot with a single `fetch_add` on the head counter,
/// then store into that slot under its own (uncontended) mutex — two
/// commits only touch the same lock when they are exactly `capacity`
/// commits apart. Readers snapshot by walking every slot; a snapshot
/// taken during heavy writing sees each slot's last fully-committed
/// span, never a torn one.
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: AtomicBool,
    next_span_id: AtomicU64,
    next_trace_id: AtomicU64,
    head: AtomicU64,
    dropped_events: AtomicU64,
    slots: Box<[Mutex<Option<SpanRecord>>]>,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` spans (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let slots = (0..capacity)
            .map(|_| Mutex::new(None))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        FlightRecorder {
            enabled: AtomicBool::new(true),
            next_span_id: AtomicU64::new(1),
            next_trace_id: AtomicU64::new(1),
            head: AtomicU64::new(0),
            dropped_events: AtomicU64::new(0),
            slots,
        }
    }

    /// Whether the recorder is capturing.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns capturing on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Spans the ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans committed over the recorder's lifetime.
    pub fn committed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Spans overwritten by ring wrap-around.
    pub fn dropped_spans(&self) -> u64 {
        self.committed().saturating_sub(self.slots.len() as u64)
    }

    /// Events dropped because a span hit its per-span event cap.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events.load(Ordering::Relaxed)
    }

    pub(crate) fn note_dropped_event(&self) {
        self.dropped_events.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn alloc_span_id(&self) -> u64 {
        self.next_span_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn alloc_trace_id(&self) -> u64 {
        self.next_trace_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Commits one completed span into the ring.
    pub fn commit(&self, mut record: SpanRecord) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        record.seq = seq;
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *slot.lock().expect("recorder slot poisoned") = Some(record);
    }

    /// Every retained span, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().expect("recorder slot poisoned").clone())
            .collect();
        spans.sort_by_key(|s| s.seq);
        spans
    }

    /// The most recent `n` retained spans, oldest first. This is the
    /// direct accessor live consumers (the `/tracez` endpoint, tests)
    /// use — no `MABE_TRACE_DIR` file round-trip required.
    pub fn recent(&self, n: usize) -> Vec<SpanRecord> {
        let mut spans = self.snapshot();
        if spans.len() > n {
            spans.drain(..spans.len() - n);
        }
        spans
    }

    /// Empties the ring (ids and counters keep advancing). Benches and
    /// examples use this to start a clean capture; tests sharing the
    /// global recorder should filter by trace id instead.
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            *slot.lock().expect("recorder slot poisoned") = None;
        }
    }
}

static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The process-wide flight recorder.
pub fn global() -> &'static FlightRecorder {
    GLOBAL.get_or_init(|| FlightRecorder::with_capacity(DEFAULT_CAPACITY))
}

/// Microseconds since the first trace activity in this process.
pub(crate) fn now_us() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &'static str, trace: u64, span: u64) -> SpanRecord {
        SpanRecord {
            seq: 0,
            ctx: TraceCtx {
                trace_id: trace,
                span_id: span,
                parent_id: TraceCtx::NO_PARENT,
            },
            name,
            detail: String::new(),
            start_us: 0,
            dur_us: 1,
            error: None,
            events: Vec::new(),
        }
    }

    #[test]
    fn ring_keeps_only_the_last_capacity_spans() {
        let rec = FlightRecorder::with_capacity(4);
        for i in 0..10 {
            rec.commit(record("op", 1, i + 1));
        }
        let spans = rec.snapshot();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans.first().unwrap().seq, 6, "oldest surviving commit");
        assert_eq!(spans.last().unwrap().seq, 9);
        assert_eq!(rec.committed(), 10);
        assert_eq!(rec.dropped_spans(), 6);
    }

    #[test]
    fn concurrent_commits_all_land() {
        let rec = std::sync::Arc::new(FlightRecorder::with_capacity(1024));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        rec.commit(record("op", t + 1, t * 100 + i + 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.committed(), 800);
        let spans = rec.snapshot();
        assert_eq!(spans.len(), 800);
        let seqs: Vec<u64> = spans.iter().map(|s| s.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "snapshot is sorted");
    }

    #[test]
    fn recent_returns_the_tail_oldest_first() {
        let rec = FlightRecorder::with_capacity(8);
        for i in 0..6 {
            rec.commit(record("op", 1, i + 1));
        }
        let tail = rec.recent(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 4);
        assert_eq!(tail[1].seq, 5);
        assert_eq!(rec.recent(100).len(), 6, "n past the ring is clamped");
        assert!(rec.recent(0).is_empty());
    }

    #[test]
    fn clear_empties_without_resetting_seq() {
        let rec = FlightRecorder::with_capacity(8);
        rec.commit(record("a", 1, 1));
        rec.clear();
        assert!(rec.snapshot().is_empty());
        rec.commit(record("b", 1, 2));
        assert_eq!(rec.snapshot()[0].seq, 1);
    }
}
