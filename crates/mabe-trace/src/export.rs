//! Exporters over a span snapshot.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::ctx::TraceCtx;
use crate::recorder::SpanRecord;

/// JSON string-escapes `s` (quotes, backslashes, control characters).
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders `spans` as Chrome `trace_event` JSON (the "JSON array
/// format"): one `ph:"X"` complete event per span and one `ph:"i"`
/// instant event per attached [`crate::TraceEvent`]. Load the output
/// in `chrome://tracing` or Perfetto; traces appear as rows (`tid` is
/// the trace id), spans nest by timestamp.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for span in spans {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"trace_id\":{},\"span_id\":{},\
             \"parent_id\":{},\"detail\":\"{}\",\"error\":{}}}}}",
            esc(span.name),
            span.start_us,
            span.dur_us.max(1),
            span.ctx.trace_id,
            span.ctx.trace_id,
            span.ctx.span_id,
            span.ctx.parent_id,
            esc(&span.detail),
            match &span.error {
                Some(e) => format!("\"{}\"", esc(e)),
                None => "null".to_owned(),
            },
        );
        for (ts, ev) in &span.events {
            let _ = write!(
                out,
                ",\n{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":{ts},\
                 \"pid\":1,\"tid\":{},\"s\":\"t\",\"args\":{}}}",
                esc(ev.kind()),
                span.ctx.trace_id,
                ev.args_json(),
            );
        }
    }
    out.push_str("\n]\n");
    out
}

fn span_tree_json(span: &SpanRecord, children: &BTreeMap<u64, Vec<&SpanRecord>>) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"span_id\":{},\"parent_id\":{},\"detail\":\"{}\",\
         \"start_us\":{},\"dur_us\":{},\"error\":{},\"events\":[",
        esc(span.name),
        span.ctx.span_id,
        span.ctx.parent_id,
        esc(&span.detail),
        span.start_us,
        span.dur_us,
        match &span.error {
            Some(e) => format!("\"{}\"", esc(e)),
            None => "null".to_owned(),
        },
    );
    for (i, (ts, ev)) in span.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"t_us\":{ts},\"kind\":\"{}\",\"args\":{}}}",
            esc(ev.kind()),
            ev.args_json()
        );
    }
    out.push_str("],\"children\":[");
    for (i, child) in children
        .get(&span.ctx.span_id)
        .map(Vec::as_slice)
        .unwrap_or_default()
        .iter()
        .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&span_tree_json(child, children));
    }
    out.push_str("]}");
    out
}

/// Renders `spans` as a self-describing parent/child forest, grouped
/// by trace:
///
/// ```json
/// {"format":"mabe-trace/v1","traces":[{"trace_id":1,"roots":[...]}]}
/// ```
///
/// A span whose parent was already overwritten by ring wrap-around is
/// promoted to a root of its trace rather than dropped.
pub fn tree_json(spans: &[SpanRecord]) -> String {
    let present: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.ctx.span_id).collect();
    let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    let mut traces: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for span in spans {
        if span.ctx.parent_id != TraceCtx::NO_PARENT && present.contains(&span.ctx.parent_id) {
            children.entry(span.ctx.parent_id).or_default().push(span);
        } else {
            traces.entry(span.ctx.trace_id).or_default().push(span);
        }
    }
    let mut out = String::from("{\"format\":\"mabe-trace/v1\",\"traces\":[");
    for (i, (trace_id, roots)) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"trace_id\":{trace_id},\"roots\":[");
        for (j, root) in roots.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&span_tree_json(root, &children));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    /// Minimal JSON well-formedness check: balanced structure, legal
    /// string escapes, non-empty. Not a full parser — enough to catch
    /// a broken exporter.
    pub(crate) fn assert_well_formed_json(s: &str) {
        let bytes = s.as_bytes();
        let mut depth: i64 = 0;
        let mut stack = Vec::new();
        let mut in_str = false;
        let mut escaped = false;
        for &b in bytes {
            if in_str {
                if escaped {
                    assert!(
                        matches!(
                            b,
                            b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' | b'u'
                        ),
                        "illegal escape \\{} in {s}",
                        b as char
                    );
                    escaped = false;
                } else if b == b'\\' {
                    escaped = true;
                } else if b == b'"' {
                    in_str = false;
                } else {
                    assert!(b >= 0x20, "raw control byte {b:#04x} inside string");
                }
                continue;
            }
            match b {
                b'"' => in_str = true,
                b'{' | b'[' => {
                    depth += 1;
                    stack.push(b);
                }
                b'}' => {
                    assert_eq!(stack.pop(), Some(b'{'), "mismatched }} in {s}");
                    depth -= 1;
                }
                b']' => {
                    assert_eq!(stack.pop(), Some(b'['), "mismatched ] in {s}");
                    depth -= 1;
                }
                _ => {}
            }
        }
        assert!(!in_str, "unterminated string");
        assert_eq!(depth, 0, "unbalanced brackets");
        assert!(!s.trim().is_empty());
    }

    fn sample() -> Vec<SpanRecord> {
        let root = SpanRecord {
            seq: 0,
            ctx: TraceCtx {
                trace_id: 9,
                span_id: 1,
                parent_id: 0,
            },
            name: "revoke",
            detail: "alice / Doctor@MedOrg \"quoted\"\nline".into(),
            start_us: 10,
            dur_us: 100,
            error: None,
            events: vec![
                (
                    12,
                    TraceEvent::FaultInjected {
                        point: "revoke.rekey",
                        kind: "authority_down",
                        hit: 1,
                    },
                ),
                (
                    15,
                    TraceEvent::RetryAttempt {
                        op: "t",
                        attempt: 1,
                    },
                ),
            ],
        };
        let child = SpanRecord {
            seq: 1,
            ctx: TraceCtx {
                trace_id: 9,
                span_id: 2,
                parent_id: 1,
            },
            name: "reencrypt",
            detail: String::new(),
            start_us: 40,
            dur_us: 20,
            error: Some("boom".into()),
            events: Vec::new(),
        };
        vec![root, child]
    }

    #[test]
    fn chrome_trace_is_well_formed_and_complete() {
        let out = chrome_trace(&sample());
        assert_well_formed_json(&out);
        assert!(out.trim_start().starts_with('['));
        assert!(out.contains("\"ph\":\"X\""), "complete events present");
        assert!(out.contains("\"ph\":\"i\""), "instant events present");
        assert!(out.contains("\"name\":\"revoke\""));
        assert!(out.contains("\"name\":\"fault_injected\""));
        assert!(out.contains("\\\"quoted\\\""), "details are escaped");
        assert!(!out.contains("alice / Doctor@MedOrg \"quoted\"\nline"));
    }

    #[test]
    fn tree_json_nests_children_under_parents() {
        let out = tree_json(&sample());
        assert_well_formed_json(&out);
        let revoke = out.find("\"name\":\"revoke\"").unwrap();
        let reenc = out.find("\"name\":\"reencrypt\"").unwrap();
        assert!(reenc > revoke, "child rendered inside parent");
        assert_eq!(out.matches("\"trace_id\":9").count(), 1, "one trace group");
        assert!(out.contains("\"error\":\"boom\""));
        assert!(out.contains("\"kind\":\"retry_attempt\""));
    }

    #[test]
    fn orphaned_spans_are_promoted_to_roots() {
        let mut spans = sample();
        spans.remove(0); // parent evicted by wrap-around
        let out = tree_json(&spans);
        assert_well_formed_json(&out);
        assert!(out.contains("\"name\":\"reencrypt\""), "orphan survives");
    }

    #[test]
    fn escapes_cover_quotes_backslashes_and_newlines() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
