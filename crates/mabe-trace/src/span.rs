//! RAII spans and the thread-local context stack.
//!
//! Context propagation rules:
//!
//! 1. [`Span::root`] starts a new trace; [`Span::child`] nests under
//!    the thread's current span (falling back to a root when there is
//!    none), so straight-line call chains need no explicit plumbing.
//! 2. Crossing a thread (or any other boundary the stack can't see),
//!    capture [`current_ctx`] on one side and re-enter with
//!    [`Span::follow`] on the other.
//! 3. [`event`] attaches to whichever span is innermost on the calling
//!    thread — this is how the fault injector, retry loop, and WAL
//!    report into spans they never opened.

use std::cell::RefCell;

use crate::ctx::TraceCtx;
use crate::event::TraceEvent;
use crate::recorder::{self, SpanRecord};

/// Events one span retains before dropping the excess (counted by
/// [`crate::FlightRecorder::dropped_events`]).
const MAX_EVENTS_PER_SPAN: usize = 1024;

struct LiveSpan {
    ctx: TraceCtx,
    name: &'static str,
    detail: String,
    start_us: u64,
    error: Option<String>,
    events: Vec<(u64, TraceEvent)>,
}

thread_local! {
    static STACK: RefCell<Vec<LiveSpan>> = const { RefCell::new(Vec::new()) };
}

/// An open span. Dropping it commits the span (and any still-open
/// descendants, innermost first) to the flight recorder.
#[must_use = "a span measures the scope it is alive for"]
pub struct Span {
    /// `None` when tracing was disabled at creation: the guard is then
    /// a pure no-op.
    ctx: Option<TraceCtx>,
}

impl Span {
    /// Starts a new trace with this span as its root.
    pub fn root(name: &'static str) -> Span {
        if !crate::enabled() {
            return Span { ctx: None };
        }
        Span::open(name, None)
    }

    /// Starts a span under the thread's current span, or a new root
    /// when no span is active.
    pub fn child(name: &'static str) -> Span {
        if !crate::enabled() {
            return Span { ctx: None };
        }
        let parent = current_ctx();
        Span::open(name, parent)
    }

    /// Continues `parent`'s trace on this thread (explicit
    /// propagation across a boundary the thread-local stack can't
    /// follow).
    pub fn follow(parent: TraceCtx, name: &'static str) -> Span {
        if !crate::enabled() {
            return Span { ctx: None };
        }
        Span::open(name, Some(parent))
    }

    fn open(name: &'static str, parent: Option<TraceCtx>) -> Span {
        let rec = recorder::global();
        let span_id = rec.alloc_span_id();
        let ctx = match parent {
            Some(p) => p.child_of(span_id),
            None => TraceCtx {
                trace_id: rec.alloc_trace_id(),
                span_id,
                parent_id: TraceCtx::NO_PARENT,
            },
        };
        STACK.with(|stack| {
            stack.borrow_mut().push(LiveSpan {
                ctx,
                name,
                detail: String::new(),
                start_us: recorder::now_us(),
                error: None,
                events: Vec::new(),
            });
        });
        if let Some(sink) = crate::sink::sink() {
            sink.on_open(&ctx, name);
        }
        Span { ctx: Some(ctx) }
    }

    /// This span's context, for explicit propagation. `None` when the
    /// span was opened with tracing disabled.
    pub fn ctx(&self) -> Option<TraceCtx> {
        self.ctx
    }

    /// Attaches a free-form qualifier (record name, uid, attribute)
    /// shown by both exporters.
    pub fn detail(self, detail: impl Into<String>) -> Self {
        if let Some(ctx) = self.ctx {
            let detail = detail.into();
            STACK.with(|stack| {
                if let Some(live) = stack
                    .borrow_mut()
                    .iter_mut()
                    .rev()
                    .find(|l| l.ctx.span_id == ctx.span_id)
                {
                    live.detail = detail;
                }
            });
        }
        self
    }

    /// Marks the span failed with `msg` (kept alongside its events in
    /// the record).
    pub fn fail(&self, msg: impl Into<String>) {
        if let Some(ctx) = self.ctx {
            let msg = msg.into();
            STACK.with(|stack| {
                if let Some(live) = stack
                    .borrow_mut()
                    .iter_mut()
                    .rev()
                    .find(|l| l.ctx.span_id == ctx.span_id)
                {
                    live.error = Some(msg);
                }
            });
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(ctx) = self.ctx else { return };
        let end_us = recorder::now_us();
        let closed: Vec<LiveSpan> = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            match stack.iter().rposition(|l| l.ctx.span_id == ctx.span_id) {
                // Close this span and any descendants whose guards
                // were leaked (e.g. by a panic unwinding past them).
                Some(pos) => stack.split_off(pos),
                None => Vec::new(),
            }
        });
        let rec = recorder::global();
        for live in closed.into_iter().rev() {
            let record = SpanRecord {
                seq: 0,
                ctx: live.ctx,
                name: live.name,
                detail: live.detail,
                start_us: live.start_us,
                dur_us: end_us.saturating_sub(live.start_us),
                error: live.error,
                events: live.events,
            };
            if let Some(sink) = crate::sink::sink() {
                sink.on_close(&record);
            }
            rec.commit(record);
        }
    }
}

/// The innermost active span's context on this thread, if any.
pub fn current_ctx() -> Option<TraceCtx> {
    if !crate::enabled() {
        return None;
    }
    STACK.with(|stack| stack.borrow().last().map(|l| l.ctx))
}

/// Attaches `ev` to the innermost active span on this thread. A no-op
/// (one relaxed atomic load) when tracing is disabled, and silently
/// dropped when no span is active — instrumented leaf code never needs
/// to know whether anyone above it is tracing.
#[inline]
pub fn event(ev: TraceEvent) {
    if !crate::enabled() {
        return;
    }
    STACK.with(|stack| {
        if let Some(live) = stack.borrow_mut().last_mut() {
            if live.events.len() < MAX_EVENTS_PER_SPAN {
                live.events.push((recorder::now_us(), ev));
            } else {
                recorder::global().note_dropped_event();
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "noop"))]
    fn mine(spans: &[SpanRecord], trace_id: u64) -> Vec<SpanRecord> {
        spans
            .iter()
            .filter(|s| s.ctx.trace_id == trace_id)
            .cloned()
            .collect()
    }

    #[cfg(feature = "noop")]
    #[test]
    fn noop_feature_compiles_spans_away() {
        let span = Span::root("gone");
        assert!(span.ctx().is_none());
        event(TraceEvent::Note { what: "x".into() });
        assert!(current_ctx().is_none());
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn children_nest_under_the_active_span() {
        let root = Span::root("outer");
        let root_ctx = root.ctx().unwrap();
        {
            let mid = Span::child("mid");
            let mid_ctx = mid.ctx().unwrap();
            assert_eq!(mid_ctx.trace_id, root_ctx.trace_id);
            assert_eq!(mid_ctx.parent_id, root_ctx.span_id);
            let leaf = Span::child("leaf");
            assert_eq!(leaf.ctx().unwrap().parent_id, mid_ctx.span_id);
        }
        drop(root);
        let spans = mine(&crate::snapshot(), root_ctx.trace_id);
        assert_eq!(spans.len(), 3);
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"outer"));
        assert!(names.contains(&"mid"));
        assert!(names.contains(&"leaf"));
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn events_attach_to_the_innermost_span() {
        let root = Span::root("with_events");
        let trace = root.ctx().unwrap().trace_id;
        event(TraceEvent::Note {
            what: "on root".into(),
        });
        {
            let _child = Span::child("inner").detail("d");
            event(TraceEvent::RetryAttempt {
                op: "t",
                attempt: 1,
            });
        }
        drop(root);
        let spans = mine(&crate::snapshot(), trace);
        let root_rec = spans.iter().find(|s| s.name == "with_events").unwrap();
        let child_rec = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(root_rec.events_of("note").len(), 1);
        assert_eq!(child_rec.events_of("retry_attempt").len(), 1);
        assert_eq!(child_rec.detail, "d");
        assert!(root_rec.events_of("retry_attempt").is_empty());
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn follow_continues_a_trace_across_threads() {
        let root = Span::root("spawner");
        let ctx = root.ctx().unwrap();
        let handle = std::thread::spawn(move || {
            let worker = Span::follow(ctx, "worker");
            let got = worker.ctx().unwrap();
            assert_eq!(got.trace_id, ctx.trace_id);
            assert_eq!(got.parent_id, ctx.span_id);
            got
        });
        let worker_ctx = handle.join().unwrap();
        drop(root);
        let spans = mine(&crate::snapshot(), ctx.trace_id);
        assert!(spans.iter().any(|s| s.ctx == worker_ctx));
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn failed_spans_keep_their_error() {
        let span = Span::root("failing");
        let trace = span.ctx().unwrap().trace_id;
        span.fail("deliberate");
        drop(span);
        let spans = mine(&crate::snapshot(), trace);
        assert_eq!(spans[0].error.as_deref(), Some("deliberate"));
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn disabled_spans_record_nothing() {
        // Runs in its own process-global recorder alongside the other
        // tests, so only flip the flag briefly and count by trace id.
        crate::set_enabled(false);
        let span = Span::root("invisible");
        assert!(span.ctx().is_none());
        event(TraceEvent::Note { what: "x".into() });
        assert!(current_ctx().is_none());
        drop(span);
        crate::set_enabled(true);
        assert!(!crate::snapshot().iter().any(|s| s.name == "invisible"));
    }
}
