//! Typed events attached to the active span.

use crate::export::esc;

/// One thing that happened inside a span, at a point in time.
///
/// Variants mirror the workspace's failure machinery: what the fault
/// injector fired, what the retry loop did about it, what reached the
/// journal, and which phase a crash-safe revocation was in. Keeping
/// them typed (rather than free-form strings) lets tests assert trace
/// structure and keeps the exporters self-describing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// The fault injector fired at a named point.
    FaultInjected {
        /// The fault point that was hit.
        point: &'static str,
        /// The injected kind's stable label (e.g. `authority_down`).
        kind: &'static str,
        /// 1-based hit index of the point when it fired.
        hit: u64,
    },
    /// A transient failure is about to be retried.
    RetryAttempt {
        /// The retried operation (the retry policy's `op` label).
        op: &'static str,
        /// The attempt that just failed (1-based).
        attempt: u32,
    },
    /// Virtual backoff accounted before the next attempt.
    Backoff {
        /// The retried operation.
        op: &'static str,
        /// Backoff in virtual microseconds.
        us: u64,
    },
    /// The retry loop exhausted its attempt or time budget.
    RetryGaveUp {
        /// The abandoned operation.
        op: &'static str,
        /// Attempts performed, including the first.
        attempts: u32,
    },
    /// A framed record was appended to the write-ahead log.
    JournalAppend {
        /// The log object written (`wal-<generation>`).
        object: String,
        /// Framed bytes appended.
        bytes: u64,
    },
    /// The write-ahead log was durably flushed.
    JournalSync {
        /// The log object synced.
        object: String,
    },
    /// A checkpoint snapshot was committed.
    CheckpointWritten {
        /// The new committed generation.
        generation: u64,
    },
    /// Recovery replayed the committed generation's log.
    WalReplayed {
        /// The generation replayed from.
        generation: u64,
        /// Intact records recovered.
        records: u64,
        /// Bytes dropped from the torn/corrupt tail.
        dropped_bytes: u64,
    },
    /// A crash-safe revocation moved to a new phase.
    RevocationPhase {
        /// The phase entered (`begun`, `key_delivery`,
        /// `re_encryption`, `complete`, `recovered`).
        stage: &'static str,
    },
    /// The simulated disk killed the process at a store point.
    CrashInjected {
        /// The store point where power was lost.
        point: &'static str,
    },
    /// A journal write failed and the durable handle poisoned itself.
    Poisoned {
        /// The store point whose failure poisoned the handle.
        point: &'static str,
    },
    /// Structured op-boundary attribute (`authority`, `uid`,
    /// `key_version_observed`, …) the wide-event pipeline folds into
    /// the enclosing operation's record. Later attributes with the
    /// same key override earlier ones on the same span.
    OpAttr {
        /// Stable attribute key.
        key: &'static str,
        /// Attribute value (numbers are formatted decimal).
        value: String,
    },
    /// Free-form annotation (sparingly — prefer a typed variant).
    Note {
        /// What happened.
        what: String,
    },
}

impl TraceEvent {
    /// Stable snake_case label of the variant, used as the event name
    /// in both exporters.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::RetryAttempt { .. } => "retry_attempt",
            TraceEvent::Backoff { .. } => "backoff",
            TraceEvent::RetryGaveUp { .. } => "retry_gave_up",
            TraceEvent::JournalAppend { .. } => "journal_append",
            TraceEvent::JournalSync { .. } => "journal_sync",
            TraceEvent::CheckpointWritten { .. } => "checkpoint",
            TraceEvent::WalReplayed { .. } => "wal_replay",
            TraceEvent::RevocationPhase { .. } => "revocation_phase",
            TraceEvent::CrashInjected { .. } => "crash",
            TraceEvent::Poisoned { .. } => "poisoned",
            TraceEvent::OpAttr { .. } => "op_attr",
            TraceEvent::Note { .. } => "note",
        }
    }

    /// The variant's fields as a JSON object, for exporter `args`.
    pub fn args_json(&self) -> String {
        match self {
            TraceEvent::FaultInjected { point, kind, hit } => format!(
                "{{\"point\":\"{}\",\"kind\":\"{}\",\"hit\":{hit}}}",
                esc(point),
                esc(kind)
            ),
            TraceEvent::RetryAttempt { op, attempt } => {
                format!("{{\"op\":\"{}\",\"attempt\":{attempt}}}", esc(op))
            }
            TraceEvent::Backoff { op, us } => {
                format!("{{\"op\":\"{}\",\"us\":{us}}}", esc(op))
            }
            TraceEvent::RetryGaveUp { op, attempts } => {
                format!("{{\"op\":\"{}\",\"attempts\":{attempts}}}", esc(op))
            }
            TraceEvent::JournalAppend { object, bytes } => {
                format!("{{\"object\":\"{}\",\"bytes\":{bytes}}}", esc(object))
            }
            TraceEvent::JournalSync { object } => {
                format!("{{\"object\":\"{}\"}}", esc(object))
            }
            TraceEvent::CheckpointWritten { generation } => {
                format!("{{\"generation\":{generation}}}")
            }
            TraceEvent::WalReplayed {
                generation,
                records,
                dropped_bytes,
            } => format!(
                "{{\"generation\":{generation},\"records\":{records},\
                 \"dropped_bytes\":{dropped_bytes}}}"
            ),
            TraceEvent::RevocationPhase { stage } => {
                format!("{{\"stage\":\"{}\"}}", esc(stage))
            }
            TraceEvent::CrashInjected { point } => {
                format!("{{\"point\":\"{}\"}}", esc(point))
            }
            TraceEvent::Poisoned { point } => {
                format!("{{\"point\":\"{}\"}}", esc(point))
            }
            TraceEvent::OpAttr { key, value } => {
                format!("{{\"key\":\"{}\",\"value\":\"{}\"}}", esc(key), esc(value))
            }
            TraceEvent::Note { what } => format!("{{\"what\":\"{}\"}}", esc(what)),
        }
    }
}
