//! # mabe-trace
//!
//! Causal tracing for the MA-ABAC workspace. Where `mabe-telemetry`
//! answers *how often* and *how long*, this crate answers *what led to
//! what*: every paper operation (grant, publish, read, revoke, sync,
//! recover) opens a [`Span`] carrying an explicit [`TraceCtx`]
//! (trace id + span id + parent), child operations nest under it, and
//! the fault/retry/WAL layers attach typed [`TraceEvent`]s — fault
//! injected, retry attempt N, backoff, journal append/sync, revocation
//! phase transition, replay — to whichever span is active on the
//! thread.
//!
//! Completed spans land in a lock-free bounded ring buffer (the
//! [`FlightRecorder`]): writers claim a slot with one atomic
//! fetch-add and never block each other; old spans are overwritten
//! once the ring wraps, so the recorder always holds the *last N*
//! spans — exactly what a post-mortem needs.
//!
//! Two exporters read the ring:
//!
//! * [`chrome_trace`] — Chrome `trace_event` JSON, loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev);
//! * [`tree_json`] — a self-describing parent/child span forest.
//!
//! On a chaos or crash-sweep assertion failure (via the
//! [`FailureDump`] panic guard) or a `DurableSystem` journal poison,
//! the recorder dumps the last N spans to a `trace_<seed>_<case>.json`
//! artifact so a red CI log comes with a readable causal history.
//!
//! ## Cost when disabled
//!
//! Span creation and event emission first check one relaxed atomic
//! flag; after [`set_enabled`]`(false)` instrumentation reduces to
//! that single load (the same guarantee `mabe-telemetry` makes).
//! Compiling with the `noop` feature removes even the load.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ctx;
pub mod dump;
pub mod event;
pub mod export;
pub mod recorder;
pub mod sink;
pub mod span;

pub use ctx::TraceCtx;
pub use dump::{artifact_json, dump_if_configured, dump_to, FailureDump};
pub use event::TraceEvent;
pub use export::{chrome_trace, tree_json};
pub use recorder::{FlightRecorder, SpanRecord, DEFAULT_CAPACITY};
pub use sink::{install_sink, sink_installed, SpanSink};
pub use span::{current_ctx, event, Span};

/// Attaches a structured op-boundary attribute
/// ([`TraceEvent::OpAttr`]) to the innermost active span. The
/// wide-event pipeline (`mabe-events`) folds these into the enclosing
/// operation's record; without an active span (or with tracing
/// disabled) this is a cheap no-op, like [`event`].
#[inline]
pub fn op_attr(key: &'static str, value: impl Into<String>) {
    if !enabled() {
        return;
    }
    event(TraceEvent::OpAttr {
        key,
        value: value.into(),
    });
}

/// Whether the global flight recorder is currently capturing.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "noop")]
    {
        false
    }
    #[cfg(not(feature = "noop"))]
    {
        recorder::global().is_enabled()
    }
}

/// Turns capturing on or off process-wide. Spans opened while enabled
/// still commit when they drop; spans and events started while
/// disabled are dropped at the single-atomic-load fast path.
pub fn set_enabled(on: bool) {
    recorder::global().set_enabled(on);
}

/// Every span currently held by the global flight recorder, oldest
/// first.
pub fn snapshot() -> Vec<SpanRecord> {
    recorder::global().snapshot()
}

/// The most recent `n` spans held by the global flight recorder,
/// oldest first.
pub fn recent(n: usize) -> Vec<SpanRecord> {
    recorder::global().recent(n)
}
