//! Failure-forensics artifacts: `trace_<seed>_<case>.json`.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::export::{esc, tree_json};
use crate::recorder;

/// Environment variable naming the artifact directory. When unset,
/// panic-guard dumps fall back to [`DEFAULT_DIR`] and poison dumps
/// are skipped (libraries must not litter by default).
pub const DIR_ENV: &str = "MABE_TRACE_DIR";

/// Fallback artifact directory for test-harness panic dumps.
pub const DEFAULT_DIR: &str = "target/trace-artifacts";

fn sanitize(case: &str) -> String {
    case.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The artifact document: a self-describing header plus the tree
/// export of everything the flight recorder currently holds.
pub fn artifact_json(seed: u64, case: &str) -> String {
    let rec = recorder::global();
    let spans = rec.snapshot();
    let mut out = String::from("{\"format\":\"mabe-trace-artifact/v1\",");
    let _ = write!(
        out,
        "\"seed\":{seed},\"case\":\"{}\",\"captured_spans\":{},\
         \"dropped_spans\":{},\"dropped_events\":{},\"tree\":",
        esc(case),
        spans.len(),
        rec.dropped_spans(),
        rec.dropped_events(),
    );
    out.push_str(&tree_json(&spans));
    out.push_str("}\n");
    out
}

/// Writes `trace_<seed>_<case>.json` into `dir` (created if absent)
/// and returns the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn dump_to(dir: &Path, seed: u64, case: &str) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("trace_{seed}_{}.json", sanitize(case)));
    fs::write(&path, artifact_json(seed, case))?;
    Ok(path)
}

/// Dumps only when [`DIR_ENV`] is set — the hook library code (e.g.
/// `DurableSystem` poisoning) calls so production-shaped runs stay
/// silent. Write failures are reported on stderr, never fatal.
pub fn dump_if_configured(seed: u64, case: &str) -> Option<PathBuf> {
    let dir = std::env::var_os(DIR_ENV)?;
    match dump_to(Path::new(&dir), seed, case) {
        Ok(path) => {
            eprintln!("# flight recorder dumped to {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("# flight recorder dump for {case} failed: {e}");
            None
        }
    }
}

/// A panic guard for test harnesses: construct it at the top of a
/// scenario, and if the scope unwinds (an assertion failed), the
/// flight recorder's contents are dumped to
/// `trace_<seed>_<case>.json` under [`DIR_ENV`] (or [`DEFAULT_DIR`])
/// before the panic continues.
///
/// ```no_run
/// let _forensics = mabe_trace::FailureDump::new(42, "chaos");
/// // ... assertions; on panic, the artifact is written ...
/// ```
pub struct FailureDump {
    seed: u64,
    case: String,
    dir: Option<PathBuf>,
}

impl FailureDump {
    /// A guard dumping as `trace_<seed>_<case>.json` on panic.
    pub fn new(seed: u64, case: impl Into<String>) -> Self {
        FailureDump {
            seed,
            case: case.into(),
            dir: None,
        }
    }

    /// Overrides the artifact directory (tests use a temp dir).
    pub fn with_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = Some(dir.into());
        self
    }

    fn target_dir(&self) -> PathBuf {
        self.dir.clone().unwrap_or_else(|| {
            std::env::var_os(DIR_ENV)
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from(DEFAULT_DIR))
        })
    }
}

impl Drop for FailureDump {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        match dump_to(&self.target_dir(), self.seed, &self.case) {
            Ok(path) => eprintln!(
                "# {} failed: flight recorder dumped to {}",
                self.case,
                path.display()
            ),
            Err(e) => eprintln!("# flight recorder dump for {} failed: {e}", self.case),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_names_are_filesystem_safe() {
        assert_eq!(sanitize("cloud revoke.rekey#1"), "cloud_revoke_rekey_1");
        assert_eq!(sanitize("store put/TornWrite#2"), "store_put_TornWrite_2");
    }

    #[test]
    fn dump_to_writes_a_self_describing_artifact() {
        let _span = crate::Span::root("dump_probe");
        let dir = std::env::temp_dir().join("mabe-trace-dump-test");
        let path = dump_to(&dir, 7, "unit case").unwrap();
        assert!(path.ends_with("trace_7_unit_case.json"));
        let body = fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"format\":\"mabe-trace-artifact/v1\""));
        assert!(body.contains("\"seed\":7"));
        assert!(body.contains("\"case\":\"unit case\""));
        assert!(body.contains("\"tree\":{\"format\":\"mabe-trace/v1\""));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failure_dump_fires_only_on_panic() {
        let dir = std::env::temp_dir().join("mabe-trace-guard-test");
        let _ = fs::remove_dir_all(&dir);

        // A clean scope writes nothing.
        {
            let _guard = FailureDump::new(1, "clean").with_dir(&dir);
        }
        assert!(!dir.join("trace_1_clean.json").exists());

        // A panicking scope dumps before unwinding past the guard.
        let dir2 = dir.clone();
        let result = std::panic::catch_unwind(move || {
            let _guard = FailureDump::new(2, "boom case").with_dir(&dir2);
            panic!("deliberate");
        });
        assert!(result.is_err());
        let artifact = dir.join("trace_2_boom_case.json");
        assert!(artifact.exists(), "panic must leave an artifact");
        let body = fs::read_to_string(&artifact).unwrap();
        assert!(body.contains("\"case\":\"boom case\""));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn poison_hook_is_silent_without_the_env_var() {
        if std::env::var_os(DIR_ENV).is_none() {
            assert!(dump_if_configured(3, "no-dir").is_none());
        }
    }
}
