//! The span-lifecycle sink: a process-wide observer of span opens and
//! closes.
//!
//! The flight recorder answers "what happened recently"; a sink
//! answers "tell me the moment it happens". One consumer —
//! `mabe-events`, the wide-event pipeline — registers itself here and
//! assembles one canonical record per top-level operation entirely
//! from the spans instrumented code already opens: no new call sites,
//! no second instrumentation layer.
//!
//! The hook is deliberately minimal:
//!
//! * [`SpanSink::on_open`] fires after a span is pushed on its
//!   thread's stack, with the span's [`TraceCtx`] and static name.
//! * [`SpanSink::on_close`] fires when the span commits, with the
//!   full [`SpanRecord`] (detail, duration, error, attached events) —
//!   *before* the record enters the ring, so the sink sees spans even
//!   when the ring has wrapped.
//!
//! Cost when absent: one relaxed atomic load per span open/close (the
//! same guarantee the `enabled` flag makes). The sink is installed at
//! most once per process and never uninstalled — observers must be
//! prepared to outlive every workload.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use crate::ctx::TraceCtx;
use crate::recorder::SpanRecord;

/// An observer of span opens and closes. Implementations must be
/// cheap and must never re-enter the tracing API (no spans, no
/// events) — they run inline on the instrumented thread.
pub trait SpanSink: Send + Sync {
    /// A span was opened (already on its thread's stack).
    fn on_open(&self, ctx: &TraceCtx, name: &'static str) {
        let _ = (ctx, name);
    }

    /// A span closed; `record` is about to enter the flight recorder
    /// (its `seq` is not yet assigned).
    fn on_close(&self, record: &SpanRecord);
}

static SINK: OnceLock<Box<dyn SpanSink>> = OnceLock::new();
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Installs the process-wide sink. The first call wins and returns
/// `true`; later calls are no-ops returning `false` (the slot is
/// write-once so the hot path stays a single relaxed load).
pub fn install_sink(sink: Box<dyn SpanSink>) -> bool {
    let won = SINK.set(sink).is_ok();
    if won {
        INSTALLED.store(true, Ordering::Release);
    }
    won
}

/// The installed sink, if any. One relaxed load on the fast path.
#[inline]
pub(crate) fn sink() -> Option<&'static dyn SpanSink> {
    if !INSTALLED.load(Ordering::Relaxed) {
        return None;
    }
    SINK.get().map(|s| s.as_ref())
}

/// Whether a sink is installed (diagnostics; the hot path uses the
/// internal accessor).
pub fn sink_installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}
