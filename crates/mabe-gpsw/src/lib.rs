//! # mabe-gpsw
//!
//! Related-work baseline: **Goyal–Pandey–Sahai–Waters key-policy ABE**
//! (CCS 2006), the paper's reference \[22\] and the scheme underneath the
//! Yu et al. access-control system \[23\] discussed in §II.
//!
//! The point of having it here is structural, and the type signatures
//! make it self-evident: in KP-ABE the **policy lives in the key** (the
//! authority chooses who can read what when issuing keys) and the
//! **ciphertext carries only an attribute set**. A data owner therefore
//! cannot "define the access policies and encrypt data according to the
//! policies" — exactly the §II argument for why the paper builds on
//! CP-ABE instead.
//!
//! ## Scheme (LSSS form, small-universe with hashed attributes)
//!
//! * `Setup`: `y` master; per attribute `x` (on demand, via random
//!   oracle): `t_x = H(x)` exponentiated implicitly — here we use the
//!   large-universe variant with `T_x = H(x) ∈ G`:
//!   `Y = e(g,g)^y`.
//! * `Encrypt(m, S)`: `E' = m·Y^s`, `E'' = g^s`, `E_x = T_x^s` for
//!   `x ∈ S`.
//! * `KeyGen((M, ρ))`: shares `λ_i` of `y`; `D_i = g^{λ_i}·T_{ρ(i)}^{r_i}`,
//!   `R_i = g^{r_i}`.
//! * `Decrypt`: for satisfying rows,
//!   `e(D_i, E'') / e(R_i, E_{ρ(i)}) = e(g,g)^{λ_i s}`; recombine to
//!   `e(g,g)^{ys}`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use rand::RngCore;

use mabe_math::{generator_mul, hash_to_curve, pairing, Fr, G1Affine, Gt, G1};
use mabe_policy::{AccessStructure, Attribute};

/// Errors from the GPSW scheme.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GpswError {
    /// The ciphertext's attribute set does not satisfy the key's policy.
    PolicyNotSatisfied,
}

impl fmt::Display for GpswError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpswError::PolicyNotSatisfied => {
                write!(f, "ciphertext attributes do not satisfy the key policy")
            }
        }
    }
}

impl std::error::Error for GpswError {}

fn attr_group(attr: &Attribute) -> G1Affine {
    hash_to_curve(&[b"gpsw-attr:", attr.canonical_bytes().as_slice()].concat())
}

/// The (single) authority holding the master secret `y`.
pub struct GpswAuthority {
    y: Fr,
}

/// Public parameters `Y = e(g,g)^y` (attribute elements come from the
/// random oracle).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GpswPublicKey {
    /// `e(g,g)^y`.
    pub y: Gt,
}

/// A key-policy secret key: the **policy is baked into the key** — the
/// defining signature of KP-ABE.
#[derive(Clone, Debug)]
pub struct GpswUserKey {
    /// The embedded access structure (over ciphertext attributes).
    pub access: AccessStructure,
    /// `(D_i = g^{λ_i}·T_{ρ(i)}^{r_i}, R_i = g^{r_i})` per row.
    pub rows: Vec<(G1Affine, G1Affine)>,
}

/// A ciphertext: note there is **no policy here**, only attributes —
/// the data owner has no say in who decrypts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GpswCiphertext {
    /// `E' = m·Y^s`.
    pub e_prime: Gt,
    /// `E'' = g^s`.
    pub e_s: G1Affine,
    /// `E_x = T_x^s` per labelled attribute.
    pub components: BTreeMap<Attribute, G1Affine>,
}

impl GpswAuthority {
    /// Runs `Setup`.
    pub fn setup<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let y = loop {
            let candidate = Fr::random(rng);
            if !candidate.is_zero() {
                break candidate;
            }
        };
        GpswAuthority { y }
    }

    /// The public parameters.
    pub fn public_key(&self) -> GpswPublicKey {
        GpswPublicKey {
            y: Gt::generator().pow(&self.y),
        }
    }

    /// Issues a key whose embedded policy governs which ciphertexts its
    /// holder can open.
    pub fn keygen<R: RngCore + ?Sized>(
        &self,
        access: &AccessStructure,
        rng: &mut R,
    ) -> GpswUserKey {
        let shares = access.share(&self.y, rng);
        let mut projective = Vec::with_capacity(2 * shares.len());
        for (i, lambda) in shares.iter().enumerate() {
            let r_i = Fr::random(rng);
            let t_rho = attr_group(&access.rho()[i]);
            projective.push(generator_mul(lambda).add(&G1::from(t_rho).mul(&r_i)));
            projective.push(generator_mul(&r_i));
        }
        let affine = mabe_math::batch_normalize(&projective);
        let rows = affine
            .chunks_exact(2)
            .map(|pair| (pair[0], pair[1]))
            .collect();
        GpswUserKey {
            access: access.clone(),
            rows,
        }
    }
}

/// Encrypts `m` under an attribute set (no policy — that's the key's
/// job in KP-ABE).
pub fn encrypt<R: RngCore + ?Sized>(
    message: &Gt,
    attributes: &BTreeSet<Attribute>,
    pk: &GpswPublicKey,
    rng: &mut R,
) -> GpswCiphertext {
    let s = loop {
        let candidate = Fr::random(rng);
        if !candidate.is_zero() {
            break candidate;
        }
    };
    let e_prime = message.mul(&pk.y.pow(&s));
    let e_s = G1Affine::from(generator_mul(&s));
    let mut projective = Vec::with_capacity(attributes.len());
    let mut order = Vec::with_capacity(attributes.len());
    for attr in attributes {
        projective.push(G1::from(attr_group(attr)).mul(&s));
        order.push(attr.clone());
    }
    let affine = mabe_math::batch_normalize(&projective);
    GpswCiphertext {
        e_prime,
        e_s,
        components: order.into_iter().zip(affine).collect(),
    }
}

/// Decrypts if the ciphertext's attributes satisfy the key's policy.
///
/// # Errors
///
/// [`GpswError::PolicyNotSatisfied`] otherwise.
pub fn decrypt(ct: &GpswCiphertext, key: &GpswUserKey) -> Result<Gt, GpswError> {
    let attrs: BTreeSet<Attribute> = ct.components.keys().cloned().collect();
    let coefficients = key
        .access
        .reconstruction_coefficients(&attrs)
        .ok_or(GpswError::PolicyNotSatisfied)?;
    let mut blind = Gt::one();
    for (row, w) in &coefficients {
        let attr = &key.access.rho()[*row];
        let (d_i, r_i) = &key.rows[*row];
        let e_x = &ct.components[attr];
        // e(D_i, E'') / e(R_i, E_x) = e(g,g)^{λ_i s}
        let term = pairing(d_i, &ct.e_s).div(&pairing(r_i, e_x));
        blind = blind.mul(&term.pow(w));
    }
    Ok(ct.e_prime.div(&blind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mabe_policy::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2006)
    }

    fn access(src: &str) -> AccessStructure {
        AccessStructure::from_policy(&parse(src).unwrap()).unwrap()
    }

    fn attrset(items: &[&str]) -> BTreeSet<Attribute> {
        items.iter().map(|s| s.parse().unwrap()).collect()
    }

    #[test]
    fn roundtrip() {
        let mut r = rng();
        let auth = GpswAuthority::setup(&mut r);
        let pk = auth.public_key();
        let msg = Gt::random(&mut r);
        // Policy on the KEY; attributes on the CIPHERTEXT.
        let key = auth.keygen(&access("A@U AND B@U"), &mut r);
        let ct = encrypt(&msg, &attrset(&["A@U", "B@U", "C@U"]), &pk, &mut r);
        assert_eq!(decrypt(&ct, &key).unwrap(), msg);
    }

    #[test]
    fn unsatisfying_ciphertext_rejected() {
        let mut r = rng();
        let auth = GpswAuthority::setup(&mut r);
        let pk = auth.public_key();
        let msg = Gt::random(&mut r);
        let key = auth.keygen(&access("A@U AND B@U"), &mut r);
        let ct = encrypt(&msg, &attrset(&["A@U"]), &pk, &mut r);
        assert_eq!(decrypt(&ct, &key), Err(GpswError::PolicyNotSatisfied));
    }

    #[test]
    fn threshold_key_policy() {
        let mut r = rng();
        let auth = GpswAuthority::setup(&mut r);
        let pk = auth.public_key();
        let msg = Gt::random(&mut r);
        let key = auth.keygen(&access("2 of (A@U, B@U, C@U)"), &mut r);
        assert_eq!(
            decrypt(&encrypt(&msg, &attrset(&["A@U", "C@U"]), &pk, &mut r), &key).unwrap(),
            msg
        );
        assert!(decrypt(&encrypt(&msg, &attrset(&["B@U"]), &pk, &mut r), &key).is_err());
    }

    #[test]
    fn owner_has_no_policy_control() {
        // The structural point of §II: two owners encrypt with the SAME
        // attribute set; whoever holds a satisfied key reads both.
        // Owners cannot differentiate access — only the key issuer can.
        let mut r = rng();
        let auth = GpswAuthority::setup(&mut r);
        let pk = auth.public_key();
        let key = auth.keygen(&access("Record@Sys"), &mut r);
        let (m1, m2) = (Gt::random(&mut r), Gt::random(&mut r));
        let ct1 = encrypt(&m1, &attrset(&["Record@Sys"]), &pk, &mut r);
        let ct2 = encrypt(&m2, &attrset(&["Record@Sys"]), &pk, &mut r);
        assert_eq!(decrypt(&ct1, &key).unwrap(), m1);
        assert_eq!(decrypt(&ct2, &key).unwrap(), m2);
    }

    #[test]
    fn two_keys_cannot_be_spliced() {
        // Shares of y are randomized per key: mixing rows of two keys
        // with complementary policies fails.
        let mut r = rng();
        let auth = GpswAuthority::setup(&mut r);
        let pk = auth.public_key();
        let msg = Gt::random(&mut r);
        let k1 = auth.keygen(&access("A@U AND B@U"), &mut r);
        let k2 = auth.keygen(&access("A@U AND B@U"), &mut r);
        let ct = encrypt(&msg, &attrset(&["A@U", "B@U"]), &pk, &mut r);
        // Frankenstein: row 0 from k1, row 1 from k2.
        let franken = GpswUserKey {
            access: k1.access.clone(),
            rows: vec![k1.rows[0], k2.rows[1]],
        };
        assert_ne!(decrypt(&ct, &franken).unwrap(), msg);
        // Both originals work.
        assert_eq!(decrypt(&ct, &k1).unwrap(), msg);
        assert_eq!(decrypt(&ct, &k2).unwrap(), msg);
    }

    #[test]
    fn complex_key_policy() {
        let mut r = rng();
        let auth = GpswAuthority::setup(&mut r);
        let pk = auth.public_key();
        let msg = Gt::random(&mut r);
        let key = auth.keygen(&access("(A@U AND B@U) OR (C@U AND D@U)"), &mut r);
        assert_eq!(
            decrypt(&encrypt(&msg, &attrset(&["C@U", "D@U"]), &pk, &mut r), &key).unwrap(),
            msg
        );
        assert!(decrypt(&encrypt(&msg, &attrset(&["A@U", "C@U"]), &pk, &mut r), &key).is_err());
    }
}
