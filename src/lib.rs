//! # mabe — Multi-Authority Attribute-Based Access Control for Cloud Storage
//!
//! A comprehensive Rust reproduction of Kan Yang & Xiaohua Jia,
//! *"Attribute-based Access Control for Multi-Authority Systems in Cloud
//! Storage"*, ICDCS 2012.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`math`] — the from-scratch type-A pairing substrate (512-bit base
//!   field, 160-bit group, symmetric Tate pairing — the PBC curve the
//!   paper benchmarked on).
//! * [`crypto`] — SHA-256 / HMAC / HKDF / ChaCha20-Poly1305, all from
//!   scratch with RFC vectors.
//! * [`policy`] — the `attr@authority` policy language and the LSSS
//!   engine.
//! * [`core`] — the paper's multi-authority CP-ABE with attribute
//!   revocation (the headline contribution).
//! * [`lewko`] — the Lewko–Waters decentralized ABE baseline the paper
//!   compares against.
//! * [`chase`] — the Chase (TCC 2007) multi-authority ABE with a central
//!   authority, executable evidence for Table I's first comparison row.
//! * [`waters`] — Waters' single-authority CP-ABE (PKC 2011), the paper's
//!   reference \[3\] and the construction its security proof reduces to.
//! * [`gpsw`] — GPSW key-policy ABE (CCS 2006), the paper's reference
//!   \[22\]; its types demonstrate why KP-ABE denies owners policy control.
//! * [`cloud`] — the simulated five-entity cloud deployment.
//!
//! ## Quickstart
//!
//! ```
//! use mabe::cloud::CloudSystem;
//!
//! let mut sys = CloudSystem::new(7);
//! sys.add_authority("MedOrg", &["Doctor", "Nurse"])?;
//! sys.add_authority("Trial", &["Researcher"])?;
//! let owner = sys.add_owner("hospital")?;
//! let alice = sys.add_user("alice")?;
//! sys.grant(&alice, &["Doctor@MedOrg", "Researcher@Trial"])?;
//!
//! sys.publish(&owner, "patient-7", &[
//!     ("diagnosis", b"flu".as_slice(), "Doctor@MedOrg"),
//!     ("trial", b"cohort A".as_slice(), "Doctor@MedOrg AND Researcher@Trial"),
//! ])?;
//!
//! assert_eq!(sys.read(&alice, &owner, "patient-7", "trial")?, b"cohort A");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Security disclaimer
//!
//! Research reproduction only: variable-time arithmetic, 2012-era curve
//! parameters, and a scheme with later-published cryptanalysis. Do not
//! use to protect real data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mabe_chase as chase;
pub use mabe_cloud as cloud;
pub use mabe_core as core;
pub use mabe_crypto as crypto;
pub use mabe_gpsw as gpsw;
pub use mabe_lewko as lewko;
pub use mabe_math as math;
pub use mabe_policy as policy;
pub use mabe_waters as waters;
