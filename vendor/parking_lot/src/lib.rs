//! Offline stand-in for `parking_lot`: non-poisoning `RwLock` and
//! `Mutex` built on `std::sync`. A poisoned std lock (a panic while
//! held) is unwrapped into the inner guard, matching parking_lot's
//! panic-transparent semantics closely enough for this workspace.

#![forbid(unsafe_code)]

use std::sync::{
    MutexGuard as StdMutexGuard, RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// Reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> StdReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> StdWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Mutex with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
