//! Offline stand-in for `crossbeam`: only [`thread::scope`], built on
//! `std::thread::scope` (stable since 1.63). Panics in spawned threads
//! surface as an `Err` from `scope`, matching crossbeam's contract.

#![deny(unsafe_code)]

pub mod thread {
    //! Scoped threads with crossbeam's `Result`-returning API.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Scope handle passed to [`scope`] closures and to each spawned
    /// thread's closure (crossbeam's nested-spawn API).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it
        /// can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which threads can be spawned; returns
    /// `Err` if any unjoined spawned thread (or `f` itself) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn spawned_threads_run_to_completion() {
        let total = AtomicU64::new(0);
        let out = thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| total.fetch_add(1, Ordering::Relaxed));
            }
            42
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(total.into_inner(), 4);
    }

    #[test]
    fn panics_surface_as_err() {
        let result = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_compiles() {
        let hits = AtomicU64::new(0);
        thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(hits.into_inner(), 1);
    }
}
