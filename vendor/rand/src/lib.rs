//! Offline stand-in for the `rand` crate.
//!
//! The container building this workspace has no registry access, so the
//! few `rand` items the workspace actually uses are re-implemented here:
//! [`RngCore`], [`SeedableRng`] and [`rngs::StdRng`]. `StdRng` is a
//! deterministic xoshiro256** generator seeded via SplitMix64 — not the
//! upstream ChaCha12 stream, but the workspace only relies on
//! determinism-per-seed, never on the exact stream.

#![forbid(unsafe_code)]

/// Core random-number-generation trait (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

impl RngCore for Box<dyn RngCore> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable generators (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (same convention
    /// as upstream `rand`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Deterministic generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for upstream's
    /// `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0x6A09E667F3BCC909,
                    0xBB67AE8584CAA73B,
                    0x3C6EF372FE94F82B,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.next()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0);
    }
}
