//! Offline stand-in for `proptest`.
//!
//! Re-implements the subset of the proptest API this workspace uses:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_recursive` / `boxed`, [`strategy::Just`], `prop_oneof!`,
//! `prop::collection::vec`, `any::<T>()`, simple `[class]{m,n}` string
//! patterns, and the `prop_assert*` macros.
//!
//! Differences from upstream: generation is seeded deterministically
//! per (module, test, case) so runs are reproducible, and there is **no
//! shrinking** — a failing case reports its values via the assert
//! message instead of a minimised counterexample.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use rand::rngs::StdRng;
    use rand::RngCore;
    use std::ops::Range;
    use std::rc::Rc;

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Recursive strategies: `f` receives a strategy for the inner
        /// level and returns the composite level. `desired_size` and
        /// `expected_branch_size` are accepted for API parity and
        /// ignored; only `depth` bounds the recursion.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            Recursive {
                base: self.boxed(),
                depth,
                recurse: Rc::new(move |inner| f(inner).boxed()),
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(self),
            }
        }
    }

    /// A clonable type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// [`Strategy::prop_recursive`] adapter.
    pub struct Recursive<T> {
        pub(crate) base: BoxedStrategy<T>,
        pub(crate) depth: u32,
        pub(crate) recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    }

    impl<T> Clone for Recursive<T> {
        fn clone(&self) -> Self {
            Recursive {
                base: self.base.clone(),
                depth: self.depth,
                recurse: Rc::clone(&self.recurse),
            }
        }
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            // 1-in-4 chance of bottoming out early keeps tree shapes
            // varied; depth 0 always bottoms out.
            if self.depth == 0 || rng.next_u32().is_multiple_of(4) {
                self.base.generate(rng)
            } else {
                let inner = Recursive {
                    base: self.base.clone(),
                    depth: self.depth - 1,
                    recurse: Rc::clone(&self.recurse),
                }
                .boxed();
                (self.recurse)(inner).generate(rng)
            }
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds from the macro's boxed arms.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    let offset = (rng.next_u64() as u128 % span) as $t;
                    self.start + offset
                }
            }
        )+};
    }
    range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident/$v:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (A/a)
        (A/a, B/b)
        (A/a, B/b, C/c)
        (A/a, B/b, C/c, D/d)
    }

    /// Minimal `[class]{m,n}` string-pattern strategy. Supports one
    /// bracketed character class of literals and `a-z` ranges followed
    /// by a `{min,max}` repetition — exactly the shape this workspace's
    /// fuzz tests use (e.g. `"[ -~]{0,64}"`).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, min, max) = parse_pattern(self);
            let len = min + (rng.next_u64() as usize) % (max - min + 1);
            (0..len)
                .map(|_| chars[(rng.next_u64() % chars.len() as u64) as usize])
                .collect()
        }
    }

    fn unsupported(pattern: &str) -> ! {
        panic!("unsupported string pattern {pattern:?} (stub supports `[class]{{m,n}}`)")
    }

    fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        let rest = pattern
            .strip_prefix('[')
            .unwrap_or_else(|| unsupported(pattern));
        let (class, rest) = rest.split_once(']').unwrap_or_else(|| unsupported(pattern));
        let reps = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| unsupported(pattern));
        let (min, max) = reps.split_once(',').unwrap_or_else(|| unsupported(pattern));
        let min: usize = min.trim().parse().unwrap_or_else(|_| unsupported(pattern));
        let max: usize = max.trim().parse().unwrap_or_else(|_| unsupported(pattern));
        assert!(min <= max, "bad repetition in pattern {pattern:?}");

        let mut chars = Vec::new();
        let raw: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < raw.len() {
            if i + 2 < raw.len() && raw[i + 1] == '-' {
                let (lo, hi) = (raw[i] as u32, raw[i + 2] as u32);
                assert!(lo <= hi, "bad char range in pattern {pattern:?}");
                chars.extend((lo..=hi).filter_map(char::from_u32));
                i += 3;
            } else {
                chars.push(raw[i]);
                i += 1;
            }
        }
        assert!(!chars.is_empty(), "empty char class in pattern {pattern:?}");
        (chars, min, max)
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use super::strategy::{Strategy, TestRng};
    use rand::RngCore;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    let mut bytes = [0u8; core::mem::size_of::<$t>()];
                    rng.fill_bytes(&mut bytes);
                    <$t>::from_le_bytes(bytes)
                }
            }
        )+};
    }
    int_arbitrary!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    /// The canonical strategy for `T`.
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            any::<T>()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the full-range strategy for `T`.
    pub fn any<T>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, TestRng};
    use rand::RngCore;
    use std::ops::Range;

    /// Vector strategy with a length range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let len = self.len.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

pub mod test_runner {
    //! Configuration, case errors and the deterministic per-case RNG.

    use rand::SeedableRng;

    /// Runner configuration (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — not a failure.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Builds a rejection.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "failed: {r}"),
            }
        }
    }

    /// Deterministic per-case RNG: FNV-1a over (module, test, case).
    pub fn rng_for(module: &str, test: &str, case: u32) -> super::strategy::TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in module.bytes().chain(test.bytes()).chain(case.to_le_bytes()) {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        super::strategy::TestRng::seed_from_u64(h)
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! The `prop::` module namespace from upstream's prelude.
        pub use crate::collection;
    }
}

/// Declares property tests. Each case draws fresh values from the bound
/// strategies; `prop_assume!` rejections skip the case.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($bind:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut proptest_rng =
                    $crate::test_runner::rng_for(module_path!(), stringify!($name), case);
                $(let $bind = $crate::strategy::Strategy::generate(&($strat), &mut proptest_rng);)*
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                    Err(e) => panic!("{} case {}/{}: {}", stringify!($name), case, config.cases, e),
                }
            }
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9) {
            prop_assert!((3..9).contains(&x));
        }

        #[test]
        fn assume_rejects_cleanly(x in any::<u64>()) {
            prop_assume!(x.is_multiple_of(2));
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn oneof_and_just_mix(v in prop_oneof![Just(1u8), Just(2u8), 3u8..5]) {
            prop_assert!((1..5).contains(&v));
        }

        #[test]
        fn string_patterns_generate_printables(s in "[ -~]{0,8}") {
            prop_assert!(s.len() <= 8);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }

        #[test]
        fn tuples_and_map(pair in (0usize..4, 10usize..12).prop_map(|(a, b)| a + b)) {
            prop_assert!((10..16).contains(&pair));
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(usize),
        Node(Vec<Tree>),
    }

    impl Tree {
        fn depth(&self) -> usize {
            match self {
                Tree::Leaf(_) => 1,
                Tree::Node(cs) => 1 + cs.iter().map(Tree::depth).max().unwrap_or(0),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursive_strategies_terminate(
            t in (0usize..4).prop_map(Tree::Leaf).prop_recursive(3, 12, 3, |inner| {
                prop::collection::vec(inner, 2..4).prop_map(Tree::Node)
            })
        ) {
            prop_assert!(t.depth() <= 4);
        }
    }
}
