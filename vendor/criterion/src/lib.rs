//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion API this workspace's benches
//! use — `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`/`iter_batched`,
//! `criterion_group!`/`criterion_main!` — with straightforward
//! wall-clock sampling and a text report on stdout. No statistics
//! beyond min/mean/max: the real evaluation numbers come from the
//! `mabe-bench` regeneration binaries and the telemetry registry, not
//! from this shim.
//!
//! Sampling effort: each `bench_function` runs `sample_size` samples
//! (default 10, settable per group exactly like criterion) of one
//! iteration each, after one warmup iteration. Set `MABE_BENCH_SAMPLES`
//! to override globally.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Batch sizing hint for [`Bencher::iter_batched`]; sizing is ignored by
/// this shim (every batch is one element).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Setup output of unknown size.
    PerIteration,
}

/// Identifier for parameterised benchmarks.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("function", parameter)`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timer handle passed to bench closures.
pub struct Bencher {
    samples: usize,
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over the configured number of samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warmup
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.recorded.push(start.elapsed());
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warmup
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.recorded.push(start.elapsed());
        }
    }
}

fn env_samples() -> Option<usize> {
    std::env::var("MABE_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
}

fn report(group: &str, name: &str, recorded: &[Duration]) {
    if recorded.is_empty() {
        println!("{group}/{name}: no samples");
        return;
    }
    let total: Duration = recorded.iter().sum();
    let mean = total / recorded.len() as u32;
    let min = recorded.iter().min().copied().unwrap_or_default();
    let max = recorded.iter().max().copied().unwrap_or_default();
    println!(
        "{group}/{name}: mean {mean:?} (min {min:?}, max {max:?}, {n} samples)",
        n = recorded.len()
    );
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.samples = env_samples().unwrap_or(n);
        self
    }

    /// Sets the target measurement time; accepted for API parity,
    /// ignored by this shim.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            recorded: Vec::new(),
        };
        f(&mut bencher);
        report(&self.name, &name.to_string(), &bencher.recorded);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            recorded: Vec::new(),
        };
        f(&mut bencher, input);
        report(&self.name, &id.to_string(), &bencher.recorded);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = env_samples().unwrap_or(10);
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            samples,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(name.to_string(), f);
        group.finish();
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` executes harness-less bench targets with
            // `--test`; a smoke pass there would dominate the test
            // wall-clock, so only run under `cargo bench` (or when
            // explicitly forced).
            let test_mode = std::env::args().any(|a| a == "--test");
            if test_mode && std::env::var("MABE_BENCH_FORCE").is_err() {
                println!("skipping benches in test mode (set MABE_BENCH_FORCE=1 to run)");
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("f", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 4, "warmup + 3 samples");
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut setups = 0u32;
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &_v| {
            b.iter_batched(|| setups += 1, |()| runs += 1, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(setups, 3);
        assert_eq!(runs, 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(4).to_string(), "4");
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
    }
}
